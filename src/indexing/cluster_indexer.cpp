#include "cluster_indexer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "tsp/tsp.hpp"

namespace fisone::indexing {

namespace {

tsp::path_result solve_from(const linalg::matrix& weights, std::size_t start, tsp_solver solver,
                            util::rng& gen) {
    return solver == tsp_solver::exact ? tsp::held_karp_path(weights, start)
                                       : tsp::two_opt_path(weights, start, gen);
}

indexing_result order_to_result(std::vector<std::size_t> order, double cost) {
    indexing_result r;
    r.order = std::move(order);
    r.path_cost = cost;
    r.cluster_to_floor.assign(r.order.size(), -1);
    for (std::size_t p = 0; p < r.order.size(); ++p)
        r.cluster_to_floor[r.order[p]] = static_cast<int>(p);
    return r;
}

}  // namespace

linalg::matrix similarity_to_weights(const linalg::matrix& similarity) {
    if (similarity.rows() != similarity.cols() || similarity.rows() == 0)
        throw std::invalid_argument("similarity_to_weights: matrix must be square, non-empty");
    const std::size_t n = similarity.rows();
    linalg::matrix w(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j) w(i, j) = 1.0 - similarity(i, j);
    return w;
}

indexing_result index_from_bottom(const linalg::matrix& similarity, std::size_t start_cluster,
                                  tsp_solver solver, util::rng& gen) {
    const linalg::matrix weights = similarity_to_weights(similarity);
    if (start_cluster >= weights.rows())
        throw std::invalid_argument("index_from_bottom: start_cluster out of range");
    tsp::path_result path = solve_from(weights, start_cluster, solver, gen);
    return order_to_result(std::move(path.order), path.cost);
}

indexing_result index_from_arbitrary(const linalg::matrix& similarity, int labeled_floor,
                                     const std::vector<double>& dist_to_clusters,
                                     tsp_solver solver, util::rng& gen) {
    const linalg::matrix weights = similarity_to_weights(similarity);
    const std::size_t n = weights.rows();
    if (dist_to_clusters.size() != n)
        throw std::invalid_argument("index_from_arbitrary: dist_to_clusters size mismatch");
    if (labeled_floor < 0 || static_cast<std::size_t>(labeled_floor) >= n)
        throw std::invalid_argument("index_from_arbitrary: labeled_floor out of range");

    // Free-start shortest Hamiltonian path: solve from every start and keep
    // the minimum-cost ordering (paper §VI: "solve the TSP with all
    // possible starting points ... pick the one with the maximum sum of
    // adapted Jaccard similarity coefficients").
    tsp::path_result best;
    best.cost = std::numeric_limits<double>::max();
    for (std::size_t s = 0; s < n; ++s) {
        tsp::path_result cand = solve_from(weights, s, solver, gen);
        if (cand.cost < best.cost) best = std::move(cand);
    }

    const auto f = static_cast<std::size_t>(labeled_floor);
    const std::size_t mirror = n - 1 - f;

    if (f == mirror) {
        // Case 1: middle-floor label in an odd-floor building — orientation
        // undecidable. Report ambiguity with the as-is orientation.
        indexing_result r = order_to_result(std::move(best.order), best.cost);
        r.ambiguous = true;
        return r;
    }

    // Case 2: the label sits at path position f (as-is orientation) or at
    // position mirror (reversed orientation). Pick the orientation whose
    // candidate cluster is closer to the labeled sample.
    const std::size_t candidate_asis = best.order[f];
    const std::size_t candidate_rev = best.order[mirror];
    if (dist_to_clusters[candidate_rev] < dist_to_clusters[candidate_asis])
        std::reverse(best.order.begin(), best.order.end());
    return order_to_result(std::move(best.order), best.cost);
}

}  // namespace fisone::indexing
