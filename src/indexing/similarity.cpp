#include "similarity.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fisone::indexing {

std::vector<cluster_profile> build_profiles(const data::building& b,
                                            const std::vector<int>& assignment,
                                            std::size_t num_clusters) {
    if (assignment.size() != b.samples.size())
        throw std::invalid_argument("build_profiles: assignment size mismatch");
    if (num_clusters == 0) throw std::invalid_argument("build_profiles: num_clusters is zero");

    std::vector<cluster_profile> profiles(num_clusters);
    for (auto& p : profiles) p.freq.assign(b.num_macs, 0.0);

    for (std::size_t i = 0; i < b.samples.size(); ++i) {
        const int c = assignment[i];
        if (c == -1) continue;  // excluded sample (arbitrary-floor protocol)
        if (c < 0 || static_cast<std::size_t>(c) >= num_clusters)
            throw std::invalid_argument("build_profiles: label out of range");
        cluster_profile& p = profiles[static_cast<std::size_t>(c)];
        ++p.num_samples;
        // Count each MAC once per scan even if observed multiple times.
        for (const data::rf_observation& o : b.samples[i].observations) {
            // A scan observing the same MAC twice should not double-count;
            // mark by bumping only on first occurrence within this scan.
            // Observations per scan are few, so a linear backscan is fine.
            bool repeated = false;
            for (const data::rf_observation& prior : b.samples[i].observations) {
                if (&prior == &o) break;
                if (prior.mac_id == o.mac_id) {
                    repeated = true;
                    break;
                }
            }
            if (!repeated) p.freq[o.mac_id] += 1.0;
        }
    }
    return profiles;
}

double plain_jaccard(const cluster_profile& a, const cluster_profile& b) {
    if (a.freq.size() != b.freq.size())
        throw std::invalid_argument("plain_jaccard: profile size mismatch");
    std::size_t inter = 0, uni = 0;
    for (std::size_t k = 0; k < a.freq.size(); ++k) {
        const bool in_a = a.freq[k] > 0.0;
        const bool in_b = b.freq[k] > 0.0;
        if (in_a && in_b) ++inter;
        if (in_a || in_b) ++uni;
    }
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double adapted_jaccard(const cluster_profile& a, const cluster_profile& b) {
    if (a.freq.size() != b.freq.size())
        throw std::invalid_argument("adapted_jaccard: profile size mismatch");

    // m = MACs detected in either cluster; means are over this pair-set.
    std::size_t m = 0;
    double sum_a = 0.0, sum_b = 0.0;
    for (std::size_t k = 0; k < a.freq.size(); ++k) {
        if (a.freq[k] > 0.0 || b.freq[k] > 0.0) {
            ++m;
            sum_a += a.freq[k];
            sum_b += b.freq[k];
        }
    }
    if (m == 0) return 0.0;
    const double mean_a = sum_a / static_cast<double>(m);
    const double mean_b = sum_b / static_cast<double>(m);

    double f_share = 0.0, f_diff = 0.0;
    for (std::size_t k = 0; k < a.freq.size(); ++k) {
        const double fa = a.freq[k];
        const double fb = b.freq[k];
        if (fa == 0.0 && fb == 0.0) continue;
        f_share += fa * fb;
        if (fa == 0.0) f_diff += fb * mean_a;
        if (fb == 0.0) f_diff += fa * mean_b;
    }
    const double denom = f_share + f_diff;
    return denom == 0.0 ? 0.0 : f_share / denom;
}

linalg::matrix similarity_matrix(const std::vector<cluster_profile>& profiles,
                                 similarity_kind kind, util::thread_pool* pool) {
    const std::size_t n = profiles.size();
    linalg::matrix sim(n, n, 0.0);
    // Row i owns entries (i, j>i) and their mirrors (j>i, i): every element
    // is written by exactly one chunk, so pooled runs race nowhere and are
    // bit-identical to serial ones.
    util::parallel_for(pool, 0, n, 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            sim(i, i) = 1.0;
            for (std::size_t j = i + 1; j < n; ++j) {
                const double s = kind == similarity_kind::adapted_jaccard
                                     ? adapted_jaccard(profiles[i], profiles[j])
                                     : plain_jaccard(profiles[i], profiles[j]);
                sim(i, j) = s;
                sim(j, i) = s;
            }
        }
    });
    return sim;
}

}  // namespace fisone::indexing
