#pragma once

/// \file cluster_indexer.hpp
/// Cluster indexing (paper §IV-B and §VI): order the floor clusters so
/// that the sum of adapted-Jaccard similarities between adjacent clusters
/// is maximised, which Theorem 1 reduces to a shortest-Hamiltonian-path
/// TSP with edge weights w_ij = 1 − J^n_ij.
///
/// Two protocols:
///  - `index_from_bottom`: the labeled sample is on the bottom floor, so
///    its cluster anchors the path start (the paper's main setting);
///  - `index_from_arbitrary`: the label may come from any floor (§VI).
///    The path is solved free-start; the labeled floor then admits two
///    candidate positions (one per path orientation) and the orientation
///    is chosen by which candidate cluster lies closer to the labeled
///    sample in the embedding space. A building with an odd number of
///    floors and a middle-floor label is genuinely ambiguous (Case 1).

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace fisone::indexing {

/// TSP solver choice (Fig. 9(c,d) ablates exact vs 2-opt).
enum class tsp_solver { exact, two_opt };

/// Result of indexing N clusters with floors 0..N−1 (0 = bottom).
struct indexing_result {
    /// cluster_to_floor[c] = floor assigned to cluster c.
    std::vector<int> cluster_to_floor;
    /// order[p] = cluster placed at floor p (inverse of cluster_to_floor).
    std::vector<std::size_t> order;
    /// Cost of the chosen Hamiltonian path (Σ (1 − J^n) along adjacencies).
    double path_cost = 0.0;
    /// §VI Case 1: middle-floor label in an odd-floor building — the
    /// orientation cannot be determined. `cluster_to_floor` then holds one
    /// of the two equally plausible assignments.
    bool ambiguous = false;
};

/// Index clusters with the labeled sample's cluster pinned to floor 0.
/// \param similarity symmetric pairwise cluster similarity in [0, 1].
/// \param start_cluster the cluster containing the labeled bottom-floor sample.
/// \throws std::invalid_argument on non-square similarity or bad start.
[[nodiscard]] indexing_result index_from_bottom(const linalg::matrix& similarity,
                                                std::size_t start_cluster, tsp_solver solver,
                                                util::rng& gen);

/// Index clusters when the single label is on floor \p labeled_floor
/// (0-based) and the labeled sample was *excluded* from clustering.
/// \param labeled_floor known floor of the labeled sample.
/// \param dist_to_clusters average embedding distance from the labeled
///        sample to each cluster (d(r, C_i) of §VI).
[[nodiscard]] indexing_result index_from_arbitrary(const linalg::matrix& similarity,
                                                   int labeled_floor,
                                                   const std::vector<double>& dist_to_clusters,
                                                   tsp_solver solver, util::rng& gen);

/// Helper shared by both protocols: Theorem-1 weight matrix w = 1 − sim
/// (diagonal zero).
[[nodiscard]] linalg::matrix similarity_to_weights(const linalg::matrix& similarity);

}  // namespace fisone::indexing
