#pragma once

/// \file similarity.hpp
/// Spillover-based similarity between floor clusters (paper §IV-B).
/// A cluster's *profile* is the appearance frequency of every MAC over the
/// cluster's scans. Two similarity measures are provided:
///  - plain Jaccard J_ij = |A_i ∩ A_j| / |A_i ∪ A_j| (presence only);
///  - the paper's adapted Jaccard J^n_ij (eqs. 1–3), which weights MACs by
///    their appearance frequencies so that wide-coverage APs count more:
///      f_share = Σ_k f_ik · f_jk,
///      f_diff  = Σ_k [1{f_ik=0}·f_jk·f̄_i + 1{f_jk=0}·f_ik·f̄_j],
///      J^n     = f_share / (f_share + f_diff),
///    where the sums and the means f̄ run over the m MACs detected in the
///    *pair* of clusters (per the paper's definition).

#include <cstddef>
#include <vector>

#include "data/rf_sample.hpp"
#include "linalg/matrix.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::indexing {

/// MAC appearance frequencies of one cluster.
struct cluster_profile {
    /// freq[k] = number of scans in this cluster that detected MAC k.
    std::vector<double> freq;
    /// Number of scans in the cluster.
    std::size_t num_samples = 0;

    /// Number of distinct MACs detected in the cluster.
    [[nodiscard]] std::size_t support() const noexcept {
        std::size_t s = 0;
        for (const double f : freq)
            if (f > 0.0) ++s;
        return s;
    }
};

/// Which similarity the indexer uses (Fig. 9(a,b) ablates this).
enum class similarity_kind { adapted_jaccard, jaccard };

/// Build per-cluster MAC frequency profiles from a clustering assignment.
/// \param assignment per-sample cluster label in [0, num_clusters); entries
///        equal to -1 are skipped (used to exclude the labeled sample in
///        the §VI arbitrary-floor protocol).
/// \throws std::invalid_argument on size mismatch or out-of-range labels.
[[nodiscard]] std::vector<cluster_profile> build_profiles(const data::building& b,
                                                          const std::vector<int>& assignment,
                                                          std::size_t num_clusters);

/// Plain Jaccard similarity of two profiles.
[[nodiscard]] double plain_jaccard(const cluster_profile& a, const cluster_profile& b);

/// Adapted Jaccard similarity J^n (paper eq. 3). Returns 0 when the
/// clusters share no MAC and 0/0 would occur with no unshared mass either.
[[nodiscard]] double adapted_jaccard(const cluster_profile& a, const cluster_profile& b);

/// Pairwise similarity matrix (symmetric, unit diagonal). Rows of the
/// upper triangle are computed independently, so an optional pool speeds
/// the O(k²·num_macs) sweep up without changing a single bit.
[[nodiscard]] linalg::matrix similarity_matrix(const std::vector<cluster_profile>& profiles,
                                               similarity_kind kind,
                                               util::thread_pool* pool = nullptr);

}  // namespace fisone::indexing
