#include "batch_runner.hpp"

#include <chrono>
#include <mutex>

#include "task_executor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fisone::runtime {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point start) {
    return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

std::uint64_t task_seed(std::uint64_t campaign_seed, std::size_t task_index) noexcept {
    // Two splitmix64 rounds decorrelate nearby (seed, index) pairs.
    std::uint64_t state = campaign_seed ^ (0x9e3779b97f4a7c15ULL * (task_index + 1));
    static_cast<void>(util::splitmix64_next(state));
    return util::splitmix64_next(state);
}

building_report run_building_task(const core::fis_one_config& pipeline,
                                  std::uint64_t campaign_seed, std::size_t index,
                                  const data::building& b, bool single_thread_kernels) {
    return task_executor(pipeline, campaign_seed, single_thread_kernels).run(index, b);
}

batch_runner::batch_runner(batch_config cfg) : cfg_(std::move(cfg)) {
    // Validate the template eagerly — better one throw here than one per task.
    validate_pipeline(cfg_.pipeline);
    const std::size_t batch_threads = util::resolve_num_threads(cfg_.num_threads);
    if (batch_threads > 1) pool_ = std::make_unique<util::thread_pool>(batch_threads);
}

batch_runner::~batch_runner() = default;

batch_result batch_runner::run(const std::vector<data::building>& buildings) const {
    const std::size_t total = buildings.size();
    // Buildings actually in flight at once; with no batch-level parallelism
    // the kernels keep their own "auto" threading (e.g. a 1-building batch
    // on an 8-core host should still use the cores inside the pipeline).
    const bool parallel_batch = pool_ != nullptr && total > 1;
    const task_executor executor(cfg_.pipeline, cfg_.seed,
                                 /*single_thread_kernels=*/parallel_batch);

    batch_result out;
    out.reports.resize(total);

    std::mutex progress_mutex;
    std::size_t completed = 0;

    const auto run_one = [&](std::size_t i) {
        out.reports[i] = executor.run(i, buildings[i]);

        if (cfg_.on_progress) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            ++completed;
            batch_progress progress;
            progress.completed = completed;
            progress.total = total;
            progress.last = &out.reports[i];
            cfg_.on_progress(progress);
        }
    };

    const clock::time_point start = clock::now();
    if (parallel_batch) {
        pool_->parallel_for(0, total, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) run_one(i);
        });
    } else {
        for (std::size_t i = 0; i < total; ++i) run_one(i);
    }
    out.wall_seconds = seconds_since(start);
    out.buildings_per_second =
        out.wall_seconds > 0.0 ? static_cast<double>(total) / out.wall_seconds : 0.0;

    // Aggregate in input order so the stats stream is deterministic.
    for (const building_report& report : out.reports) {
        if (!report.ok) {
            ++out.num_failed;
            continue;
        }
        ++out.num_ok;
        if (report.result.has_ground_truth) {
            out.ari.add(report.result.ari);
            out.nmi.add(report.result.nmi);
            out.edit_distance.add(report.result.edit_distance);
        }
    }
    return out;
}

batch_result batch_runner::run(const data::corpus& corpus) const { return run(corpus.buildings); }

}  // namespace fisone::runtime
