#pragma once

/// \file task_executor.hpp
/// The single per-building execution path shared by every front-end.
/// `runtime::batch_runner`, `service::floor_service`, and `api::server`
/// all need the same plumbing around one building: validate the pipeline
/// template once, derive the task's effective config from
/// (campaign seed, corpus index), time and fault-isolate the run, and
/// synthesise reports for buildings that never ran (cancelled / lost to a
/// shard error). Hoisting it here is what makes the determinism contract a
/// single point of truth — a served, batched, cached, or wire-framed
/// building can only ever run through `task_executor::run`.

#include <cstddef>
#include <cstdint>
#include <string>

#include "batch_runner.hpp"
#include "core/fis_one.hpp"
#include "data/rf_sample.hpp"

namespace fisone::runtime {

/// Validate a pipeline template eagerly (construction-time) so a bad
/// config throws once at the front-end boundary instead of once per task.
/// \throws std::invalid_argument exactly as `core::fis_one`'s ctor does.
void validate_pipeline(const core::fis_one_config& pipeline);

/// The effective config building `index` of a campaign runs with: the
/// template with `seed` / `gnn.seed` replaced by `task_seed` derivations
/// and — when \p single_thread_kernels — an "auto" `num_threads` pinned to
/// 1 (one pool level at a time inside an already-parallel batch/service).
/// This is the config whose `core::config_fingerprint` content-addresses
/// the task's result.
[[nodiscard]] core::fis_one_config effective_task_config(const core::fis_one_config& pipeline,
                                                         std::uint64_t campaign_seed,
                                                         std::size_t index,
                                                         bool single_thread_kernels);

/// Report for a building that never ran (cancelled, or lost to a shard
/// error). Carries the seed it *would* have run with, for traceability.
[[nodiscard]] building_report skipped_report(std::string name, std::size_t index,
                                             std::uint64_t campaign_seed, std::string reason);

/// Bundles one campaign's (pipeline template, campaign seed, kernel
/// threading policy) so front-ends execute buildings through one shared
/// object instead of re-threading three loose values. Cheap to copy;
/// immutable after construction, so one executor may serve many threads.
class task_executor {
public:
    task_executor(core::fis_one_config pipeline, std::uint64_t campaign_seed,
                  bool single_thread_kernels)
        : pipeline_(std::move(pipeline)),
          campaign_seed_(campaign_seed),
          single_thread_kernels_(single_thread_kernels) {}

    /// Run building \p b at corpus index \p index: derive seeds, execute
    /// the pipeline, fold any exception into the report (`ok = false`).
    [[nodiscard]] building_report run(std::size_t index, const data::building& b) const;

    /// Report for a building of this campaign that never ran.
    [[nodiscard]] building_report skipped(std::string name, std::size_t index,
                                          std::string reason) const {
        return skipped_report(std::move(name), index, campaign_seed_, std::move(reason));
    }

    /// The exact config `run(index, ...)` executes with.
    [[nodiscard]] core::fis_one_config effective_config(std::size_t index) const {
        return effective_task_config(pipeline_, campaign_seed_, index, single_thread_kernels_);
    }

    [[nodiscard]] const core::fis_one_config& pipeline() const noexcept { return pipeline_; }
    [[nodiscard]] std::uint64_t campaign_seed() const noexcept { return campaign_seed_; }

private:
    core::fis_one_config pipeline_;
    std::uint64_t campaign_seed_ = 0;
    bool single_thread_kernels_ = false;
};

}  // namespace fisone::runtime
