#pragma once

/// \file batch_runner.hpp
/// The `fisone::runtime` batch subsystem: run the FIS-ONE pipeline over
/// many buildings concurrently. This is the building-scale parallelism of
/// the ROADMAP's north star — buildings are embarrassingly parallel, so a
/// campaign over a city-sized corpus scales linearly with cores.
///
/// Reproducibility contract:
///  - every task's pipeline seeds are derived purely from
///    (campaign seed, building index) via `task_seed`, never from
///    scheduling order, so a batch run is bit-identical to running the
///    same buildings sequentially with the same derived seeds;
///  - consequently `run()` output does not depend on `num_threads`.
///
/// A building that throws does not abort the campaign: its report carries
/// `ok = false` and the exception message, and the batch keeps going.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fis_one.hpp"
#include "data/rf_sample.hpp"
#include "util/stats.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::runtime {

/// Deterministic per-task seed: a splitmix64 hash of the campaign seed and
/// the building's position in the input. Independent of execution order.
[[nodiscard]] std::uint64_t task_seed(std::uint64_t campaign_seed,
                                      std::size_t task_index) noexcept;

/// Outcome of one building inside a batch.
struct building_report {
    std::size_t index = 0;        ///< position in the input vector
    std::string name;             ///< building::name
    bool ok = false;              ///< false → `error` holds the reason
    std::string error;
    std::uint64_t seed = 0;       ///< the derived pipeline seed this building ran with
    double seconds = 0.0;         ///< wall time of this building's pipeline
    core::fis_one_result result;  ///< meaningful only when `ok`
};

/// Run one building of a campaign: derive its pipeline seeds from
/// (campaign_seed, index) via `task_seed`, execute the pipeline, and fold
/// any exception into the report (`ok = false`). This is the single task
/// body shared by `batch_runner` and `service::floor_service`, so a served
/// corpus is bit-identical to a batch run over the same input order.
/// \param single_thread_kernels force the per-building kernels serial when
///        the pipeline's `num_threads` is 0 ("auto") — set when tasks run
///        inside an already-parallel batch or service so one pool level is
///        active at a time. Explicit kernel thread counts are honoured.
[[nodiscard]] building_report run_building_task(const core::fis_one_config& pipeline,
                                                std::uint64_t campaign_seed, std::size_t index,
                                                const data::building& b,
                                                bool single_thread_kernels);

/// Snapshot handed to the progress callback after each finished building.
struct batch_progress {
    std::size_t completed = 0;  ///< buildings finished so far (ok or not)
    std::size_t total = 0;
    const building_report* last = nullptr;  ///< the building that just finished
};

/// Campaign configuration.
struct batch_config {
    /// Template pipeline config. Per-task copies get their `seed` /
    /// `gnn.seed` replaced by `task_seed` derivations. A `num_threads` of 0
    /// ("auto") resolves to 1 inside a multi-threaded batch — one pool
    /// level at a time — and to the hardware otherwise; explicit values are
    /// honoured as given.
    core::fis_one_config pipeline{};
    std::uint64_t seed = 7;      ///< campaign seed, root of all task seeds
    std::size_t num_threads = 0; ///< workers over buildings; 0 = hardware
    /// Invoked after every finished building. Calls are serialised (a
    /// mutex) but arrive in completion order, not input order.
    std::function<void(const batch_progress&)> on_progress;
};

/// Everything a campaign produces.
struct batch_result {
    std::vector<building_report> reports;  ///< in input order
    std::size_t num_ok = 0;
    std::size_t num_failed = 0;
    double wall_seconds = 0.0;
    double buildings_per_second = 0.0;
    /// Metric aggregates over successful buildings with ground truth,
    /// accumulated in input order (deterministic).
    util::running_stats ari, nmi, edit_distance;
};

/// The runtime. Construct once per campaign shape, run per corpus. The
/// worker pool is created with the runner and reused across `run()` calls,
/// so repeated campaigns pay thread start-up once. `run()` may be called
/// from several threads concurrently; they share the pool.
class batch_runner {
public:
    explicit batch_runner(batch_config cfg);
    ~batch_runner();

    batch_runner(const batch_runner&) = delete;
    batch_runner& operator=(const batch_runner&) = delete;

    /// Run the pipeline over every building; blocks until all finish.
    [[nodiscard]] batch_result run(const std::vector<data::building>& buildings) const;

    /// Convenience overload for a whole corpus.
    [[nodiscard]] batch_result run(const data::corpus& corpus) const;

    [[nodiscard]] const batch_config& config() const noexcept { return cfg_; }

private:
    batch_config cfg_;
    /// Non-null iff the resolved `num_threads` exceeds 1. Shared by every
    /// `run()`; destroyed (threads joined) with the runner.
    std::unique_ptr<util::thread_pool> pool_;
};

}  // namespace fisone::runtime
