#include "task_executor.hpp"

#include <chrono>
#include <exception>

namespace fisone::runtime {

namespace {
using clock = std::chrono::steady_clock;
}

void validate_pipeline(const core::fis_one_config& pipeline) {
    static_cast<void>(core::fis_one(pipeline));
}

core::fis_one_config effective_task_config(const core::fis_one_config& pipeline,
                                           std::uint64_t campaign_seed, std::size_t index,
                                           bool single_thread_kernels) {
    core::fis_one_config cfg = pipeline;
    const std::uint64_t seed = task_seed(campaign_seed, index);
    cfg.seed = seed;
    cfg.gnn.seed = seed ^ 0x5eedc0de5eedc0deULL;
    // "auto" kernel threading inside a parallel batch would nest a
    // hardware-sized pool per in-flight building; keep one pool level.
    if (cfg.num_threads == 0 && single_thread_kernels) cfg.num_threads = 1;
    return cfg;
}

building_report skipped_report(std::string name, std::size_t index,
                               std::uint64_t campaign_seed, std::string reason) {
    building_report report;
    report.index = index;
    report.name = std::move(name);
    report.ok = false;
    report.error = std::move(reason);
    report.seed = task_seed(campaign_seed, index);
    return report;
}

building_report task_executor::run(std::size_t index, const data::building& b) const {
    building_report report;
    report.index = index;
    report.name = b.name;

    const core::fis_one_config cfg = effective_config(index);
    report.seed = cfg.seed;

    const clock::time_point start = clock::now();
    try {
        report.result = core::fis_one(cfg).run(b);
        report.ok = true;
    } catch (const std::exception& e) {
        report.error = e.what();
    } catch (...) {
        report.error = "unknown exception";
    }
    report.seconds = std::chrono::duration<double>(clock::now() - start).count();
    return report;
}

}  // namespace fisone::runtime
