#pragma once

/// \file trace.hpp
/// Request tracing: timestamped spans in per-thread lock-free ring buffers.
///
/// One request produces one parent-linked span tree that crosses every layer
/// of the stack — `net::tcp_server` stamps a root context at admission, the
/// api/federation sessions and the floor service's worker threads adopt it via
/// `context_guard`, and every instrumented stage wraps itself in a
/// `scoped_span`. Span records land in a ring buffer owned by the emitting
/// thread (no cross-thread writes, no locks on the hot path); the rings are
/// only ever read by `snapshot()`, which quiesces writers first, so the whole
/// scheme is data-race-free under TSan without atomics on the record payload.
///
/// Tracing is a runtime switch. Disabled (the default) each span site costs
/// exactly one relaxed atomic load and a predictable branch, and no output
/// byte of the system changes. Enabled, spans cost two atomic flips plus a
/// clock read each — `bench/bench_trace_overhead.cpp` holds the end-to-end
/// cost under 5% of buildings/sec and proves NDJSON stays byte-identical.
///
/// Exports: Chrome trace-event JSON (load in Perfetto / chrome://tracing) via
/// `chrome_trace_json()`, raw records via `snapshot()` / `spans_for_trace()`,
/// and per-stage latency percentiles via `stage_stats()` (fed from a
/// bounded `obs::latency_histogram` per stage — the serve loop emits spans
/// forever, so exact sample hoarding is not an option here — rendered by
/// `net::render_metrics` as the `fisone_stage_seconds` families).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry.hpp"

namespace fisone::obs {

/// Version tag written as the first key of every Chrome-trace dump, so a
/// consumer can detect layout changes before parsing `traceEvents`.
inline constexpr const char* k_trace_format_version = "fisone-trace/v1";

/// A position in a trace: which request (`trace_id`) and which span within it
/// (`span_id`, the parent for anything emitted under this context). The zero
/// context means "not tracing this work".
struct trace_context {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;

    [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// One finished span as recorded in a ring. `name` points at a string
/// literal supplied to the span site — never freed, never owned.
struct span_record {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  ///< 0 for root spans
    const char* name = nullptr;
    std::uint64_t start_ns = 0;  ///< steady-clock nanoseconds
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;  ///< ring registration index (stable per thread)
};

/// Aggregate recorder health: how much has been captured and how much the
/// rings have overwritten (oldest-first) since the last `reset()`.
struct trace_stats {
    std::size_t recorded = 0;  ///< spans currently resident in rings
    std::size_t dropped = 0;   ///< spans overwritten by ring wrap
    std::size_t threads = 0;   ///< rings registered (threads that emitted)
};

/// Per-stage latency summary, one per distinct span name observed while
/// tracing was enabled. Count and total are exact; percentiles carry
/// `latency_histogram::k_max_relative_error`; `le_counts` is the stage's
/// histogram evaluated over `k_metrics_le_bounds` (Prometheus `_bucket`
/// exposition).
struct stage_snapshot {
    std::string stage;
    std::size_t count = 0;
    double total_seconds = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::vector<std::uint64_t> le_counts;
};

namespace detail {
/// The master switch. Span sites read it relaxed (the one-branch contract);
/// flips and the writer-side recheck are seq_cst so `snapshot()` can quiesce.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Is tracing currently on? Relaxed load — this is the disabled-path cost.
[[nodiscard]] inline bool tracing_enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip tracing on or off. Turning it off also quiesces in-flight writers,
/// so records never tear; already-recorded spans stay readable.
void set_tracing_enabled(bool on) noexcept;

/// Capacity (in spans) of rings created after this call; existing rings are
/// retired (their records dropped). Default 16384 per thread.
void set_ring_capacity(std::size_t capacity);

/// Drop every recorded span, retire all rings, and clear stage statistics.
/// The enabled flag is left as-is.
void reset();

/// Fresh ids. Monotonic process-wide counters, never zero.
[[nodiscard]] std::uint64_t new_trace_id() noexcept;
[[nodiscard]] std::uint64_t new_span_id() noexcept;

/// Steady-clock nanoseconds (the timebase of every span record).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// The calling thread's current trace position ({0,0} when none).
[[nodiscard]] trace_context current_context() noexcept;

/// Install \p ctx as the calling thread's context for the guard's lifetime —
/// how a worker thread adopts the context captured at submit time. Restores
/// the previous context on destruction. Installing an inactive context is a
/// cheap no-op, so call sites need no branch of their own.
class context_guard {
public:
    explicit context_guard(trace_context ctx) noexcept;
    ~context_guard();
    context_guard(const context_guard&) = delete;
    context_guard& operator=(const context_guard&) = delete;

private:
    trace_context prev_{};
    bool installed_ = false;
};

/// Record a finished span with explicit ids — for spans whose lifetime spans
/// threads (queue wait) or whose id was pre-allocated (a request's root span,
/// minted at admission so children can link to it before it finishes).
/// No-op while tracing is disabled.
void emit_span(const char* name, std::uint64_t trace_id, std::uint64_t span_id,
               std::uint64_t parent_id, std::uint64_t start_ns,
               std::uint64_t end_ns);

/// Convenience: record a finished child of \p parent; returns the new span's
/// id (0 if tracing is disabled or \p parent is inactive).
std::uint64_t emit_child_span(const char* name, trace_context parent,
                              std::uint64_t start_ns, std::uint64_t end_ns);

/// RAII span site: times a scope and records it as a child of the thread's
/// current context (becoming that context itself while alive, so nested
/// scopes link to it). With tracing disabled, construction is one relaxed
/// load + branch and destruction one predictable branch — nothing else.
/// \p name must be a string literal (stored by pointer).
class scoped_span {
public:
    explicit scoped_span(const char* name) noexcept {
        if (!tracing_enabled()) return;  // the one branch when disabled
        begin(name);
    }
    ~scoped_span() {
        if (name_ != nullptr) end();
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

    /// The context this span established ({0,0} when inactive) — what a
    /// caller forwards when handing work to another thread mid-span.
    [[nodiscard]] trace_context context() const noexcept { return mine_; }

private:
    void begin(const char* name) noexcept;
    void end() noexcept;

    const char* name_ = nullptr;  ///< nullptr ⇒ inactive (tracing was off)
    trace_context prev_{};
    trace_context mine_{};
    std::uint64_t start_ns_ = 0;
};

/// Copy out every span currently resident, oldest-start first. Quiesces
/// writers for the duration (tracing pauses, then resumes if it was on).
[[nodiscard]] std::vector<span_record> snapshot();

/// `snapshot()` filtered to one trace, sorted by start time.
[[nodiscard]] std::vector<span_record> spans_for_trace(std::uint64_t trace_id);

/// Recorder health counters.
[[nodiscard]] trace_stats stats();

/// Chrome trace-event JSON of everything resident — open in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing. First key is
/// `k_trace_format_version`; events are "X" (complete) with microsecond
/// timestamps, `tid` = emitting ring, ids in `args` as hex strings.
[[nodiscard]] std::string chrome_trace_json();
void dump_chrome_trace(std::ostream& os);

/// p50/p90/p99 per span name since the last `reset()`/`reset_stages()`,
/// sorted by stage name. Unlike the rings these never overwrite: every span
/// observed while enabled lands in that stage's bounded histogram, so the
/// summary covers the full history at fixed memory.
[[nodiscard]] std::vector<stage_snapshot> stage_stats();

/// Clear stage statistics only (rings untouched).
void reset_stages();

}  // namespace fisone::obs
