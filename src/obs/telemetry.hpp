#pragma once

/// \file telemetry.hpp
/// Live telemetry for long-running servers: a bounded log-linear latency
/// histogram and a windowed time-series registry.
///
/// `util::percentile_accumulator` is exact but stores every observation
/// forever — the right trade for per-campaign batch paths (thousands of
/// observations), the wrong one for a serve loop fed millions of requests.
/// `latency_histogram` replaces it on the high-rate paths: fixed memory
/// (~26 KB), O(1) add, mergeable in any order, and percentiles within a
/// documented relative-error bound.
///
/// Error bound: values bucket log-linearly — `frexp` splits v into
/// m·2^e with m ∈ [0.5, 1), and each octave divides into
/// `k_sub_buckets` = 64 equal mantissa slices. A bucket's width over its
/// lower edge is at most 1/64, and percentiles report the bucket midpoint
/// (clamped into the observed [min, max]), so any reported percentile is
/// within **1/128 ≈ 0.79 %** of the exact nearest-rank value
/// (`k_max_relative_error`). Count, sum, min, and max are tracked exactly.
///
/// `telemetry_registry` turns lifetime-cumulative instruments into a
/// queryable time series: callers register counters (cumulative,
/// windows record deltas), gauges (windows record the sampled value), and
/// histograms (windows record `delta_since` the previous tick), then drive
/// `tick()` about once per window; the last N windows sit in a fixed ring,
/// queryable newest-last. This is what `subscribe_stats` streams and what
/// the capacity bench closes its loop on.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace fisone::obs {

/// The canonical `le` ladder (seconds) every Prometheus histogram family
/// is exposed against — one shared ladder so families stay comparable and
/// the exposition size stays fixed. `le="+Inf"` is implied (the family's
/// `_count`).
inline constexpr std::array<double, 14> k_metrics_le_bounds = {
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};

/// Bounded log-linear (HdrHistogram-style) latency histogram in seconds.
/// Not thread-safe; callers snapshot/merge under their own locks — the
/// same contract as `util::percentile_accumulator`, which this type is a
/// drop-in for on paths too hot to hoard exact samples.
class latency_histogram {
public:
    /// Mantissa slices per octave. 64 slices bound bucket width at 1/64
    /// of the bucket's lower edge.
    static constexpr std::size_t k_sub_buckets = 64;
    /// Exponent range covered without clamping: 2^-30 ≈ 0.93 ns up to
    /// 2^21 ≈ 24 days. Values outside clamp to the edge buckets (their
    /// count/sum/min/max stay exact; only the percentile position clamps).
    static constexpr int k_min_exponent = -30;
    static constexpr int k_max_exponent = 21;
    /// Worst-case relative error of any reported percentile against the
    /// exact nearest-rank value, for in-range positive observations:
    /// half a bucket width over the bucket's lower edge = 1/(2·64).
    static constexpr double k_max_relative_error = 1.0 / (2.0 * k_sub_buckets);
    /// Bucket 0 holds zero/negative/NaN observations; the rest are
    /// (exponent, mantissa-slice) pairs.
    static constexpr std::size_t k_num_buckets =
        1 + static_cast<std::size_t>(k_max_exponent - k_min_exponent + 1) * k_sub_buckets;

    /// Record one observation (seconds). Zero, negative, and NaN land in
    /// the dedicated zero bucket; ±∞ clamps to the edge buckets.
    void add(double v) noexcept;

    /// Fold \p other into this histogram. Bucket counts add, so merging is
    /// exactly order-insensitive: any merge tree over the same
    /// observations yields identical buckets — and thus identical
    /// percentiles — as one histogram fed the pooled data.
    void merge(const latency_histogram& other) noexcept;

    /// The observations recorded since \p earlier, assuming \p earlier is
    /// a previous snapshot of this histogram (bucket-wise saturating
    /// subtraction; a non-prefix argument yields a valid but meaningless
    /// histogram). Min/max of the delta are reconstructed from the first
    /// and last non-empty delta buckets, so they carry the bucket error
    /// bound rather than being exact.
    [[nodiscard]] latency_histogram delta_since(const latency_histogram& earlier) const noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    /// Exact sum of recorded observations.
    [[nodiscard]] double sum() const noexcept { return sum_; }
    /// Exact smallest / largest observation (0 when empty).
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Nearest-rank percentile (the `util::percentile_sorted` rank rule:
    /// rank = ceil(p/100 · count), p = 0 yields the minimum), reported as
    /// the owning bucket's midpoint clamped into [min, max] — within
    /// `k_max_relative_error` of the exact value.
    /// \throws std::invalid_argument when empty or \p p outside [0, 100].
    [[nodiscard]] double percentile(double p) const;

    /// `percentile(p)`, but 0.0 on an empty histogram.
    [[nodiscard]] double percentile_or_zero(double p) const {
        return count_ == 0 ? 0.0 : percentile(p);
    }

    /// Observations known to be ≤ \p bound: the summed counts of every
    /// bucket whose upper edge is ≤ \p bound (conservative for a bucket
    /// straddling the bound). Monotone non-decreasing in \p bound — the
    /// shape a Prometheus `_bucket`/`le` ladder needs.
    [[nodiscard]] std::uint64_t cumulative_le(double bound) const noexcept;

    /// `cumulative_le` evaluated over `k_metrics_le_bounds` — the vector a
    /// Prometheus `_bucket` exposition renders directly.
    [[nodiscard]] std::vector<std::uint64_t> le_counts() const;

private:
    static std::size_t bucket_index(double v) noexcept;
    static double bucket_midpoint(std::size_t index) noexcept;
    static double bucket_upper_edge(std::size_t index) noexcept;

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::array<std::uint64_t, k_num_buckets> buckets_{};
};

/// Windowed time-series registry: registered instruments are sampled at
/// every `tick()` into a fixed ring of per-window snapshots. Register
/// everything before the first tick (late registrations join from the
/// next tick; earlier windows simply lack the new column). Thread-safe.
class telemetry_registry {
public:
    using value_fn = std::function<double()>;
    using histogram_fn = std::function<latency_histogram()>;

    /// \p ring_windows is the fixed number of retained windows (≥ 1).
    /// \p epoch_seconds is the construction instant on the caller's clock
    /// (the same clock later fed to `tick()`): the first window's
    /// start/duration measure from it, so a first window carrying deltas
    /// also carries a real duration.
    explicit telemetry_registry(std::size_t ring_windows = 8, double epoch_seconds = 0.0);

    /// Register a cumulative counter; each window records the delta since
    /// the previous tick (the first window: since registration).
    void add_counter(std::string name, value_fn sample);
    /// Register a gauge; each window records the value sampled at its tick.
    void add_gauge(std::string name, value_fn sample);
    /// Register a lifetime-cumulative histogram; each window records
    /// `delta_since` the previous tick's snapshot.
    void add_histogram(std::string name, histogram_fn snapshot);

    /// One completed window. Vectors are parallel to the name accessors.
    struct window {
        std::uint64_t seq = 0;           ///< 1-based tick number
        double start_seconds = 0.0;      ///< previous tick's timestamp
        double duration_seconds = 0.0;   ///< actual elapsed, not nominal
        std::vector<double> counters;    ///< per-window deltas
        std::vector<double> gauges;      ///< instantaneous samples
        std::vector<latency_histogram> histograms;  ///< per-window deltas
    };

    /// Close the current window at \p now_seconds and push it into the
    /// ring (evicting the oldest once full).
    void tick(double now_seconds);

    /// The newest ≤ \p n windows, oldest first. Empty before the first tick.
    [[nodiscard]] std::vector<window> recent(std::size_t n) const;
    /// The newest window, if any tick has happened.
    [[nodiscard]] std::optional<window> latest() const;

    [[nodiscard]] std::vector<std::string> counter_names() const;
    [[nodiscard]] std::vector<std::string> gauge_names() const;
    [[nodiscard]] std::vector<std::string> histogram_names() const;
    /// Ring capacity in windows.
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Ticks so far (== the newest window's seq).
    [[nodiscard]] std::uint64_t ticks() const;

private:
    struct counter_slot {
        std::string name;
        value_fn sample;
        double prev = 0.0;  ///< cumulative value at the previous tick
    };
    struct gauge_slot {
        std::string name;
        value_fn sample;
    };
    struct histogram_slot {
        std::string name;
        histogram_fn snapshot;
        latency_histogram prev;  ///< snapshot at the previous tick
    };

    mutable std::mutex m_;
    std::size_t capacity_;
    std::vector<counter_slot> counters_;
    std::vector<gauge_slot> gauges_;
    std::vector<histogram_slot> histograms_;
    std::vector<window> ring_;   ///< ring_[ (first_ + i) % capacity_ ]
    std::size_t first_ = 0;
    std::size_t size_ = 0;
    std::uint64_t seq_ = 0;
    double prev_time_ = 0.0;  ///< previous tick (or the construction epoch)
};

}  // namespace fisone::obs
