#include "telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fisone::obs {

// --- latency_histogram -------------------------------------------------------

std::size_t latency_histogram::bucket_index(double v) noexcept {
    if (!(v > 0.0)) return 0;  // zero, negative, NaN
    if (std::isinf(v)) return k_num_buckets - 1;
    int e = 0;
    double m = std::frexp(v, &e);  // v = m · 2^e, m ∈ [0.5, 1)
    std::size_t sub = 0;
    if (e < k_min_exponent) {
        e = k_min_exponent;  // underflow clamps to the smallest bucket
    } else if (e > k_max_exponent) {
        e = k_max_exponent;  // overflow clamps to the largest bucket
        sub = k_sub_buckets - 1;
    } else {
        sub = static_cast<std::size_t>((m - 0.5) * 2.0 * static_cast<double>(k_sub_buckets));
        if (sub >= k_sub_buckets) sub = k_sub_buckets - 1;
    }
    return 1 + static_cast<std::size_t>(e - k_min_exponent) * k_sub_buckets + sub;
}

double latency_histogram::bucket_midpoint(std::size_t index) noexcept {
    if (index == 0) return 0.0;
    const std::size_t k = index - 1;
    const int e = k_min_exponent + static_cast<int>(k / k_sub_buckets);
    const auto sub = static_cast<double>(k % k_sub_buckets);
    const double slices = static_cast<double>(k_sub_buckets);
    const double mid = 0.5 + (sub + 0.5) / (2.0 * slices);
    return std::ldexp(mid, e);
}

double latency_histogram::bucket_upper_edge(std::size_t index) noexcept {
    if (index == 0) return 0.0;
    const std::size_t k = index - 1;
    const int e = k_min_exponent + static_cast<int>(k / k_sub_buckets);
    const auto sub = static_cast<double>(k % k_sub_buckets);
    const double slices = static_cast<double>(k_sub_buckets);
    return std::ldexp(0.5 + (sub + 1.0) / (2.0 * slices), e);
}

void latency_histogram::add(double v) noexcept {
    const double recorded = std::isnan(v) ? 0.0 : v;
    if (count_ == 0) {
        min_ = recorded;
        max_ = recorded;
    } else {
        if (recorded < min_) min_ = recorded;
        if (recorded > max_) max_ = recorded;
    }
    ++count_;
    sum_ += recorded;
    ++buckets_[bucket_index(v)];
}

void latency_histogram::merge(const latency_histogram& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < k_num_buckets; ++i) buckets_[i] += other.buckets_[i];
}

latency_histogram latency_histogram::delta_since(const latency_histogram& earlier) const noexcept {
    latency_histogram d;
    std::size_t lo = k_num_buckets;
    std::size_t hi = 0;
    for (std::size_t i = 0; i < k_num_buckets; ++i) {
        const std::uint64_t a = buckets_[i];
        const std::uint64_t b = earlier.buckets_[i];
        d.buckets_[i] = a > b ? a - b : 0;
        if (d.buckets_[i] > 0) {
            if (i < lo) lo = i;
            hi = i;
        }
        d.count_ += d.buckets_[i];
    }
    d.sum_ = sum_ > earlier.sum_ ? sum_ - earlier.sum_ : 0.0;
    if (d.count_ > 0) {
        // The exact window min/max were not retained; the bucket midpoints
        // carry the documented relative-error bound instead.
        d.min_ = bucket_midpoint(lo);
        d.max_ = bucket_midpoint(hi);
    }
    return d;
}

double latency_histogram::percentile(double p) const {
    if (count_ == 0) throw std::invalid_argument("latency_histogram::percentile: empty");
    if (!(p >= 0.0 && p <= 100.0))
        throw std::invalid_argument("latency_histogram::percentile: p outside [0, 100]");
    if (p == 0.0) return min_;
    const double want = std::ceil(p / 100.0 * static_cast<double>(count_));
    const auto rank = std::min(count_, static_cast<std::uint64_t>(want));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < k_num_buckets; ++i) {
        cum += buckets_[i];
        if (cum >= rank) return std::clamp(bucket_midpoint(i), min_, max_);
    }
    return max_;  // unreachable: cum reaches count_
}

std::uint64_t latency_histogram::cumulative_le(double bound) const noexcept {
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < k_num_buckets; ++i) {
        if (buckets_[i] == 0) continue;
        if (bucket_upper_edge(i) <= bound) cum += buckets_[i];
    }
    return cum;
}

std::vector<std::uint64_t> latency_histogram::le_counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(k_metrics_le_bounds.size());
    for (const double bound : k_metrics_le_bounds) out.push_back(cumulative_le(bound));
    return out;
}

// --- telemetry_registry ------------------------------------------------------

telemetry_registry::telemetry_registry(std::size_t ring_windows, double epoch_seconds)
    : capacity_(ring_windows == 0 ? 1 : ring_windows), prev_time_(epoch_seconds) {
    ring_.resize(capacity_);
}

void telemetry_registry::add_counter(std::string name, value_fn sample) {
    const std::lock_guard<std::mutex> lock(m_);
    counter_slot s;
    s.name = std::move(name);
    s.prev = sample();  // windows measure from registration, not process start
    s.sample = std::move(sample);
    counters_.push_back(std::move(s));
}

void telemetry_registry::add_gauge(std::string name, value_fn sample) {
    const std::lock_guard<std::mutex> lock(m_);
    gauges_.push_back(gauge_slot{std::move(name), std::move(sample)});
}

void telemetry_registry::add_histogram(std::string name, histogram_fn snapshot) {
    const std::lock_guard<std::mutex> lock(m_);
    histogram_slot s;
    s.name = std::move(name);
    s.prev = snapshot();
    s.snapshot = std::move(snapshot);
    histograms_.push_back(std::move(s));
}

void telemetry_registry::tick(double now_seconds) {
    const std::lock_guard<std::mutex> lock(m_);
    window w;
    w.seq = ++seq_;
    w.start_seconds = prev_time_;
    w.duration_seconds = now_seconds - prev_time_;
    if (w.duration_seconds < 0.0) w.duration_seconds = 0.0;
    w.counters.reserve(counters_.size());
    for (counter_slot& c : counters_) {
        const double cur = c.sample();
        w.counters.push_back(cur - c.prev);
        c.prev = cur;
    }
    w.gauges.reserve(gauges_.size());
    for (const gauge_slot& g : gauges_) w.gauges.push_back(g.sample());
    w.histograms.reserve(histograms_.size());
    for (histogram_slot& h : histograms_) {
        latency_histogram cur = h.snapshot();
        w.histograms.push_back(cur.delta_since(h.prev));
        h.prev = std::move(cur);
    }
    prev_time_ = now_seconds;
    if (size_ < capacity_) {
        ring_[(first_ + size_) % capacity_] = std::move(w);
        ++size_;
    } else {
        ring_[first_] = std::move(w);
        first_ = (first_ + 1) % capacity_;
    }
}

std::vector<telemetry_registry::window> telemetry_registry::recent(std::size_t n) const {
    const std::lock_guard<std::mutex> lock(m_);
    const std::size_t take = std::min(n, size_);
    std::vector<window> out;
    out.reserve(take);
    for (std::size_t i = size_ - take; i < size_; ++i)
        out.push_back(ring_[(first_ + i) % capacity_]);
    return out;
}

std::optional<telemetry_registry::window> telemetry_registry::latest() const {
    const std::lock_guard<std::mutex> lock(m_);
    if (size_ == 0) return std::nullopt;
    return ring_[(first_ + size_ - 1) % capacity_];
}

std::vector<std::string> telemetry_registry::counter_names() const {
    const std::lock_guard<std::mutex> lock(m_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const counter_slot& c : counters_) names.push_back(c.name);
    return names;
}

std::vector<std::string> telemetry_registry::gauge_names() const {
    const std::lock_guard<std::mutex> lock(m_);
    std::vector<std::string> names;
    names.reserve(gauges_.size());
    for (const gauge_slot& g : gauges_) names.push_back(g.name);
    return names;
}

std::vector<std::string> telemetry_registry::histogram_names() const {
    const std::lock_guard<std::mutex> lock(m_);
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const histogram_slot& h : histograms_) names.push_back(h.name);
    return names;
}

std::uint64_t telemetry_registry::ticks() const {
    const std::lock_guard<std::mutex> lock(m_);
    return seq_;
}

}  // namespace fisone::obs
