#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace fisone::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One thread's span tape. The owning thread is the only writer; `snapshot()`
/// reads it only after quiescing (see `push` / `quiesce_locked` below), so
/// the slot array needs no per-record synchronisation.
struct span_ring {
    explicit span_ring(std::size_t capacity, std::uint32_t tid_)
        : slots(capacity), tid(tid_) {}

    std::vector<span_record> slots;
    /// Total spans ever pushed; `head % slots.size()` is the next write slot.
    std::atomic<std::uint64_t> head{0};
    /// True while the owner is inside `push` — the quiesce handshake flag.
    std::atomic<bool> writing{false};
    std::uint32_t tid = 0;
};

struct registry {
    std::mutex m;
    std::vector<std::shared_ptr<span_ring>> rings;  ///< one per emitting thread
    std::size_t capacity = 16384;
    std::uint32_t next_tid = 1;
    /// Bumped by `reset()` / `set_ring_capacity()`; threads holding a ring
    /// from an older generation lazily re-register.
    std::atomic<std::uint64_t> generation{1};

    /// Serialises snapshot/dump against each other and against flips of the
    /// enabled switch, so two dumpers never fight over the quiesce protocol.
    std::mutex dump_m;

    std::mutex stage_m;
    std::map<std::string, latency_histogram> stages;  ///< name → bounded histogram
};

registry& reg() {
    static registry r;
    return r;
}

struct tls_slot {
    std::shared_ptr<span_ring> ring;
    std::uint64_t generation = 0;
};
thread_local tls_slot t_slot;
thread_local trace_context t_ctx;

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

span_ring& ring_for_thread() {
    registry& r = reg();
    const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
    if (t_slot.ring == nullptr || t_slot.generation != gen) {
        std::lock_guard<std::mutex> lock(r.m);
        t_slot.ring = std::make_shared<span_ring>(
            std::max<std::size_t>(r.capacity, 1), r.next_tid++);
        t_slot.generation = r.generation.load(std::memory_order_relaxed);
        r.rings.push_back(t_slot.ring);
    }
    return *t_slot.ring;
}

/// Writer side of the quiesce handshake. `writing := true` happens-before
/// the seq_cst re-check of the enabled flag: either this push completes
/// before a dumper observes `writing == false`, or the dumper's
/// `enabled := false` is visible here and the push aborts — never both
/// touching the slots at once.
void push(span_ring& ring, const span_record& rec) {
    ring.writing.store(true, std::memory_order_seq_cst);
    if (!detail::g_enabled.load(std::memory_order_seq_cst)) {
        ring.writing.store(false, std::memory_order_release);
        return;
    }
    const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
    ring.slots[static_cast<std::size_t>(h % ring.slots.size())] = rec;
    ring.head.store(h + 1, std::memory_order_release);
    ring.writing.store(false, std::memory_order_release);
}

void accumulate_stage(const char* name, std::uint64_t dur_ns) {
    registry& r = reg();
    std::lock_guard<std::mutex> lock(r.stage_m);
    r.stages[name].add(static_cast<double>(dur_ns) * 1e-9);
}

void record(const char* name, std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_id, std::uint64_t start_ns,
            std::uint64_t end_ns) {
    span_ring& ring = ring_for_thread();
    span_record rec;
    rec.trace_id = trace_id;
    rec.span_id = span_id;
    rec.parent_id = parent_id;
    rec.name = name;
    rec.start_ns = start_ns;
    rec.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    rec.tid = ring.tid;
    push(ring, rec);
    accumulate_stage(name, rec.dur_ns);
}

/// Stop writers and wait out any push already past its enabled check.
/// Caller holds `dump_m`; returns whether tracing was on (to restore).
bool quiesce_locked() {
    const bool was = detail::g_enabled.exchange(false, std::memory_order_seq_cst);
    registry& r = reg();
    std::lock_guard<std::mutex> lock(r.m);
    for (const auto& ring : r.rings) {
        while (ring->writing.load(std::memory_order_acquire)) {
            std::this_thread::yield();
        }
    }
    return was;
}

/// Resident records of one quiesced ring, oldest first.
void drain_ring(const span_ring& ring, std::vector<span_record>& out) {
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.slots.size();
    const std::uint64_t first = head > cap ? head - cap : 0;
    for (std::uint64_t i = first; i < head; ++i) {
        out.push_back(ring.slots[static_cast<std::size_t>(i % cap)]);
    }
}

/// Records + counters under a single quiesce, so a dump's `otherData`
/// matches its `traceEvents` exactly.
std::vector<span_record> collect_locked(trace_stats& st) {
    registry& r = reg();
    const bool was = quiesce_locked();
    std::vector<span_record> out;
    {
        std::lock_guard<std::mutex> lock(r.m);
        st.threads = r.rings.size();
        for (const auto& ring : r.rings) {
            const std::uint64_t head = ring->head.load(std::memory_order_acquire);
            const std::uint64_t cap = ring->slots.size();
            st.recorded += static_cast<std::size_t>(std::min(head, cap));
            st.dropped += static_cast<std::size_t>(head > cap ? head - cap : 0);
            drain_ring(*ring, out);
        }
    }
    if (was) detail::g_enabled.store(true, std::memory_order_seq_cst);
    std::sort(out.begin(), out.end(),
              [](const span_record& a, const span_record& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  return a.span_id < b.span_id;
              });
    return out;
}

}  // namespace

void set_tracing_enabled(bool on) noexcept {
    registry& r = reg();
    std::lock_guard<std::mutex> dump_lock(r.dump_m);
    if (on) {
        detail::g_enabled.store(true, std::memory_order_seq_cst);
    } else {
        quiesce_locked();
    }
}

void set_ring_capacity(std::size_t capacity) {
    registry& r = reg();
    std::lock_guard<std::mutex> dump_lock(r.dump_m);
    const bool was = quiesce_locked();
    {
        std::lock_guard<std::mutex> lock(r.m);
        r.capacity = std::max<std::size_t>(capacity, 1);
        r.rings.clear();
        r.generation.fetch_add(1, std::memory_order_acq_rel);
    }
    if (was) detail::g_enabled.store(true, std::memory_order_seq_cst);
}

void reset() {
    registry& r = reg();
    std::lock_guard<std::mutex> dump_lock(r.dump_m);
    const bool was = quiesce_locked();
    {
        std::lock_guard<std::mutex> lock(r.m);
        r.rings.clear();
        r.generation.fetch_add(1, std::memory_order_acq_rel);
    }
    {
        std::lock_guard<std::mutex> lock(r.stage_m);
        r.stages.clear();
    }
    if (was) detail::g_enabled.store(true, std::memory_order_seq_cst);
}

std::uint64_t new_trace_id() noexcept {
    return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t new_span_id() noexcept {
    return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

trace_context current_context() noexcept { return t_ctx; }

context_guard::context_guard(trace_context ctx) noexcept {
    if (!ctx.active()) return;
    prev_ = t_ctx;
    t_ctx = ctx;
    installed_ = true;
}

context_guard::~context_guard() {
    if (installed_) t_ctx = prev_;
}

void emit_span(const char* name, std::uint64_t trace_id, std::uint64_t span_id,
               std::uint64_t parent_id, std::uint64_t start_ns,
               std::uint64_t end_ns) {
    if (!tracing_enabled() || trace_id == 0) return;
    record(name, trace_id, span_id, parent_id, start_ns, end_ns);
}

std::uint64_t emit_child_span(const char* name, trace_context parent,
                              std::uint64_t start_ns, std::uint64_t end_ns) {
    if (!tracing_enabled() || !parent.active()) return 0;
    const std::uint64_t id = new_span_id();
    record(name, parent.trace_id, id, parent.span_id, start_ns, end_ns);
    return id;
}

void scoped_span::begin(const char* name) noexcept {
    name_ = name;
    prev_ = t_ctx;
    // A span opened with no surrounding context roots a fresh trace — that is
    // what happens at the outermost instrumented layer of any entry point.
    mine_.trace_id = prev_.active() ? prev_.trace_id : new_trace_id();
    mine_.span_id = new_span_id();
    t_ctx = mine_;
    start_ns_ = now_ns();
}

void scoped_span::end() noexcept {
    const std::uint64_t stop = now_ns();
    t_ctx = prev_;
    record(name_, mine_.trace_id, mine_.span_id, prev_.span_id, start_ns_,
           stop);
}

std::vector<span_record> snapshot() {
    registry& r = reg();
    std::lock_guard<std::mutex> dump_lock(r.dump_m);
    trace_stats st;
    return collect_locked(st);
}

std::vector<span_record> spans_for_trace(std::uint64_t trace_id) {
    std::vector<span_record> all = snapshot();
    std::vector<span_record> out;
    for (const span_record& rec : all) {
        if (rec.trace_id == trace_id) out.push_back(rec);
    }
    return out;
}

trace_stats stats() {
    registry& r = reg();
    std::lock_guard<std::mutex> dump_lock(r.dump_m);
    trace_stats s;
    collect_locked(s);
    return s;
}

void dump_chrome_trace(std::ostream& os) {
    registry& r = reg();
    trace_stats st;
    std::vector<span_record> spans;
    {
        std::lock_guard<std::mutex> dump_lock(r.dump_m);
        spans = collect_locked(st);
    }
    os << "{\"traceFormatVersion\":\"" << k_trace_format_version << "\",";
    os << "\"displayTimeUnit\":\"ms\",";
    os << "\"otherData\":{\"recorded\":" << st.recorded
       << ",\"dropped\":" << st.dropped << ",\"threads\":" << st.threads
       << "},";
    os << "\"traceEvents\":[";
    char buf[32];
    bool first = true;
    for (const span_record& rec : spans) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << (rec.name != nullptr ? rec.name : "?")
           << "\",\"cat\":\"fisone\",\"ph\":\"X\",\"ts\":";
        // Chrome-trace timestamps are microseconds; keep ns resolution with
        // three decimals. snprintf, not ostream state, so callers' stream
        // formatting never leaks into the dump.
        std::snprintf(buf, sizeof buf, "%llu.%03llu",
                      static_cast<unsigned long long>(rec.start_ns / 1000),
                      static_cast<unsigned long long>(rec.start_ns % 1000));
        os << buf << ",\"dur\":";
        std::snprintf(buf, sizeof buf, "%llu.%03llu",
                      static_cast<unsigned long long>(rec.dur_ns / 1000),
                      static_cast<unsigned long long>(rec.dur_ns % 1000));
        os << buf << ",\"pid\":1,\"tid\":" << rec.tid << ",\"args\":{";
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(rec.trace_id));
        os << "\"trace\":\"" << buf << "\",";
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(rec.span_id));
        os << "\"span\":\"" << buf << "\",";
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(rec.parent_id));
        os << "\"parent\":\"" << buf << "\"}}";
    }
    os << "]}";
}

std::string chrome_trace_json() {
    std::ostringstream os;
    dump_chrome_trace(os);
    return os.str();
}

std::vector<stage_snapshot> stage_stats() {
    registry& r = reg();
    std::lock_guard<std::mutex> lock(r.stage_m);
    std::vector<stage_snapshot> out;
    out.reserve(r.stages.size());
    for (const auto& [name, hist] : r.stages) {
        stage_snapshot s;
        s.stage = name;
        s.count = static_cast<std::size_t>(hist.count());
        s.total_seconds = hist.sum();
        s.p50 = hist.percentile_or_zero(50.0);
        s.p90 = hist.percentile_or_zero(90.0);
        s.p99 = hist.percentile_or_zero(99.0);
        s.le_counts = hist.le_counts();
        out.push_back(std::move(s));
    }
    return out;
}

void reset_stages() {
    registry& r = reg();
    std::lock_guard<std::mutex> lock(r.stage_m);
    r.stages.clear();
}

}  // namespace fisone::obs
