#include "metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace fisone::eval {

namespace {

/// n choose 2 as a double (inputs are counts, safely small).
double choose2(double n) { return n * (n - 1.0) / 2.0; }

/// Contingency table between two labelings plus marginals.
struct contingency {
    std::map<std::pair<int, int>, double> cells;
    std::map<int, double> row_sums;  // predicted marginals
    std::map<int, double> col_sums;  // truth marginals
    double n = 0.0;
};

contingency build_contingency(const std::vector<int>& predicted, const std::vector<int>& truth,
                              const char* what) {
    if (predicted.size() != truth.size())
        throw std::invalid_argument(std::string(what) + ": size mismatch");
    if (predicted.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
    contingency c;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        c.cells[{predicted[i], truth[i]}] += 1.0;
        c.row_sums[predicted[i]] += 1.0;
        c.col_sums[truth[i]] += 1.0;
        c.n += 1.0;
    }
    return c;
}

}  // namespace

double adjusted_rand_index(const std::vector<int>& predicted, const std::vector<int>& truth) {
    const contingency c = build_contingency(predicted, truth, "adjusted_rand_index");

    double sum_cells = 0.0;
    for (const auto& [key, nij] : c.cells) sum_cells += choose2(nij);
    double sum_rows = 0.0;
    for (const auto& [key, ni] : c.row_sums) sum_rows += choose2(ni);
    double sum_cols = 0.0;
    for (const auto& [key, nj] : c.col_sums) sum_cols += choose2(nj);
    const double total_pairs = choose2(c.n);

    if (total_pairs == 0.0) return 1.0;  // single point: trivially identical
    const double expected = sum_rows * sum_cols / total_pairs;
    const double maximum = 0.5 * (sum_rows + sum_cols);
    const double denom = maximum - expected;
    if (denom == 0.0) return 1.0;  // both partitions trivial (all-singletons or one cluster)
    return (sum_cells - expected) / denom;
}

double normalized_mutual_information(const std::vector<int>& predicted,
                                     const std::vector<int>& truth) {
    const contingency c = build_contingency(predicted, truth, "normalized_mutual_information");

    double mi = 0.0;
    for (const auto& [key, nij] : c.cells) {
        if (nij == 0.0) continue;
        const double ni = c.row_sums.at(key.first);
        const double nj = c.col_sums.at(key.second);
        mi += (nij / c.n) * std::log((c.n * nij) / (ni * nj));
    }

    auto entropy = [&c](const std::map<int, double>& marginals) {
        double h = 0.0;
        for (const auto& [key, cnt] : marginals) {
            if (cnt == 0.0) continue;
            const double p = cnt / c.n;
            h -= p * std::log(p);
        }
        return h;
    };
    const double hx = entropy(c.row_sums);
    const double hy = entropy(c.col_sums);
    if (hx + hy == 0.0) return 1.0;  // both constant: identical trivial partitions
    return std::clamp(2.0 * mi / (hx + hy), 0.0, 1.0);
}

double jaro_similarity(const std::vector<int>& sx, const std::vector<int>& sy,
                       bool bounded_window) {
    if (sx.empty() || sy.empty()) return sx.empty() && sy.empty() ? 1.0 : 0.0;

    const std::size_t lx = sx.size();
    const std::size_t ly = sy.size();
    const std::size_t window =
        bounded_window ? (std::max(lx, ly) / 2 == 0 ? 0 : std::max(lx, ly) / 2 - 1)
                       : std::max(lx, ly);

    std::vector<bool> x_matched(lx, false), y_matched(ly, false);
    std::size_t m = 0;
    for (std::size_t i = 0; i < lx; ++i) {
        const std::size_t lo = i > window ? i - window : 0;
        const std::size_t hi = std::min(ly, i + window + 1);
        for (std::size_t j = lo; j < hi; ++j) {
            if (y_matched[j] || sx[i] != sy[j]) continue;
            x_matched[i] = true;
            y_matched[j] = true;
            ++m;
            break;
        }
    }
    if (m == 0) return 0.0;

    // Transpositions: matched elements taken in order from each side;
    // t = half the number of positions where they disagree.
    std::vector<int> mx, my;
    mx.reserve(m);
    my.reserve(m);
    for (std::size_t i = 0; i < lx; ++i)
        if (x_matched[i]) mx.push_back(sx[i]);
    for (std::size_t j = 0; j < ly; ++j)
        if (y_matched[j]) my.push_back(sy[j]);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < m; ++i)
        if (mx[i] != my[i]) ++mismatches;
    const double t = static_cast<double>(mismatches) / 2.0;

    const double md = static_cast<double>(m);
    return (md / static_cast<double>(lx) + md / static_cast<double>(ly) + (md - t) / md) / 3.0;
}

std::vector<int> cluster_majority_floor(const std::vector<int>& assignment,
                                        const std::vector<int>& true_floors,
                                        std::size_t num_clusters) {
    if (assignment.size() != true_floors.size())
        throw std::invalid_argument("cluster_majority_floor: size mismatch");
    std::vector<std::unordered_map<int, std::size_t>> counts(num_clusters);
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        const int c = assignment[i];
        if (c == -1) continue;
        if (c < 0 || static_cast<std::size_t>(c) >= num_clusters)
            throw std::invalid_argument("cluster_majority_floor: label out of range");
        ++counts[static_cast<std::size_t>(c)][true_floors[i]];
    }
    std::vector<int> majority(num_clusters, -1);
    for (std::size_t c = 0; c < num_clusters; ++c) {
        std::size_t best = 0;
        for (const auto& [floor, cnt] : counts[c]) {
            if (cnt > best || (cnt == best && majority[c] != -1 && floor < majority[c])) {
                best = cnt;
                majority[c] = floor;
            }
        }
    }
    return majority;
}

double indexing_edit_distance(const std::vector<int>& cluster_to_floor,
                              const std::vector<int>& majority_floor) {
    if (cluster_to_floor.size() != majority_floor.size())
        throw std::invalid_argument("indexing_edit_distance: size mismatch");
    const std::size_t n = cluster_to_floor.size();
    if (n == 0) throw std::invalid_argument("indexing_edit_distance: empty input");

    // Order clusters by ground-truth majority floor (ties broken by cluster
    // id for determinism); SY is then (1..N) and SX the predicted floors
    // (1-based, as in the paper's worked example).
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&majority_floor](std::size_t a, std::size_t b) {
        return majority_floor[a] < majority_floor[b];
    });

    std::vector<int> sy(n), sx(n);
    for (std::size_t p = 0; p < n; ++p) {
        sy[p] = static_cast<int>(p) + 1;
        sx[p] = cluster_to_floor[order[p]] + 1;
    }
    return jaro_similarity(sx, sy);
}

}  // namespace fisone::eval
