#pragma once

/// \file metrics.hpp
/// The paper's three evaluation metrics (§V-A):
///  - Adjusted Rand Index (ARI) for clustering quality;
///  - Normalised Mutual Information (NMI), 2·MI/(H(X)+H(Y));
///  - the Jaro "edit distance" between the predicted and ground-truth
///    floor-index sequences.
/// All metrics are in [−1, 1] (ARI) or [0, 1] (NMI, edit distance), and
/// higher is better throughout.

#include <cstddef>
#include <vector>

namespace fisone::eval {

/// Adjusted Rand Index between two labelings of the same points. Label
/// values need not be aligned or contiguous.
/// \throws std::invalid_argument on size mismatch or empty input.
[[nodiscard]] double adjusted_rand_index(const std::vector<int>& predicted,
                                         const std::vector<int>& truth);

/// Normalised Mutual Information, 2·MI/(H(X)+H(Y)); 1 when the labelings
/// are identical up to renaming, and defined as 1 when both are constant
/// (both entropies zero ⇒ identical trivial partitions).
[[nodiscard]] double normalized_mutual_information(const std::vector<int>& predicted,
                                                   const std::vector<int>& truth);

/// Jaro similarity between two integer sequences, following the paper's
/// §V-A formula: (m/|SX| + m/|SY| + (m−t)/m)/3 with m the number of
/// matching elements and t the number of transpositions (half the count of
/// matched elements appearing in a different order). The paper's worked
/// example matches elements regardless of position distance, so the
/// matching window is unbounded by default; pass \p bounded_window = true
/// for the classic max(|SX|,|SY|)/2 − 1 window.
[[nodiscard]] double jaro_similarity(const std::vector<int>& sx, const std::vector<int>& sy,
                                     bool bounded_window = false);

/// Majority-vote ground-truth floor of each cluster.
/// \param assignment per-sample cluster label in [0, num_clusters); -1 skips.
/// \param true_floors per-sample ground-truth floor.
/// \returns majority floor per cluster; empty clusters get -1.
[[nodiscard]] std::vector<int> cluster_majority_floor(const std::vector<int>& assignment,
                                                      const std::vector<int>& true_floors,
                                                      std::size_t num_clusters);

/// The paper's indexing metric: order clusters by their ground-truth
/// (majority) floor to form SY = (1..N), read the predicted floors in that
/// order to form SX, and return jaro_similarity(SX, SY). Floors are
/// compared 1-based as in the paper's example.
/// \param cluster_to_floor predicted floor per cluster (0-based).
/// \param majority_floor ground-truth majority floor per cluster (0-based).
[[nodiscard]] double indexing_edit_distance(const std::vector<int>& cluster_to_floor,
                                            const std::vector<int>& majority_floor);

}  // namespace fisone::eval
