#pragma once

/// \file fisone.hpp
/// Umbrella header: the full public API of the FIS-ONE library.
/// Downstream users can include this single header; fine-grained headers
/// remain available for faster builds.

// data model & IO
#include "data/corpus_store.hpp"
#include "data/dataset_io.hpp"
#include "data/rf_sample.hpp"
#include "data/scan_log.hpp"

// numeric substrates
#include "autodiff/optimizer.hpp"
#include "autodiff/tape.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

// the signal graph and RF-GNN
#include "gnn/rf_gnn.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/sampling.hpp"

// clustering, indexing, metrics
#include "cluster/floor_count.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/kmeans.hpp"
#include "eval/metrics.hpp"
#include "indexing/cluster_indexer.hpp"
#include "indexing/similarity.hpp"
#include "tsp/tsp.hpp"

// the system
#include "core/fis_one.hpp"
#include "core/floor_predictor.hpp"

// batch runtime & async service
#include "runtime/batch_runner.hpp"
#include "runtime/task_executor.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"

// versioned request/response API (wire codec, server, client, cache)
#include "api/client.hpp"
#include "api/codec.hpp"
#include "api/message.hpp"
#include "api/result_cache.hpp"
#include "api/server.hpp"

// baselines & simulation
#include "baselines/daegc.hpp"
#include "baselines/graph_features.hpp"
#include "baselines/mds.hpp"
#include "baselines/metis_partitioner.hpp"
#include "baselines/sdcn.hpp"
#include "sim/building_generator.hpp"
#include "sim/propagation.hpp"

// utilities
#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
