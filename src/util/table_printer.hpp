#pragma once

/// \file table_printer.hpp
/// Fixed-width ASCII table rendering for the benchmark harnesses, so each
/// bench binary prints the same rows the paper's tables/figures report.

#include <iosfwd>
#include <string>
#include <vector>

namespace fisone::util {

/// Accumulates rows of string cells and renders them with aligned columns.
class table_printer {
public:
    /// \param title optional caption printed above the table.
    explicit table_printer(std::string title = {}) : title_(std::move(title)) {}

    /// Set the header row.
    void header(std::vector<std::string> cells) { header_ = std::move(cells); }

    /// Append a data row.
    void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    /// Render to \p out with a separator under the header.
    void print(std::ostream& out) const;

    /// Format helper: "0.856(0.086)" — the paper's mean(std) cell format.
    [[nodiscard]] static std::string mean_std(double mean, double std_dev, int precision = 3);

    /// Format helper: fixed-precision number.
    [[nodiscard]] static std::string num(double value, int precision = 3);

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace fisone::util
