#pragma once

/// \file stats.hpp
/// Streaming statistics accumulators. The paper reports every table entry
/// as mean(std) over buildings; `running_stats` provides numerically stable
/// (Welford) accumulation for that.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fisone::util {

/// Welford single-pass mean / variance accumulator.
class running_stats {
public:
    /// Add one observation.
    void add(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        if (count_ == 1 || x < min_) min_ = x;
        if (count_ == 1 || x > max_) max_ = x;
    }

    /// Number of observations so far.
    [[nodiscard]] std::size_t count() const noexcept { return count_; }

    /// Mean of observations; 0 when empty.
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// Population variance; 0 with fewer than two observations.
    [[nodiscard]] double variance() const noexcept {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
    }

    /// Sample (Bessel-corrected) variance; 0 with fewer than two observations.
    [[nodiscard]] double sample_variance() const noexcept {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
    }

    /// Population standard deviation.
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

    /// Smallest observation. \throws std::logic_error when empty.
    [[nodiscard]] double min() const {
        if (count_ == 0) throw std::logic_error("running_stats::min: no observations");
        return min_;
    }

    /// Largest observation. \throws std::logic_error when empty.
    [[nodiscard]] double max() const {
        if (count_ == 0) throw std::logic_error("running_stats::max: no observations");
        return max_;
    }

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const running_stats& other) noexcept {
        if (other.count_ == 0) return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double delta = other.mean_ - mean_;
        const auto n1 = static_cast<double>(count_);
        const auto n2 = static_cast<double>(other.count_);
        const double n = n1 + n2;
        mean_ += delta * n2 / n;
        m2_ += other.m2_ + delta * delta * n1 * n2 / n;
        count_ += other.count_;
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Mean of a vector; \throws std::invalid_argument when empty.
[[nodiscard]] inline double mean_of(const std::vector<double>& xs) {
    if (xs.empty()) throw std::invalid_argument("mean_of: empty input");
    running_stats s;
    for (const double x : xs) s.add(x);
    return s.mean();
}

/// Population standard deviation of a vector; \throws std::invalid_argument when empty.
[[nodiscard]] inline double stddev_of(const std::vector<double>& xs) {
    if (xs.empty()) throw std::invalid_argument("stddev_of: empty input");
    running_stats s;
    for (const double x : xs) s.add(x);
    return s.stddev();
}

/// Nearest-rank percentile of an ascending-sorted \p xs: the smallest
/// observation x such that at least p% of the observations are ≤ x.
/// Callers taking several percentiles of one dataset sort once and use
/// this directly (the service layer's latency p50/p90/p99 snapshot).
/// \param p percentile in [0, 100]; 0 yields the minimum, 100 the maximum.
/// \throws std::invalid_argument when \p xs is empty or \p p is outside
///         [0, 100] (including NaN).
[[nodiscard]] inline double percentile_sorted(const std::vector<double>& xs, double p) {
    if (xs.empty()) throw std::invalid_argument("percentile: empty input");
    if (!(p >= 0.0 && p <= 100.0)) throw std::invalid_argument("percentile: p outside [0, 100]");
    if (p == 0.0) return xs.front();
    const auto rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(xs.size())));
    return xs[std::min(rank, xs.size()) - 1];
}

/// Nearest-rank percentile of unsorted data; sorts a by-value copy.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
    std::sort(xs.begin(), xs.end());
    return percentile_sorted(xs, p);
}

}  // namespace fisone::util
