#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser shared by bench harnesses and examples.
/// Supports `--name value` and `--flag` (boolean) forms.

#include <cstdint>
#include <map>
#include <string>

namespace fisone::util {

/// Parsed command-line arguments with typed, defaulted lookups.
class cli_args {
public:
    /// Parse argv; `--key value` pairs and bare `--switch` flags.
    /// \throws std::invalid_argument on a positional (non `--`) token.
    cli_args(int argc, const char* const* argv);

    /// True if `--name` was present (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const;

    /// String value of `--name`, or \p fallback when absent.
    [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;

    /// Integer value of `--name`, or \p fallback when absent.
    [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

    /// Double value of `--name`, or \p fallback when absent.
    [[nodiscard]] double get_double(const std::string& name, double fallback) const;

private:
    std::map<std::string, std::string> values_;
};

}  // namespace fisone::util
