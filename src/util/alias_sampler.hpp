#pragma once

/// \file alias_sampler.hpp
/// Walker's alias method for O(1) sampling from a fixed discrete
/// distribution. Used for the RSS-proportional neighbour sampling of
/// RF-GNN (paper §III-B) and for the degree^(3/4) negative-sampling
/// distribution of the unsupervised loss.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "rng.hpp"

namespace fisone::util {

/// Precomputed alias table over indices [0, n). Construction is O(n);
/// each draw is O(1).
class alias_sampler {
public:
    alias_sampler() = default;

    /// Build the table from (unnormalised, non-negative) weights.
    /// \throws std::invalid_argument if \p weights is empty, contains a
    ///         negative entry, or sums to zero.
    explicit alias_sampler(const std::vector<double>& weights) {
        if (weights.empty())
            throw std::invalid_argument("alias_sampler: weights must be non-empty");
        double total = 0.0;
        for (const double w : weights) {
            if (w < 0.0)
                throw std::invalid_argument("alias_sampler: negative weight");
            total += w;
        }
        if (total <= 0.0)
            throw std::invalid_argument("alias_sampler: weights sum to zero");

        const std::size_t n = weights.size();
        prob_.assign(n, 0.0);
        alias_.assign(n, 0);

        // Scaled probabilities; split into under- and over-full buckets.
        std::vector<double> scaled(n);
        std::vector<std::size_t> small, large;
        small.reserve(n);
        large.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            scaled[i] = weights[i] * static_cast<double>(n) / total;
            (scaled[i] < 1.0 ? small : large).push_back(i);
        }
        while (!small.empty() && !large.empty()) {
            const std::size_t s = small.back();
            const std::size_t l = large.back();
            small.pop_back();
            large.pop_back();
            prob_[s] = scaled[s];
            alias_[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            (scaled[l] < 1.0 ? small : large).push_back(l);
        }
        // Numerical leftovers are exactly-full buckets.
        for (const std::size_t i : large) prob_[i] = 1.0;
        for (const std::size_t i : small) prob_[i] = 1.0;
    }

    /// Number of categories (0 if default-constructed).
    [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

    /// Draw one index according to the weight distribution.
    [[nodiscard]] std::size_t sample(rng& gen) const {
        if (prob_.empty())
            throw std::logic_error("alias_sampler: sampling from empty table");
        const std::size_t column = static_cast<std::size_t>(gen.uniform_index(prob_.size()));
        return gen.uniform() < prob_[column] ? column : alias_[column];
    }

private:
    std::vector<double> prob_;
    std::vector<std::size_t> alias_;
};

}  // namespace fisone::util
