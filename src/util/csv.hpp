#pragma once

/// \file csv.hpp
/// Minimal CSV reading/writing helpers used by the dataset serialisation
/// layer (src/data). Handles unquoted fields only — the on-disk formats the
/// library defines never require quoting.

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fisone::util {

/// Split \p line on \p delim into trimmed fields. Consecutive delimiters
/// produce empty fields; the result never collapses them.
[[nodiscard]] std::vector<std::string> split_fields(std::string_view line, char delim = ',');

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Join fields with \p delim.
[[nodiscard]] std::string join_fields(const std::vector<std::string>& fields, char delim = ',');

/// Parse a double; \throws std::invalid_argument with the offending text on failure.
[[nodiscard]] double parse_double(std::string_view text);

/// Parse a non-negative integer; \throws std::invalid_argument on failure.
[[nodiscard]] long long parse_int(std::string_view text);

}  // namespace fisone::util
