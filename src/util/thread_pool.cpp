#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace fisone::util {

std::size_t resolve_num_threads(std::size_t requested) noexcept {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

thread_pool::thread_pool(std::size_t num_threads) {
    const std::size_t n = resolve_num_threads(num_threads);
    // A count beyond any real machine is a caller bug (e.g. -1 cast to
    // size_t); fail with a message instead of exhausting the process.
    constexpr std::size_t max_threads = 4096;
    if (n > max_threads)
        throw std::invalid_argument("thread_pool: num_threads " + std::to_string(n) +
                                    " exceeds sanity cap " + std::to_string(max_threads));
    concurrency_ = n;
    workers_.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void thread_pool::worker_loop() {
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // packaged_task captures exceptions into its future
    }
}

std::future<void> thread_pool::submit(std::function<void()> task) {
    std::packaged_task<void()> wrapped(std::move(task));
    std::future<void> result = wrapped.get_future();
    if (workers_.empty()) {
        wrapped();  // concurrency 1: nobody else will ever run it
        return result;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) throw std::runtime_error("thread_pool::submit: pool is stopping");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
    return result;
}

namespace {

/// The one serial decomposition: same chunk boundaries as the pooled path
/// (they depend only on begin/end/grain), executed in chunk order. Both
/// the member fast path and the pool-less free function delegate here so
/// the decomposition rule lives in exactly one place.
void run_serial_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>& chunk) {
    if (end <= begin) return;
    const std::size_t g = std::max<std::size_t>(grain, 1);
    const std::size_t num_chunks = (end - begin + g - 1) / g;
    for (std::size_t c = 0; c < num_chunks; ++c)
        chunk(begin + c * g, std::min(end, begin + (c + 1) * g));
}

/// Shared bookkeeping of one parallel_for call. Lives on the heap because
/// queued helper tasks may outlive the call (they wake up after every chunk
/// was already claimed, see below).
struct for_state {
    std::function<void(std::size_t, std::size_t)> chunk;
    std::size_t begin = 0, end = 0, grain = 1, num_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by m
    std::exception_ptr error;  // first failure, guarded by m
    std::mutex m;
    std::condition_variable all_done;

    /// Claim and run chunks until none remain.
    void drain() {
        std::size_t ran = 0;
        std::exception_ptr local_error;
        for (;;) {
            const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks) break;
            const std::size_t b = begin + c * grain;
            const std::size_t e = std::min(end, b + grain);
            try {
                chunk(b, e);
            } catch (...) {
                if (!local_error) local_error = std::current_exception();
            }
            ++ran;
        }
        if (ran == 0 && !local_error) return;
        {
            const std::lock_guard<std::mutex> lock(m);
            done += ran;
            if (local_error && !error) error = local_error;
            if (done != num_chunks) return;
        }
        all_done.notify_all();
    }
};

}  // namespace

void thread_pool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                               const std::function<void(std::size_t, std::size_t)>& chunk) {
    if (end <= begin) return;
    const std::size_t g = std::max<std::size_t>(grain, 1);
    const std::size_t num_chunks = (end - begin + g - 1) / g;

    if (num_chunks == 1 || workers_.empty()) {
        run_serial_chunks(begin, end, g, chunk);
        return;
    }

    auto state = std::make_shared<for_state>();
    state->chunk = chunk;
    state->begin = begin;
    state->end = end;
    state->grain = g;
    state->num_chunks = num_chunks;

    // Enough helpers to saturate the pool, minus the caller's own share.
    const std::size_t helpers = std::min(workers_.size(), num_chunks - 1);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_)
            for (std::size_t i = 0; i < helpers; ++i)
                queue_.emplace_back([state] { state->drain(); });
    }
    cv_.notify_all();

    state->drain();  // the caller works too

    std::unique_lock<std::mutex> lock(state->m);
    state->all_done.wait(lock, [&] { return state->done == state->num_chunks; });
    if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(thread_pool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk) {
    if (pool != nullptr)
        pool->parallel_for(begin, end, grain, chunk);  // falls back serially itself
    else
        run_serial_chunks(begin, end, grain, chunk);
}

}  // namespace fisone::util
