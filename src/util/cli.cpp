#include "cli.hpp"

#include <stdexcept>
#include <string_view>

#include "csv.hpp"

namespace fisone::util {

cli_args::cli_args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view token = argv[i];
        if (token.size() < 3 || token.substr(0, 2) != "--")
            throw std::invalid_argument("cli_args: expected --flag, got '" + std::string(token) +
                                        "'");
        const std::string name(token.substr(2));
        if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
            values_[name] = argv[++i];
        } else {
            values_[name] = "";  // bare switch
        }
    }
}

bool cli_args::has(const std::string& name) const { return values_.count(name) > 0; }

std::string cli_args::get(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t cli_args::get_int(const std::string& name, std::int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return parse_int(it->second);
}

double cli_args::get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return fallback;
    return parse_double(it->second);
}

}  // namespace fisone::util
