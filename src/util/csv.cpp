#include "csv.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace fisone::util {

std::string_view trim(std::string_view text) noexcept {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string> split_fields(std::string_view line, char delim) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == delim) {
            fields.emplace_back(trim(line.substr(start, i - start)));
            start = i + 1;
        }
    }
    return fields;
}

std::string join_fields(const std::vector<std::string>& fields, char delim) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out.push_back(delim);
        out += fields[i];
    }
    return out;
}

double parse_double(std::string_view text) {
    const std::string_view t = trim(text);
    // std::from_chars for double is available in libstdc++ 11+; keep the
    // stream fallback trivial and locale-independent by using from_chars.
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc{} || ptr != t.data() + t.size())
        throw std::invalid_argument("parse_double: cannot parse '" + std::string(t) + "'");
    return value;
}

long long parse_int(std::string_view text) {
    const std::string_view t = trim(text);
    long long value = 0;
    const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc{} || ptr != t.data() + t.size())
        throw std::invalid_argument("parse_int: cannot parse '" + std::string(t) + "'");
    return value;
}

}  // namespace fisone::util
