#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool shared by the batch runtime and the parallel
/// kernels (RF-GNN propagation, k-means assignment, profile similarity).
///
/// Design constraints, driven by the library's reproducibility contract:
///  - `parallel_for` decomposes [begin, end) into chunks of `grain`
///    indices. The decomposition depends only on (begin, end, grain) —
///    never on the pool size — so any kernel whose chunk results are
///    combined in chunk order is deterministic for every thread count.
///  - Exceptions thrown inside tasks are captured and rethrown on the
///    calling thread (first one wins); the pool itself never dies from a
///    task exception.
///  - The calling thread participates in `parallel_for` execution, so a
///    pool is never idle-blocked on its own caller and nested use (a
///    batch task running parallel kernels on a *different* pool) cannot
///    deadlock.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fisone::util {

/// Resolve a user-facing `num_threads` knob: 0 means "ask the hardware",
/// with a floor of 1 when `hardware_concurrency` is unknown.
[[nodiscard]] std::size_t resolve_num_threads(std::size_t requested) noexcept;

// Graining heuristics for row-partitioned kernels live in
// linalg/parallel_policy.hpp (`parallel_policy::row_grain`), next to the
// other pool-dispatch thresholds.

class thread_pool {
public:
    /// Target concurrency `n = resolve_num_threads(num_threads)`. Because
    /// the calling thread executes chunks during `parallel_for`, only
    /// `n - 1` workers are spawned — `parallel_for` then uses exactly `n`
    /// compute threads, never oversubscribing a saturated machine.
    explicit thread_pool(std::size_t num_threads = 0);

    /// Drains nothing: outstanding tasks are completed, then workers join.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Concurrency level (workers + the participating caller).
    [[nodiscard]] std::size_t size() const noexcept { return concurrency_; }

    /// Enqueue one task; the future reports completion and rethrows any
    /// exception the task raised. With concurrency 1 (no workers) the task
    /// runs inline on the submitting thread.
    std::future<void> submit(std::function<void()> task);

    /// Run `chunk(chunk_begin, chunk_end)` over every grain-sized slice of
    /// [begin, end). Blocks until all chunks finish; the caller executes
    /// chunks alongside the workers. Rethrows the first chunk exception.
    void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& chunk);

private:
    void worker_loop();

    std::size_t concurrency_ = 1;
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Convenience wrapper used by the kernels: serial chunk-ordered execution
/// when \p pool is null (or [begin, end) fits one chunk), pooled otherwise.
void parallel_for(thread_pool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk);

}  // namespace fisone::util
