#pragma once

/// \file hash.hpp
/// Canonical FNV-1a 64-bit hashing for content addressing. Every scalar is
/// folded in as a fixed-width little-endian byte sequence regardless of the
/// host's endianness or type widths, so a digest is a stable *canonical
/// serialisation* hash: the same logical value produces the same digest on
/// every platform and in every build. Doubles hash their IEEE-754 bit
/// pattern (bit-identical values — the repo-wide determinism contract —
/// therefore hash identically; +0.0 and −0.0 deliberately differ).
///
/// Used by `data::content_hash` (building content addressing) and
/// `core::config_fingerprint` (pipeline-config fingerprints), which
/// together key the API layer's result cache.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fisone::util {

/// Incremental FNV-1a 64-bit hasher with canonical scalar encodings.
class fnv1a64 {
public:
    static constexpr std::uint64_t offset_basis = 1469598103934665603ULL;
    static constexpr std::uint64_t prime = 1099511628211ULL;

    /// Fold one raw byte.
    constexpr void byte(std::uint8_t b) noexcept {
        state_ ^= b;
        state_ *= prime;
    }

    constexpr void u8(std::uint8_t v) noexcept { byte(v); }

    constexpr void u16(std::uint16_t v) noexcept {
        byte(static_cast<std::uint8_t>(v));
        byte(static_cast<std::uint8_t>(v >> 8));
    }

    constexpr void u32(std::uint32_t v) noexcept {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    constexpr void u64(std::uint64_t v) noexcept {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    constexpr void i32(std::int32_t v) noexcept { u32(static_cast<std::uint32_t>(v)); }
    constexpr void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
    constexpr void size(std::size_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
    constexpr void boolean(bool v) noexcept { byte(v ? 1 : 0); }

    /// IEEE-754 bit pattern; bit-identical doubles hash identically.
    void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }

    /// Length-prefixed, so "ab"+"c" and "a"+"bc" never collide by framing.
    constexpr void str(std::string_view s) noexcept {
        u64(s.size());
        for (const char c : s) byte(static_cast<std::uint8_t>(c));
    }

    [[nodiscard]] constexpr std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = offset_basis;
};

}  // namespace fisone::util
