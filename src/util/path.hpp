#pragma once

/// \file path.hpp
/// Filesystem-path confinement. `path_within_root` is the one rule every
/// layer that accepts wire-supplied shard paths applies before touching the
/// filesystem: `api::server` checks requests against its configured
/// `shard_root`, and the federation layer's `store_registry` checks them
/// against each mounted store's directory. Hoisted here so the two checks
/// can never drift apart.

#include <filesystem>
#include <string>

namespace fisone::util {

/// True when \p path resolves inside \p root, with symlinks and
/// dot-segments resolved as far as the filesystem allows. Anything the
/// filesystem refuses to resolve is *not* allowed — fail closed.
[[nodiscard]] inline bool path_within_root(const std::string& root,
                                           const std::string& path) noexcept try {
    namespace fs = std::filesystem;
    const fs::path rel = fs::weakly_canonical(fs::path(path))
                             .lexically_relative(fs::weakly_canonical(fs::path(root)));
    return !rel.empty() && rel.begin()->string() != "..";
} catch (...) {
    return false;
}

}  // namespace fisone::util
