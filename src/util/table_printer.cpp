#include "table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fisone::util {

void table_printer::print(std::ostream& out) const {
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
        }
        out << '\n';
    };

    if (!title_.empty()) out << title_ << '\n';
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (const std::size_t w : widths) total += w + 2;
        out << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_) emit(r);
    out.flush();
}

std::string table_printer::mean_std(double mean, double std_dev, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << mean << '(' << std_dev << ')';
    return os.str();
}

std::string table_printer::num(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

}  // namespace fisone::util
