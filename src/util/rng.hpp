#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation for all stochastic
/// components of the library. Every experiment in the paper reports averages
/// over buildings; reproducibility requires that each building's randomness
/// be derived from an explicit 64-bit seed.

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fisone::util {

/// splitmix64 — used to expand a single user seed into the state of the
/// main generator. Passes BigCrush; recommended seeding procedure for
/// xoshiro-family generators.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions, but the library mostly uses the
/// convenience members below to stay allocation- and distribution-free.
class rng {
public:
    using result_type = std::uint64_t;

    /// Construct from a user seed; state is expanded with splitmix64.
    explicit rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

    /// Re-initialise the generator state from \p seed.
    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64_next(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /// Next raw 64-bit output.
    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Uses Lemire's rejection-free-in-practice
    /// multiply-shift reduction with rejection to remove modulo bias.
    [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) {
        if (n == 0) throw std::invalid_argument("rng::uniform_index: n must be > 0");
        const std::uint64_t threshold = (0 - n) % n;
        for (;;) {
            const std::uint64_t r = (*this)();
            if (r >= threshold) return r % n;
        }
    }

    /// Standard normal via Marsaglia polar method.
    [[nodiscard]] double normal() noexcept {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u = 0.0, v = 0.0, s = 0.0;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double scale = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * scale;
        has_spare_ = true;
        return u * scale;
    }

    /// Normal with mean \p mu and standard deviation \p sigma.
    [[nodiscard]] double normal(double mu, double sigma) noexcept {
        return mu + sigma * normal();
    }

    /// Bernoulli trial with success probability \p p.
    [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

    /// Derive an independent child generator; used to give each building /
    /// trainer / worker its own stream without correlation.
    [[nodiscard]] rng split() noexcept { return rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

    /// In-place Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = uniform_index(i);
            std::swap(items[i - 1], items[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    double spare_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace fisone::util
