#pragma once

/// \file percentile.hpp
/// Mergeable percentile aggregation. `stats.hpp`'s `percentile_sorted` answers
/// one-shot queries over a vector the caller sorted; this accumulator owns the
/// observations, keeps them query-ready lazily, and — the reason it exists —
/// merges with other accumulators *exactly*. Percentiles cannot be combined
/// from percentiles (a federated front-end cannot derive a fleet p99 from
/// per-backend p99s), so a layer that may later be aggregated keeps one of
/// these and merges sample sets, not summaries — benches pooling per-thread
/// latencies do exactly that.
///
/// Exactness over sketching: storing every observation keeps the merged
/// percentiles bit-equal to a single accumulator fed the pooled observations
/// (in any merge order).
///
/// **Bounded-use contract.** Memory grows linearly with observations, so
/// this type is only for paths with a bounded campaign-shaped lifetime:
/// benches and tests that record thousands of values and then report. It
/// must NOT be fed by a serve loop — anything observing per-request or
/// per-building events for the life of a server (`service::floor_service`
/// latencies, `net::tcp_server` request latencies, `obs` stage summaries)
/// uses `obs::latency_histogram` instead: fixed ~26 KB, mergeable the same
/// way, percentiles within a documented ≤ 0.79 % relative error.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "stats.hpp"

namespace fisone::util {

/// Exact percentile accumulator with merge. Not thread-safe; callers
/// snapshot/merge under their own locks.
class percentile_accumulator {
public:
    /// Record one observation.
    void add(double x) {
        samples_.push_back(x);
        sorted_ = sorted_ && (samples_.size() == 1 || samples_[samples_.size() - 2] <= x);
    }

    /// Fold \p other's observations into this accumulator. Merging is
    /// order-insensitive: any merge tree over the same observations yields
    /// the same percentiles as one accumulator fed the pooled data.
    void merge(const percentile_accumulator& other) {
        if (other.samples_.empty()) return;
        samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
        sorted_ = false;
    }

    /// Observations recorded so far.
    [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

    /// Nearest-rank percentile of everything recorded (see
    /// `percentile_sorted` for the rank rule). Sorts lazily, so a burst of
    /// `add`s costs one sort at the next query.
    /// \throws std::invalid_argument when empty or \p p outside [0, 100].
    [[nodiscard]] double percentile(double p) const {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        return percentile_sorted(samples_, p);
    }

    /// `percentile(p)`, but 0.0 on an empty accumulator — the shape every
    /// stats snapshot wants ("no observations yet" is not an error there).
    [[nodiscard]] double percentile_or_zero(double p) const {
        return samples_.empty() ? 0.0 : percentile(p);
    }

private:
    mutable std::vector<double> samples_;  ///< sorted iff `sorted_`
    mutable bool sorted_ = true;
};

}  // namespace fisone::util
