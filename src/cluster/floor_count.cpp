#include "floor_count.hpp"

#include <algorithm>
#include <stdexcept>

namespace fisone::cluster {

floor_count_estimate estimate_floor_count_from_linkage(const std::vector<linkage_merge>& merges,
                                                       std::size_t num_points,
                                                       std::size_t min_floors,
                                                       std::size_t max_floors) {
    if (min_floors < 2) throw std::invalid_argument("estimate_floor_count: min_floors < 2");
    if (min_floors > max_floors)
        throw std::invalid_argument("estimate_floor_count: inverted bounds");
    if (num_points < max_floors + 1)
        throw std::invalid_argument("estimate_floor_count: need more points than max_floors");
    if (merges.size() != num_points - 1)
        throw std::invalid_argument("estimate_floor_count: linkage size mismatch");

    // Heights in ascending merge order (same ordering cut_linkage replays).
    std::vector<double> heights;
    heights.reserve(merges.size());
    for (const linkage_merge& m : merges) heights.push_back(m.height);
    std::sort(heights.begin(), heights.end());

    // With k clusters remaining, the next merge (k → k−1) is heights[n−k].
    const auto merge_height = [&](std::size_t k) { return heights[num_points - k]; };

    floor_count_estimate best;
    for (std::size_t k = min_floors; k <= max_floors; ++k) {
        const double into_k_minus_1 = merge_height(k);        // destroys the k-partition
        const double into_k = merge_height(k + 1);            // created the k-partition
        const double ratio = into_k > 1e-300 ? into_k_minus_1 / into_k : 0.0;
        if (ratio > best.gap_ratio) {
            best.gap_ratio = ratio;
            best.num_floors = k;
        }
    }
    for (std::size_t k = min_floors; k <= max_floors; ++k)
        best.heights.push_back(merge_height(k));
    return best;
}

floor_count_estimate estimate_floor_count(const linalg::matrix& points, std::size_t min_floors,
                                          std::size_t max_floors, util::thread_pool* pool) {
    const auto merges = upgma_linkage(points, pool);
    return estimate_floor_count_from_linkage(merges, points.rows(), min_floors, max_floors);
}

}  // namespace fisone::cluster
