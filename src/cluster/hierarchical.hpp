#pragma once

/// \file hierarchical.hpp
/// Proximity-based agglomerative clustering with average linkage (UPGMA) —
/// the signal-clustering step of FIS-ONE (paper §IV-A): start from
/// singletons, repeatedly merge the two closest clusters under
/// d(C_i, C_j) = (1/|C_i||C_j|) Σ Σ ‖r − r'‖₂ until the number of clusters
/// equals the number of floors.
///
/// Implementation: nearest-neighbour-chain over a Lance–Williams distance
/// update (average linkage is reducible, so NN-chain yields the same
/// dendrogram as greedy minimum merging) — O(n²) time, O(n²) float memory.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::cluster {

/// One merge of the dendrogram. `a` and `b` are *representative original
/// point indices* of the two clusters merged; `height` is the average-
/// linkage distance at which they merged.
struct linkage_merge {
    std::size_t a = 0;
    std::size_t b = 0;
    double height = 0.0;
};

/// Full UPGMA dendrogram of the rows of \p points (n−1 merges).
/// \param pool optional worker pool for the O(n²) pairwise-distance
///        initialisation (the dominant cost for the pipeline's sample
///        counts) and for the per-merge Lance–Williams distance-row
///        update. In both sweeps every matrix cell has exactly one
///        writer, so pooled runs are bit-identical to serial ones; the
///        NN-chain scan itself stays serial, and the update only engages
///        the pool above `parallel_policy::min_span` points (below that
///        it collapses to one inline chunk).
/// \throws std::invalid_argument if points has fewer than 1 row.
[[nodiscard]] std::vector<linkage_merge> upgma_linkage(const linalg::matrix& points,
                                                       util::thread_pool* pool = nullptr);

/// Cut a dendrogram into \p k clusters: replay merges in ascending height
/// order until k components remain. Labels are 0..k−1 in order of first
/// appearance by point index.
/// \param n number of original points.
/// \throws std::invalid_argument when k is 0 or exceeds n.
[[nodiscard]] std::vector<int> cut_linkage(const std::vector<linkage_merge>& merges,
                                           std::size_t n, std::size_t k);

/// Convenience: cluster rows of \p points into \p k clusters by UPGMA.
[[nodiscard]] std::vector<int> upgma_cluster(const linalg::matrix& points, std::size_t k,
                                             util::thread_pool* pool = nullptr);

}  // namespace fisone::cluster
