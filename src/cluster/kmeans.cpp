#include "kmeans.hpp"

#include <limits>
#include <stdexcept>

#include "linalg/parallel_policy.hpp"
#include "util/thread_pool.hpp"

namespace fisone::cluster {

namespace {

/// k-means++ seeding: first centroid uniform, then ∝ D²(x).
linalg::matrix seed_centroids(const linalg::matrix& points, std::size_t k, util::rng& gen) {
    const std::size_t n = points.rows();
    const std::size_t d = points.cols();
    linalg::matrix centroids(k, d);

    std::vector<double> min_sqdist(n, std::numeric_limits<double>::max());
    std::size_t first = gen.uniform_index(n);
    for (std::size_t j = 0; j < d; ++j) centroids(0, j) = points(first, j);

    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double sq = linalg::squared_distance(points.row(i), centroids.row(c - 1));
            if (sq < min_sqdist[i]) min_sqdist[i] = sq;
            total += min_sqdist[i];
        }
        std::size_t chosen = n - 1;
        if (total > 0.0) {
            double target = gen.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                target -= min_sqdist[i];
                if (target <= 0.0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = gen.uniform_index(n);  // all points identical
        }
        for (std::size_t j = 0; j < d; ++j) centroids(c, j) = points(chosen, j);
    }
    return centroids;
}

kmeans_result run_once(const linalg::matrix& points, std::size_t k, util::rng& gen,
                       const kmeans_config& cfg, util::thread_pool* pool) {
    const std::size_t n = points.rows();
    const std::size_t d = points.cols();

    kmeans_result result;
    result.centroids = seed_centroids(points, k, gen);
    result.assignment.assign(n, 0);

    // Each point's nearest-centroid search is independent; distances land in
    // a per-point buffer and the inertia is summed serially in index order,
    // so the pooled assignment step is bit-identical to the serial one.
    std::vector<double> best_sqdist(n, 0.0);
    double prev_inertia = std::numeric_limits<double>::max();
    for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
        // Assignment step.
        util::parallel_for(pool, 0, n, linalg::parallel_policy::row_grain(n),
                           [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                double best = std::numeric_limits<double>::max();
                int best_c = 0;
                for (std::size_t c = 0; c < k; ++c) {
                    const double sq =
                        linalg::squared_distance(points.row(i), result.centroids.row(c));
                    if (sq < best) {
                        best = sq;
                        best_c = static_cast<int>(c);
                    }
                }
                result.assignment[i] = best_c;
                best_sqdist[i] = best;
            }
        });
        double inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i) inertia += best_sqdist[i];
        result.inertia = inertia;
        result.iterations = iter + 1;

        // Update step.
        linalg::matrix sums(k, d, 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto c = static_cast<std::size_t>(result.assignment[i]);
            ++counts[c];
            const auto row = points.row(i);
            for (std::size_t j = 0; j < d; ++j) sums(c, j) += row[j];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Empty cluster: reseed at the point farthest from its centroid.
                std::size_t far = 0;
                double far_d = -1.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const auto ci = static_cast<std::size_t>(result.assignment[i]);
                    const double sq =
                        linalg::squared_distance(points.row(i), result.centroids.row(ci));
                    if (sq > far_d) {
                        far_d = sq;
                        far = i;
                    }
                }
                for (std::size_t j = 0; j < d; ++j) result.centroids(c, j) = points(far, j);
                continue;
            }
            for (std::size_t j = 0; j < d; ++j)
                result.centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
        }

        if (prev_inertia - inertia < cfg.tolerance) break;
        prev_inertia = inertia;
    }
    return result;
}

}  // namespace

kmeans_result kmeans(const linalg::matrix& points, std::size_t k, util::rng& gen,
                     const kmeans_config& cfg, util::thread_pool* pool) {
    if (k == 0 || k > points.rows())
        throw std::invalid_argument("kmeans: k out of range");
    if (points.cols() == 0) throw std::invalid_argument("kmeans: zero-dimensional points");

    kmeans_result best;
    best.inertia = std::numeric_limits<double>::max();
    const std::size_t restarts = cfg.restarts == 0 ? 1 : cfg.restarts;
    for (std::size_t r = 0; r < restarts; ++r) {
        kmeans_result candidate = run_once(points, k, gen, cfg, pool);
        if (candidate.inertia < best.inertia) best = std::move(candidate);
    }
    return best;
}

}  // namespace fisone::cluster
