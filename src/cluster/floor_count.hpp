#pragma once

/// \file floor_count.hpp
/// Estimating the number of floors from the data alone — a step toward the
/// fully *unsupervised* floor identification the paper's conclusion sets as
/// future work ("we have taken a first step towards unsupervised floor
/// identification"). FIS-ONE assumes the floor count is known; this module
/// removes that assumption by reading the UPGMA dendrogram: merges within a
/// floor happen at low linkage heights, merges across floors at high ones,
/// so the best cluster count sits just before the largest relative jump in
/// merge height.
///
/// Honest caveat, measured in this repo (see EXPERIMENTS.md): the gap is
/// decisive when clusters are separated (synthetic blob tests recover the
/// count exactly up to k = 9) but RF-GNN embeddings of real-ish buildings
/// blend adjacent floors, leaving near-flat gap profiles; there the
/// estimate typically lands 1-2 below the truth. Fully unsupervised floor
/// identification remains open, exactly as the paper's conclusion states.

#include <cstddef>
#include <vector>

#include "hierarchical.hpp"
#include "linalg/matrix.hpp"

namespace fisone::cluster {

/// Result of a floor-count estimate.
struct floor_count_estimate {
    std::size_t num_floors = 0;   ///< the chosen k
    double gap_ratio = 0.0;       ///< height(merge k→k−1) / height(merge k+1→k)
    std::vector<double> heights;  ///< last max_floors merge heights, ascending k
};

/// Estimate the number of floors from embedding rows via the dendrogram-gap
/// heuristic: choose k in [min_floors, max_floors] maximising the ratio of
/// the merge height that would reduce k clusters to k−1 over the height
/// that reduced k+1 to k.
/// \param points embedding matrix (one row per scan).
/// \param min_floors smallest admissible floor count (≥ 2).
/// \param max_floors largest admissible floor count.
/// \param pool optional worker pool for the UPGMA distance initialisation
///        (see `upgma_linkage`); pooled runs are bit-identical to serial.
/// \throws std::invalid_argument if bounds are inverted, min < 2, or there
///         are fewer points than max_floors + 1.
[[nodiscard]] floor_count_estimate estimate_floor_count(const linalg::matrix& points,
                                                        std::size_t min_floors = 2,
                                                        std::size_t max_floors = 12,
                                                        util::thread_pool* pool = nullptr);

/// Same estimate from a precomputed linkage (avoids recomputing UPGMA when
/// the caller clusters afterwards anyway).
[[nodiscard]] floor_count_estimate estimate_floor_count_from_linkage(
    const std::vector<linkage_merge>& merges, std::size_t num_points,
    std::size_t min_floors = 2, std::size_t max_floors = 12);

}  // namespace fisone::cluster
