#include "hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/parallel_policy.hpp"
#include "util/thread_pool.hpp"

namespace fisone::cluster {

namespace {

/// Disjoint-set with path halving, used to replay merges when cutting.
class union_find {
public:
    explicit union_find(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<linkage_merge> upgma_linkage(const linalg::matrix& points, util::thread_pool* pool) {
    const std::size_t n = points.rows();
    if (n == 0) throw std::invalid_argument("upgma_linkage: no points");
    if (n == 1) return {};

    // Condensed float distance matrix (full square for simple indexing).
    // Row-partitioned across the pool: the thread owning row i writes the
    // cells (i, j) and their mirrors (j, i) for every j > i, so each cell
    // has exactly one writer and the values match the serial fill exactly.
    std::vector<float> dist(n * n, 0.0f);
    util::parallel_for(pool, 0, n, linalg::parallel_policy::row_grain(n),
                       [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                const auto d = static_cast<float>(
                    linalg::euclidean_distance(points.row(i), points.row(j)));
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
    });

    std::vector<bool> active(n, true);
    std::vector<std::size_t> size(n, 1);
    std::vector<linkage_merge> merges;
    merges.reserve(n - 1);

    std::vector<std::size_t> chain;
    chain.reserve(n);
    std::size_t remaining = n;
    std::size_t scan_start = 0;  // first active cluster candidate

    while (remaining > 1) {
        if (chain.empty()) {
            while (!active[scan_start]) ++scan_start;
            chain.push_back(scan_start);
        }
        for (;;) {
            const std::size_t a = chain.back();
            // nearest active neighbour of a; prefer the chain predecessor on ties
            std::size_t best = n;
            float best_d = std::numeric_limits<float>::max();
            const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
            for (std::size_t x = 0; x < n; ++x) {
                if (!active[x] || x == a) continue;
                const float d = dist[a * n + x];
                if (d < best_d || (d == best_d && x == prev)) {
                    best_d = d;
                    best = x;
                }
            }
            if (best == prev) {
                // reciprocal nearest neighbours: merge a and prev
                chain.pop_back();
                chain.pop_back();
                const std::size_t b = prev;
                const double height = best_d;

                // Lance–Williams update for average linkage into slot a.
                // Every x owns its two mirror cells (a,x)/(x,a) and reads
                // only row b and its own cells, so the sweep splits over
                // the pool with one writer per cell — bit-identical to
                // serial. `span_grain` collapses sweeps below the policy's
                // dispatch break-even into a single inline chunk, so the
                // pool only engages at city-scale point counts.
                const auto sa = static_cast<float>(size[a]);
                const auto sb = static_cast<float>(size[b]);
                auto update_rows = [&](std::size_t x0, std::size_t x1) {
                    for (std::size_t x = x0; x < x1; ++x) {
                        if (!active[x] || x == a || x == b) continue;
                        const float d_new =
                            (sa * dist[a * n + x] + sb * dist[b * n + x]) / (sa + sb);
                        dist[a * n + x] = d_new;
                        dist[x * n + a] = d_new;
                    }
                };
                // Below the policy span the sweep is one chunk anyway; run
                // it directly instead of paying a std::function wrap on
                // every one of the n−1 merges.
                if (pool == nullptr || n < linalg::parallel_policy::min_span)
                    update_rows(0, n);
                else
                    util::parallel_for(pool, 0, n, linalg::parallel_policy::span_grain(n),
                                       update_rows);
                active[b] = false;
                size[a] += size[b];
                merges.push_back(linkage_merge{a, b, height});
                --remaining;
                break;
            }
            chain.push_back(best);
        }
    }
    return merges;
}

std::vector<int> cut_linkage(const std::vector<linkage_merge>& merges, std::size_t n,
                             std::size_t k) {
    if (k == 0 || k > n) throw std::invalid_argument("cut_linkage: k out of range");
    if (merges.size() < n - k)
        throw std::invalid_argument("cut_linkage: not enough merges to reach k clusters");

    // Replay merges in ascending height (stable keeps NN-chain order on ties).
    std::vector<std::size_t> order(merges.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&merges](std::size_t x, std::size_t y) {
        return merges[x].height < merges[y].height;
    });

    union_find uf(n);
    const std::size_t to_apply = n - k;
    for (std::size_t i = 0; i < to_apply; ++i) {
        const linkage_merge& m = merges[order[i]];
        uf.unite(m.a, m.b);
    }

    std::vector<int> labels(n, -1);
    int next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = uf.find(i);
        if (labels[root] == -1) labels[root] = next++;
        labels[i] = labels[root];
    }
    return labels;
}

std::vector<int> upgma_cluster(const linalg::matrix& points, std::size_t k,
                               util::thread_pool* pool) {
    const auto merges = upgma_linkage(points, pool);
    return cut_linkage(merges, points.rows(), k);
}

}  // namespace fisone::cluster
