#pragma once

/// \file kmeans.hpp
/// Lloyd's k-means with k-means++ seeding — the alternative clusterer of
/// the paper's ablation (Fig. 8(c,d)), where it replaces UPGMA inside
/// FIS-ONE and costs a few percent of accuracy.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::cluster {

/// Outcome of a k-means run.
struct kmeans_result {
    std::vector<int> assignment;  ///< per-point cluster label in [0, k)
    linalg::matrix centroids;     ///< k × dim
    double inertia = 0.0;         ///< sum of squared distances to assigned centroid
    std::size_t iterations = 0;   ///< Lloyd iterations of the best restart
};

/// Configuration for k-means.
struct kmeans_config {
    std::size_t max_iterations = 100;
    std::size_t restarts = 4;      ///< best-of-N restarts by inertia
    double tolerance = 1e-7;       ///< stop when inertia improvement is below this
};

/// Cluster rows of \p points into \p k clusters.
/// \param pool optional worker pool for the assignment step. Per-point
///        nearest-centroid searches are independent and the inertia is
///        reduced serially from a per-point buffer, so pooled runs are
///        bit-identical to serial ones.
/// \throws std::invalid_argument when k is 0 or exceeds the number of points.
[[nodiscard]] kmeans_result kmeans(const linalg::matrix& points, std::size_t k, util::rng& gen,
                                   const kmeans_config& cfg = {},
                                   util::thread_pool* pool = nullptr);

}  // namespace fisone::cluster
