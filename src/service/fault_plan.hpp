#pragma once

/// \file fault_plan.hpp
/// Deterministic fault injection for the service tier. A `fault_plan`
/// describes how one backend's `floor_service` misbehaves — fail every Nth
/// execution, fail the first N executions, hang before each building,
/// refuse submissions outright, read shards slowly — so every failure mode
/// the federation layer must survive is reproducible in unit tests and CI
/// chaos runs, never left to real hardware to improvise.
///
/// Injected failures are *transient*: their report error strings carry
/// `k_transient_error_prefix`, which is how the retry layer tells an
/// injected (retryable) fault from a genuine deterministic pipeline error
/// (which must NOT be retried — rerunning it would yield the same failure,
/// and retrying only on transient faults is what keeps successful-request
/// output byte-identical to a fault-free run).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fisone::service {

/// How one service misbehaves. Default-constructed = perfectly healthy.
struct fault_plan {
    /// Every Nth building execution reports a transient failure instead of
    /// running the pipeline (0 = off). The counter spans the service's
    /// lifetime, so "every 3rd" means executions 3, 6, 9, …
    std::size_t fail_every = 0;
    /// The first N building executions report a transient failure, then
    /// the service is healthy (0 = off) — the knob circuit-breaker
    /// half-open/readmission tests turn.
    std::size_t fail_first = 0;
    /// Sleep this long before each building runs (0 = off). The sleep is
    /// cooperative: a cancellation request interrupts it, so a hung
    /// backend still honors cancel (and thus deadline enforcement).
    std::uint32_t hang_ms = 0;
    /// Every `submit` throws `backend_crashed` — the backend is reachable
    /// but refuses all work, as a crashed-and-restarting process would.
    bool crash_on_submit = false;
    /// Sleep this long before each building is streamed off a shard
    /// (0 = off) — a degraded disk under the store reads. The ingest
    /// reindex honors it too (the dirty-set re-hash streams the store).
    std::uint32_t slow_read_ms = 0;
    /// Abort the process (`std::abort`, as `kill -9` would) at a chosen
    /// point inside a durable append (0 = off): 1 = after the delta shard
    /// is written but before the manifest temp exists; 2 = after the
    /// manifest temp is written but before the rename makes it visible.
    /// Either way the visible manifest must stay the pre-append one — the
    /// knob the warm-restart ingestion chaos smoke turns.
    std::uint32_t crash_on_append = 0;

    /// Any fault armed?
    [[nodiscard]] bool any() const noexcept {
        return fail_every != 0 || fail_first != 0 || hang_ms != 0 || crash_on_submit ||
               slow_read_ms != 0 || crash_on_append != 0;
    }
};

/// Thrown by `floor_service::submit` under `fault_plan::crash_on_submit`.
struct backend_crashed : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Error-string prefix of every injected (retryable) failure report.
inline constexpr std::string_view k_transient_error_prefix = "transient backend fault: ";

/// True when \p error marks a transient injected fault (retry-safe).
[[nodiscard]] bool is_transient_fault(std::string_view error) noexcept;

/// Parse a per-backend fault-plan spec into one plan per backend.
/// Grammar (whitespace-free): `BACKEND:key=value[,key=value…][;BACKEND:…]`
/// with keys `fail_every`, `fail_first`, `hang_ms`, `crash_on_submit`
/// (value 0/1), `slow_read_ms`, `crash_on_append` (abort step 1/2).
/// Example: `0:fail_every=3;1:hang_ms=200`. Unlisted backends stay
/// healthy.
/// \throws std::invalid_argument on malformed specs, unknown keys, or a
///         backend index >= \p num_backends.
[[nodiscard]] std::vector<fault_plan> parse_fault_plans(std::string_view spec,
                                                        std::size_t num_backends);

}  // namespace fisone::service
