#include "fault_plan.hpp"

#include <cstdint>

namespace fisone::service {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
    throw std::invalid_argument("parse_fault_plans: " + why + " in \"" + std::string(spec) +
                                "\"");
}

std::uint64_t parse_number(std::string_view spec, std::string_view token) {
    if (token.empty()) bad_spec(spec, "empty number");
    std::uint64_t v = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') bad_spec(spec, "non-numeric value \"" + std::string(token) + "\"");
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

}  // namespace

bool is_transient_fault(std::string_view error) noexcept {
    return error.substr(0, k_transient_error_prefix.size()) == k_transient_error_prefix;
}

std::vector<fault_plan> parse_fault_plans(std::string_view spec, std::size_t num_backends) {
    std::vector<fault_plan> plans(num_backends);
    std::size_t start = 0;
    while (start < spec.size()) {
        const std::size_t semi = spec.find(';', start);
        const std::string_view entry =
            spec.substr(start, semi == std::string_view::npos ? semi : semi - start);
        start = semi == std::string_view::npos ? spec.size() : semi + 1;
        if (entry.empty()) continue;

        const std::size_t colon = entry.find(':');
        if (colon == std::string_view::npos) bad_spec(spec, "entry without a backend index");
        const std::uint64_t backend = parse_number(spec, entry.substr(0, colon));
        if (backend >= num_backends)
            bad_spec(spec, "backend " + std::to_string(backend) + " out of range (fleet of " +
                               std::to_string(num_backends) + ")");
        fault_plan& plan = plans[static_cast<std::size_t>(backend)];

        std::string_view body = entry.substr(colon + 1);
        std::size_t at = 0;
        while (at <= body.size()) {
            const std::size_t comma = body.find(',', at);
            const std::string_view kv =
                body.substr(at, comma == std::string_view::npos ? comma : comma - at);
            at = comma == std::string_view::npos ? body.size() + 1 : comma + 1;
            if (kv.empty()) continue;
            const std::size_t eq = kv.find('=');
            if (eq == std::string_view::npos)
                bad_spec(spec, "key without a value \"" + std::string(kv) + "\"");
            const std::string_view key = kv.substr(0, eq);
            const std::uint64_t value = parse_number(spec, kv.substr(eq + 1));
            if (key == "fail_every")
                plan.fail_every = static_cast<std::size_t>(value);
            else if (key == "fail_first")
                plan.fail_first = static_cast<std::size_t>(value);
            else if (key == "hang_ms")
                plan.hang_ms = static_cast<std::uint32_t>(value);
            else if (key == "crash_on_submit")
                plan.crash_on_submit = value != 0;
            else if (key == "slow_read_ms")
                plan.slow_read_ms = static_cast<std::uint32_t>(value);
            else if (key == "crash_on_append") {
                if (value != 1 && value != 2)
                    bad_spec(spec,
                             "crash_on_append must be 1 (abort before the manifest temp) "
                             "or 2 (abort before the rename)");
                plan.crash_on_append = static_cast<std::uint32_t>(value);
            }
            else
                bad_spec(spec, "unknown key \"" + std::string(key) + "\"");
        }
    }
    return plans;
}

}  // namespace fisone::service
