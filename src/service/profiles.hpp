#pragma once

/// \file profiles.hpp
/// Named, shared workload profiles. Transport parity checks (loopback vs
/// TCP, single vs federated) only prove anything when both sides run the
/// *same* pipeline: same seeds, same epochs, same walk counts. Benches and
/// examples used to each re-declare that config by hand, which works until
/// one of them drifts; a named profile pins it in one place, and two
/// processes that both say `--profile quick --seed 7` are guaranteed the
/// same effective configuration — which is exactly the precondition for
/// byte-identical NDJSON across transports.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "floor_service.hpp"

namespace fisone::service {

/// The CI-sized profile every quick bench and smoke test runs: a slimmed
/// pipeline (16-dim embeddings, 4 epochs, 3 walks/node, single-threaded
/// per building) that finishes a handful of buildings in seconds while
/// still exercising every pipeline stage.
[[nodiscard]] service_config quick_profile(std::uint64_t seed, std::size_t num_threads);

/// The heavier default profile (library defaults, campaign seed + workers
/// applied) for full bench runs.
[[nodiscard]] service_config full_profile(std::uint64_t seed, std::size_t num_threads);

/// Look a profile up by name ("quick" | "full").
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] service_config profile_by_name(std::string_view name, std::uint64_t seed,
                                             std::size_t num_threads);

}  // namespace fisone::service
