#pragma once

/// \file floor_service.hpp
/// `fisone::service` — the long-lived asynchronous front-end over the batch
/// runtime. Where `runtime::batch_runner::run` blocks on one in-memory
/// corpus, `floor_service` accepts work continuously: callers submit single
/// buildings or on-disk shard references and get back a `job` handle; one
/// persistent `util::thread_pool` executes everything.
///
/// Semantics:
///  - **Determinism.** A building's pipeline seeds derive purely from
///    (service seed, corpus index) via `runtime::task_seed` — the same rule
///    `batch_runner` uses — so serving a sharded corpus produces results
///    bit-identical to one blocking batch over the same input order, at any
///    worker count and any shard size.
///  - **Backpressure.** At most `max_pending_jobs` jobs may be submitted
///    but not yet finished; `submit` blocks until a slot frees. This bounds
///    both queue memory and, for shard jobs, how much of a corpus can ever
///    be resident (each worker streams one building at a time).
///  - **Cancellation.** `job::cancel` is cooperative: a job that has not
///    started is skipped entirely; a running shard job stops between
///    buildings. Skipped buildings get `ok = false, error = "cancelled"`.
///  - **Observability.** `on_report` fires after every finished building in
///    completion order (serialised); `stats()` snapshots queue depth and
///    latency percentiles at any time.
///
/// A paused service (`pause()` / `resume()`) holds queued jobs at the gate
/// while letting the current building finish — drain control for
/// maintenance, and the hook the backpressure/cancellation tests use to
/// make scheduling deterministic.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fis_one.hpp"
#include "data/corpus_store.hpp"
#include "data/rf_sample.hpp"
#include "fault_plan.hpp"
#include "obs/telemetry.hpp"
#include "runtime/batch_runner.hpp"

namespace fisone::service {

/// A shard of an on-disk corpus, addressed for submission. `first_index`
/// anchors the shard's buildings in the corpus order that seeds derive
/// from; use `make_shard_ref` to build one from an open store.
struct shard_ref {
    std::string path;               ///< shard file path (shard_reader format)
    std::size_t first_index = 0;    ///< corpus index of the shard's first building
    std::size_t num_buildings = 0;  ///< buildings the shard is expected to hold
};

/// Shard \p shard_index of \p store as a submittable reference.
[[nodiscard]] shard_ref make_shard_ref(const data::corpus_store& store, std::size_t shard_index);

/// Lifecycle of a job. `cancelled` means at least one building was skipped
/// by cancellation; buildings finished before the cancel stay valid.
enum class job_state { queued, running, done, cancelled };

/// Service configuration.
struct service_config {
    /// Template pipeline config; per-building copies get `task_seed`-derived
    /// seeds, exactly as in `runtime::batch_config`.
    core::fis_one_config pipeline{};
    std::uint64_t seed = 7;  ///< campaign seed, root of all building seeds
    /// Concurrent jobs (dedicated pool workers). 0 = hardware concurrency.
    std::size_t num_threads = 0;
    /// Backpressure bound: maximum jobs submitted but not yet finished.
    /// `submit` blocks while the bound is reached. Must be ≥ 1.
    std::size_t max_pending_jobs = 64;
    /// Invoked after every finished building (ok, failed or cancelled), in
    /// completion order. Calls are serialised by a service mutex; the
    /// callback must not block or submit new jobs (deadlock) — hand results
    /// off (e.g. `ndjson_exporter::write`) and return. A callback that
    /// throws abandons the remaining reports of the current job (they are
    /// neither recorded nor delivered) but never wedges the service.
    std::function<void(const runtime::building_report&)> on_report;
    /// Deterministic fault injection (tests and chaos drills only; the
    /// default plan is healthy). Injected failures report errors prefixed
    /// with `k_transient_error_prefix`; `crash_on_submit` makes `submit`
    /// throw `backend_crashed` instead of accepting work.
    fault_plan faults{};
};

/// Point-in-time service counters. Latency percentiles are over the
/// per-building pipeline wall times of every finished building so far
/// (0 when nothing finished yet).
struct service_stats {
    std::size_t jobs_submitted = 0;
    std::size_t jobs_queued = 0;     ///< submitted, not yet picked up by a worker
    std::size_t jobs_running = 0;
    std::size_t jobs_done = 0;       ///< finished without any cancelled building
    std::size_t jobs_cancelled = 0;  ///< finished with ≥ 1 building skipped
    std::size_t buildings_done = 0;  ///< ok + failed + cancelled
    std::size_t buildings_ok = 0;
    std::size_t buildings_failed = 0;     ///< pipeline threw (excludes cancelled)
    std::size_t buildings_cancelled = 0;  ///< skipped by job cancellation
    double latency_p50 = 0.0;  ///< seconds per building, nearest-rank
    double latency_p90 = 0.0;
    double latency_p99 = 0.0;
    /// Histogram exposition of the same per-building latencies: exact
    /// observation count and sum, plus cumulative counts over
    /// `obs::k_metrics_le_bounds` (what a Prometheus `_bucket` ladder
    /// renders). Empty `latency_le` means no building has finished.
    std::uint64_t latency_count = 0;
    double latency_sum = 0.0;
    std::vector<std::uint64_t> latency_le;
    /// Result-cache counters. The bare service runs every submission and
    /// leaves these 0; `api::server` serves repeat submissions from its
    /// `api::result_cache` and fills them in its `get_stats` response.
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_evictions = 0;  ///< LRU entries pushed out by capacity
    /// Live-ingestion counters. The bare service (and each backend) leaves
    /// these 0; the federated front-end — owner of the stores, the append
    /// path, and the watch registry — fills them in its merged stats.
    std::size_t ingest_appends = 0;          ///< durable append batches
    std::size_t ingest_dirty_buildings = 0;  ///< buildings re-run after appends
    std::size_t watch_subscribers = 0;       ///< live watch subscriptions (gauge)
};

class floor_service {
public:
    /// Handle to one submitted job. Cheap to copy; all copies share state.
    /// A default-constructed handle is empty (`valid() == false`) and every
    /// other member throws `std::logic_error` on it.
    class job {
    public:
        job() = default;

        [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
        [[nodiscard]] job_state state() const;

        /// Block until the job leaves the queue *and* finishes running.
        void wait() const;

        /// Request cancellation. Returns true when the request landed
        /// before the job finished (its remaining buildings will be
        /// skipped); false when the job was already complete.
        bool cancel();

        /// Reports of the job's buildings in the job's own input order
        /// (one for a building submit, `num_buildings` for a shard).
        /// Blocks until the job finishes.
        [[nodiscard]] const std::vector<runtime::building_report>& reports() const;

    private:
        friend class floor_service;
        struct impl;
        explicit job(std::shared_ptr<impl> state) : impl_(std::move(state)) {}
        std::shared_ptr<impl> impl_;
    };

    /// Spins up the worker pool immediately.
    /// \throws std::invalid_argument on a zero `max_pending_jobs`.
    explicit floor_service(service_config cfg);

    /// Resumes if paused, then waits for every submitted job to finish.
    ~floor_service();

    floor_service(const floor_service&) = delete;
    floor_service& operator=(const floor_service&) = delete;

    /// Per-job completion callback: fires after each of the job's finished
    /// buildings (ok, failed or cancelled), right after the service-wide
    /// `on_report`, serialised with it, and under the same constraints
    /// (must not block or submit jobs). This is how a front-end — e.g.
    /// `api::server` — routes completion-order results back to the caller
    /// that owns the job, which the global callback cannot do.
    using report_callback = std::function<void(const runtime::building_report&)>;

    /// Submit one building; its corpus index (and thus seed) is the next
    /// unused index, so submitting a corpus building-by-building reproduces
    /// the batch over that corpus. Blocks while the service is at
    /// `max_pending_jobs`.
    job submit(data::building b);

    /// Submit one building at an explicit corpus index.
    job submit(data::building b, std::size_t corpus_index);

    /// Submit one building at an explicit corpus index with a per-job
    /// completion callback.
    job submit(data::building b, std::size_t corpus_index, report_callback on_report);

    /// Submit a shard by reference: a worker streams its buildings straight
    /// from disk, one at a time — the shard is never resident as a whole.
    /// Building i of the shard runs at corpus index `first_index + i`.
    job submit(shard_ref ref);

    /// Shard submission with a per-job completion callback (fires once per
    /// building of the shard).
    job submit(shard_ref ref, report_callback on_report);

    /// Claim the next unused corpus index without submitting anything —
    /// the index (and thus seed) a subsequent auto-index submission would
    /// get. Front-ends use it to know a task's identity (for result-cache
    /// keys) before deciding whether the service needs to run it at all.
    [[nodiscard]] std::size_t allocate_corpus_index();

    /// Ensure auto-assigned indices start at or after \p end — what an
    /// explicit-index submission does implicitly. Front-ends call it when
    /// they satisfy an explicit-index submission *without* submitting
    /// (e.g. a result-cache hit), keeping index assignment identical to a
    /// cache-off run.
    void advance_corpus_index(std::size_t end);

    /// Block until every job submitted so far has finished. Throws
    /// `std::logic_error` when called on a paused service with pending
    /// jobs (it would never return).
    void wait_all();

    /// Hold queued jobs at the gate (running buildings finish normally).
    void pause();

    /// Release the gate.
    void resume();

    /// True between `pause()` and `resume()`. Federation routing reads it:
    /// load-aware policies must not hand new work to a backend that is
    /// holding its queue at the gate.
    [[nodiscard]] bool paused() const;

    /// Bounded-queue occupancy: jobs submitted but not yet finished — the
    /// quantity `max_pending_jobs` bounds, and the load signal the
    /// federation layer's least-queue-depth policy routes on. One lock,
    /// no percentile work (unlike a full `stats()` snapshot).
    [[nodiscard]] std::size_t pending_jobs() const;

    [[nodiscard]] service_stats stats() const;

    /// Snapshot of the per-building pipeline latencies behind the
    /// percentiles in `stats()`, as a mergeable bounded histogram. A
    /// federated front-end merges these across backends before taking
    /// fleet percentiles — percentiles themselves cannot be combined.
    /// Bounded on purpose: a long-running serve loop feeds this once per
    /// building forever, so hoarding exact samples
    /// (`util::percentile_accumulator`) would grow without limit;
    /// percentiles carry `obs::latency_histogram::k_max_relative_error`.
    [[nodiscard]] obs::latency_histogram latencies() const;
    [[nodiscard]] const service_config& config() const noexcept { return cfg_; }

    /// Concurrent jobs the pool can run (resolved `num_threads`).
    [[nodiscard]] std::size_t num_workers() const noexcept { return workers_; }

private:
    struct state;

    /// How a building's report came to exist, for the stats counters.
    enum class report_kind { ran, skipped_cancelled, skipped_failed };
    static void record_report(job::impl& im, state& st, runtime::building_report&& report,
                              report_kind kind);

    job enqueue(std::function<void(job::impl&)> body, std::size_t num_buildings,
                report_callback on_report);

    service_config cfg_;
    std::size_t workers_ = 1;
    std::size_t next_index_ = 0;  // guarded by the state mutex
    std::shared_ptr<state> state_;
    std::unique_ptr<util::thread_pool> pool_;
};

}  // namespace fisone::service
