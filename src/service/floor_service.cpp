#include "floor_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "runtime/task_executor.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace fisone::service {

shard_ref make_shard_ref(const data::corpus_store& store, std::size_t shard_index) {
    const data::shard_entry& entry = store.manifest().shards.at(shard_index);
    return shard_ref{store.shard_path(shard_index), entry.first_index, entry.num_buildings};
}

/// Shared synchronisation hub. Jobs hold it by shared_ptr so a handle that
/// outlives the service can still be queried safely.
struct floor_service::state {
    mutable std::mutex m;
    std::condition_variable cv;  ///< pause gate, backpressure slots, completions
    bool paused = false;

    std::size_t pending = 0;  ///< submitted, not yet finished
    std::size_t jobs_submitted = 0;
    std::size_t jobs_running = 0;
    std::size_t jobs_done = 0;
    std::size_t jobs_cancelled = 0;
    std::size_t buildings_ok = 0;
    std::size_t buildings_failed = 0;
    std::size_t buildings_cancelled = 0;
    /// Seconds per building that actually ran, kept mergeable so a
    /// federated front-end can pool latencies across backends. A bounded
    /// histogram, not an exact accumulator: the serve loop feeds this once
    /// per building for the life of the process.
    obs::latency_histogram latencies;

    /// Serialises `on_report` calls without blocking `stats()`. Lock order
    /// where both are held: `report_m` before `m`.
    std::mutex report_m;
    std::function<void(const runtime::building_report&)> on_report;

    /// Lifetime count of building executions, the clock `fault_plan`'s
    /// fail-Nth / fail-first schedules tick against.
    std::atomic<std::size_t> fault_executions{0};
};

namespace {

/// Cooperative injected hang: sleep \p ms in 1 ms slices so a cancel (and
/// thus a federation deadline, which cancels the hung attempt) interrupts
/// it. Returns false when cancellation cut the sleep short.
bool fault_sleep(const std::atomic<bool>& cancel_requested, std::uint32_t ms) {
    for (std::uint32_t waited = 0; waited < ms; ++waited) {
        if (cancel_requested.load()) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return !cancel_requested.load();
}

/// The injected-failure report for execution \p n, if the plan fails it.
std::optional<runtime::building_report> injected_failure(
    const fault_plan& faults, std::size_t n, const runtime::task_executor& executor,
    const std::string& name, std::size_t corpus_index) {
    const bool fail = (faults.fail_first != 0 && n <= faults.fail_first) ||
                      (faults.fail_every != 0 && n % faults.fail_every == 0);
    if (!fail) return std::nullopt;
    return executor.skipped(name, corpus_index,
                            std::string(k_transient_error_prefix) +
                                "injected failure (execution #" + std::to_string(n) + ")");
}

}  // namespace

struct floor_service::job::impl {
    std::shared_ptr<floor_service::state> svc;  // qualified: job::state() shadows the type
    std::atomic<bool> cancel_requested{false};
    job_state st = job_state::queued;  ///< guarded by svc->m
    /// True once a building was actually skipped by cancellation — the
    /// final state is decided by this, not by `cancel_requested`, so a
    /// cancel that lands after the last building still yields `done`.
    bool any_skipped = false;  ///< guarded by svc->m
    std::vector<runtime::building_report> reports;  ///< worker-only until finished
    /// Per-job completion callback; fires after the service-wide one.
    floor_service::report_callback on_report;
};

/// Finish one building of a job: record it, update counters, and fire the
/// service callback — in completion order across all workers.
void floor_service::record_report(job::impl& im, state& st, runtime::building_report&& report,
                                  report_kind kind) {
    // Times the whole completion path: counters + the serialised callback
    // chain (NDJSON export, API response emit, net write buffering).
    obs::scoped_span span("service.report");
    const std::lock_guard<std::mutex> report_lock(st.report_m);
    im.reports.push_back(std::move(report));
    const runtime::building_report& stored = im.reports.back();
    {
        const std::lock_guard<std::mutex> lock(st.m);
        switch (kind) {
            case report_kind::ran:
                if (stored.ok)
                    ++st.buildings_ok;
                else
                    ++st.buildings_failed;
                st.latencies.add(stored.seconds);
                break;
            case report_kind::skipped_cancelled:
                ++st.buildings_cancelled;
                im.any_skipped = true;
                break;
            case report_kind::skipped_failed:
                ++st.buildings_failed;
                break;
        }
    }
    if (st.on_report) st.on_report(stored);
    if (im.on_report) im.on_report(stored);
}

floor_service::floor_service(service_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.max_pending_jobs == 0)
        throw std::invalid_argument("floor_service: max_pending_jobs must be >= 1");
    // Validate the pipeline template eagerly, as batch_runner does.
    runtime::validate_pipeline(cfg_.pipeline);
    workers_ = util::resolve_num_threads(cfg_.num_threads);
    state_ = std::make_shared<state>();
    state_->on_report = cfg_.on_report;
    // thread_pool(n) spawns n−1 workers (the caller participates only in
    // parallel_for, which the service never calls on this pool), so n =
    // workers_ + 1 yields exactly `workers_` dedicated job threads and
    // `submit` never degenerates to inline execution.
    pool_ = std::make_unique<util::thread_pool>(workers_ + 1);
}

floor_service::~floor_service() {
    resume();
    wait_all();
}

// --- job handle -------------------------------------------------------------

job_state floor_service::job::state() const {
    if (!impl_) throw std::logic_error("floor_service::job: empty handle");
    const std::lock_guard<std::mutex> lock(impl_->svc->m);
    return impl_->st;
}

void floor_service::job::wait() const {
    if (!impl_) throw std::logic_error("floor_service::job: empty handle");
    std::unique_lock<std::mutex> lock(impl_->svc->m);
    impl_->svc->cv.wait(lock, [&] {
        return impl_->st == job_state::done || impl_->st == job_state::cancelled;
    });
}

bool floor_service::job::cancel() {
    if (!impl_) throw std::logic_error("floor_service::job: empty handle");
    const std::lock_guard<std::mutex> lock(impl_->svc->m);
    if (impl_->st == job_state::done || impl_->st == job_state::cancelled) return false;
    impl_->cancel_requested.store(true);
    // Wake any worker parked at the pause gate so cancelled jobs drain
    // promptly even while the service is paused.
    impl_->svc->cv.notify_all();
    return true;
}

const std::vector<runtime::building_report>& floor_service::job::reports() const {
    wait();
    return impl_->reports;
}

// --- submission -------------------------------------------------------------

floor_service::job floor_service::enqueue(std::function<void(job::impl&)> body,
                                          std::size_t num_buildings,
                                          report_callback on_report) {
    auto im = std::make_shared<job::impl>();
    im->svc = state_;
    im->on_report = std::move(on_report);
    im->reports.reserve(num_buildings);
    {
        std::unique_lock<std::mutex> lock(state_->m);
        // Backpressure: hold the caller until a pending slot frees.
        state_->cv.wait(lock, [&] { return state_->pending < cfg_.max_pending_jobs; });
        ++state_->pending;
        ++state_->jobs_submitted;
    }
    std::shared_ptr<state> svc = state_;
    // Capture the submitter's trace position so the worker thread can adopt
    // it — this is where a request's trace crosses the thread boundary.
    const obs::trace_context trace_ctx = obs::current_context();
    const std::uint64_t submit_ns = trace_ctx.active() ? obs::now_ns() : 0;
    pool_->submit([im, svc, trace_ctx, submit_ns, body = std::move(body)] {
        {
            std::unique_lock<std::mutex> lock(svc->m);
            // Pause gate. Cancelled jobs pass through to drain immediately.
            svc->cv.wait(lock, [&] {
                return !svc->paused || im->cancel_requested.load();
            });
            im->st = job_state::running;
            ++svc->jobs_running;
        }
        // Submission → pickup, recorded from the worker side because the
        // span only closes once a worker takes the job.
        obs::emit_child_span("service.queue_wait", trace_ctx, submit_ns, obs::now_ns());
        obs::context_guard trace_guard(trace_ctx);
        try {
            obs::scoped_span span("service.execute");
            body(*im);
        } catch (...) {
            // Job bodies fold pipeline errors into reports themselves; the
            // only way here is a throwing on_report callback. Swallow it so
            // the state transition below always runs — a callback bug must
            // never wedge wait_all() or the destructor.
        }
        {
            const std::lock_guard<std::mutex> lock(svc->m);
            im->st = im->any_skipped ? job_state::cancelled : job_state::done;
            --svc->jobs_running;
            if (im->st == job_state::cancelled)
                ++svc->jobs_cancelled;
            else
                ++svc->jobs_done;
            --svc->pending;
        }
        svc->cv.notify_all();
    });
    return job(std::move(im));
}

floor_service::job floor_service::submit(data::building b) {
    return submit(std::move(b), allocate_corpus_index());
}

floor_service::job floor_service::submit(data::building b, std::size_t corpus_index) {
    return submit(std::move(b), corpus_index, nullptr);
}

floor_service::job floor_service::submit(data::building b, std::size_t corpus_index,
                                         report_callback on_report) {
    if (cfg_.faults.crash_on_submit)
        throw backend_crashed("floor_service: injected crash_on_submit");
    {
        const std::lock_guard<std::mutex> lock(state_->m);
        if (corpus_index >= next_index_) next_index_ = corpus_index + 1;
    }
    auto svc = state_;
    const runtime::task_executor executor(cfg_.pipeline, cfg_.seed,
                                          /*single_thread_kernels=*/workers_ > 1);
    return enqueue(
        [b = std::move(b), corpus_index, executor, svc, faults = cfg_.faults](job::impl& im) {
            if (im.cancel_requested.load() ||
                (faults.hang_ms != 0 && !fault_sleep(im.cancel_requested, faults.hang_ms))) {
                record_report(im, *svc, executor.skipped(b.name, corpus_index, "cancelled"),
                              report_kind::skipped_cancelled);
                return;
            }
            if (faults.any()) {
                const std::size_t n = svc->fault_executions.fetch_add(1) + 1;
                if (auto failed = injected_failure(faults, n, executor, b.name, corpus_index)) {
                    record_report(im, *svc, std::move(*failed), report_kind::skipped_failed);
                    return;
                }
            }
            record_report(im, *svc, executor.run(corpus_index, b), report_kind::ran);
        },
        1, std::move(on_report));
}

floor_service::job floor_service::submit(shard_ref ref) {
    return submit(std::move(ref), nullptr);
}

floor_service::job floor_service::submit(shard_ref ref, report_callback on_report) {
    if (cfg_.faults.crash_on_submit)
        throw backend_crashed("floor_service: injected crash_on_submit");
    {
        const std::lock_guard<std::mutex> lock(state_->m);
        const std::size_t end = ref.first_index + ref.num_buildings;
        if (end > next_index_) next_index_ = end;
    }
    auto svc = state_;
    const runtime::task_executor executor(cfg_.pipeline, cfg_.seed,
                                          /*single_thread_kernels=*/workers_ > 1);
    return enqueue(
        [ref = std::move(ref), executor, svc, faults = cfg_.faults](job::impl& im) {
            std::size_t offset = 0;
            const auto skip_rest = [&](const std::string& reason, report_kind kind) {
                for (; offset < ref.num_buildings; ++offset)
                    record_report(im, *svc,
                                  executor.skipped("", ref.first_index + offset, reason),
                                  kind);
            };
            try {
                data::shard_reader reader(ref.path);
                // Stream: exactly one building of the shard is resident at
                // a time, whatever the shard size.
                while (offset < ref.num_buildings) {
                    if (im.cancel_requested.load()) {
                        skip_rest("cancelled", report_kind::skipped_cancelled);
                        return;
                    }
                    const std::uint32_t stall_ms = faults.hang_ms + faults.slow_read_ms;
                    if (stall_ms != 0 && !fault_sleep(im.cancel_requested, stall_ms)) {
                        skip_rest("cancelled", report_kind::skipped_cancelled);
                        return;
                    }
                    std::optional<data::building> b = reader.next();
                    if (!b) {
                        skip_rest("shard ended early: " + ref.path,
                                  report_kind::skipped_failed);
                        return;
                    }
                    const std::size_t corpus_index = ref.first_index + offset;
                    // Consume the slot before recording: if on_report
                    // throws mid-record, skip_rest must not re-report it.
                    ++offset;
                    if (faults.any()) {
                        const std::size_t n = svc->fault_executions.fetch_add(1) + 1;
                        if (auto failed =
                                injected_failure(faults, n, executor, b->name, corpus_index)) {
                            record_report(im, *svc, std::move(*failed),
                                          report_kind::skipped_failed);
                            continue;
                        }
                    }
                    record_report(im, *svc, executor.run(corpus_index, *b), report_kind::ran);
                }
            } catch (const std::exception& e) {
                skip_rest(e.what(), report_kind::skipped_failed);
            }
        },
        ref.num_buildings, std::move(on_report));
}

std::size_t floor_service::allocate_corpus_index() {
    const std::lock_guard<std::mutex> lock(state_->m);
    return next_index_++;
}

void floor_service::advance_corpus_index(std::size_t end) {
    const std::lock_guard<std::mutex> lock(state_->m);
    if (end > next_index_) next_index_ = end;
}

// --- control & observability ------------------------------------------------

void floor_service::wait_all() {
    std::unique_lock<std::mutex> lock(state_->m);
    if (state_->paused && state_->pending > 0)
        throw std::logic_error("floor_service::wait_all: paused with pending jobs");
    state_->cv.wait(lock, [&] { return state_->pending == 0; });
}

void floor_service::pause() {
    const std::lock_guard<std::mutex> lock(state_->m);
    state_->paused = true;
}

void floor_service::resume() {
    {
        const std::lock_guard<std::mutex> lock(state_->m);
        state_->paused = false;
    }
    state_->cv.notify_all();
}

bool floor_service::paused() const {
    const std::lock_guard<std::mutex> lock(state_->m);
    return state_->paused;
}

std::size_t floor_service::pending_jobs() const {
    const std::lock_guard<std::mutex> lock(state_->m);
    return state_->pending;
}

service_stats floor_service::stats() const {
    service_stats out;
    obs::latency_histogram latencies;
    {
        const std::lock_guard<std::mutex> lock(state_->m);
        out.jobs_submitted = state_->jobs_submitted;
        out.jobs_running = state_->jobs_running;
        out.jobs_done = state_->jobs_done;
        out.jobs_cancelled = state_->jobs_cancelled;
        out.jobs_queued = state_->jobs_submitted - state_->jobs_running - state_->jobs_done -
                          state_->jobs_cancelled;
        out.buildings_ok = state_->buildings_ok;
        out.buildings_failed = state_->buildings_failed;
        out.buildings_cancelled = state_->buildings_cancelled;
        out.buildings_done =
            state_->buildings_ok + state_->buildings_failed + state_->buildings_cancelled;
        latencies = state_->latencies;
    }
    out.latency_p50 = latencies.percentile_or_zero(50.0);
    out.latency_p90 = latencies.percentile_or_zero(90.0);
    out.latency_p99 = latencies.percentile_or_zero(99.0);
    out.latency_count = latencies.count();
    out.latency_sum = latencies.sum();
    out.latency_le = latencies.le_counts();
    return out;
}

obs::latency_histogram floor_service::latencies() const {
    const std::lock_guard<std::mutex> lock(state_->m);
    return state_->latencies;
}

}  // namespace fisone::service
