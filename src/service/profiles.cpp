#include "profiles.hpp"

#include <stdexcept>

namespace fisone::service {

service_config quick_profile(std::uint64_t seed, std::size_t num_threads) {
    service_config cfg;
    cfg.pipeline.gnn.embedding_dim = 16;
    cfg.pipeline.gnn.epochs = 4;
    cfg.pipeline.gnn.walks.walks_per_node = 3;
    cfg.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.seed = seed;
    cfg.num_threads = num_threads;
    return cfg;
}

service_config full_profile(std::uint64_t seed, std::size_t num_threads) {
    service_config cfg;
    cfg.seed = seed;
    cfg.num_threads = num_threads;
    return cfg;
}

service_config profile_by_name(std::string_view name, std::uint64_t seed,
                               std::size_t num_threads) {
    if (name == "quick") return quick_profile(seed, num_threads);
    if (name == "full") return full_profile(seed, num_threads);
    throw std::invalid_argument("profile_by_name: unknown profile \"" + std::string(name) +
                                "\" (known: quick, full)");
}

}  // namespace fisone::service
