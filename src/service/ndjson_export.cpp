#include "ndjson_export.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace fisone::service {

namespace {

/// Shortest representation that round-trips the exact double — identical
/// doubles always serialise to identical bytes. JSON has no NaN/Inf, so
/// those become null.
void append_double(std::string& out, double x) {
    if (!std::isfinite(x)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), x);
    if (ec != std::errc{}) throw std::logic_error("ndjson: to_chars failed");
    out.append(buf, end);
}

void append_field_name(std::string& out, const char* name) {
    out += '"';
    out += name;
    out += "\":";
}

}  // namespace

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string to_ndjson(const runtime::building_report& report, const ndjson_options& opts) {
    std::string out;
    out.reserve(128);
    out += '{';
    append_field_name(out, "index");
    out += std::to_string(report.index);
    out += ',';
    append_field_name(out, "name");
    out += '"';
    out += json_escape(report.name);
    out += "\",";
    append_field_name(out, "ok");
    out += report.ok ? "true" : "false";
    out += ',';
    append_field_name(out, "seed");
    out += std::to_string(report.seed);
    out += ',';
    if (report.ok) {
        append_field_name(out, "num_clusters");
        out += std::to_string(report.result.num_clusters);
        out += ',';
        append_field_name(out, "cluster_to_floor");
        out += '[';
        for (std::size_t i = 0; i < report.result.cluster_to_floor.size(); ++i) {
            if (i != 0) out += ',';
            out += std::to_string(report.result.cluster_to_floor[i]);
        }
        out += "],";
        append_field_name(out, "has_ground_truth");
        out += report.result.has_ground_truth ? "true" : "false";
        out += ',';
        append_field_name(out, "ari");
        if (report.result.has_ground_truth)
            append_double(out, report.result.ari);
        else
            out += "null";
        out += ',';
        append_field_name(out, "nmi");
        if (report.result.has_ground_truth)
            append_double(out, report.result.nmi);
        else
            out += "null";
        out += ',';
        append_field_name(out, "edit_distance");
        if (report.result.has_ground_truth)
            append_double(out, report.result.edit_distance);
        else
            out += "null";
        out += ',';
    } else {
        // Keep the schema shape stable so line consumers never branch on
        // key presence, only on null.
        out += "\"num_clusters\":null,\"cluster_to_floor\":null,"
               "\"has_ground_truth\":null,\"ari\":null,\"nmi\":null,"
               "\"edit_distance\":null,";
    }
    if (opts.include_timing) {
        append_field_name(out, "seconds");
        append_double(out, report.seconds);
        out += ',';
    }
    append_field_name(out, "error");
    if (report.ok) {
        out += "null";
    } else {
        out += '"';
        out += json_escape(report.error);
        out += '"';
    }
    out += '}';
    return out;
}

void write_ndjson_line(std::ostream& out, const runtime::building_report& report,
                       const ndjson_options& opts) {
    out << to_ndjson(report, opts) << '\n';
    if (!out) throw std::ios_base::failure("write_ndjson_line: write error");
}

ndjson_exporter::ndjson_exporter(std::ostream& out, ndjson_options opts)
    : out_(out), opts_(opts) {}

void ndjson_exporter::write(const runtime::building_report& report) {
    obs::scoped_span span("pipeline.export");
    // Serialise outside the lock; only the stream append is critical.
    const std::string line = to_ndjson(report, opts_);
    const std::lock_guard<std::mutex> lock(m_);
    out_ << line << '\n';
    if (!out_) throw std::ios_base::failure("ndjson_exporter: write error");
    ++lines_;
}

std::size_t ndjson_exporter::lines_written() const {
    const std::lock_guard<std::mutex> lock(m_);
    return lines_;
}

void export_input_order(std::ostream& out, std::vector<runtime::building_report> reports) {
    obs::scoped_span span("pipeline.export");
    std::sort(reports.begin(), reports.end(),
              [](const runtime::building_report& a, const runtime::building_report& b) {
                  return a.index < b.index;
              });
    for (std::size_t i = 1; i < reports.size(); ++i)
        if (reports[i].index == reports[i - 1].index)
            throw std::invalid_argument("export_input_order: duplicate report index " +
                                        std::to_string(reports[i].index));
    ndjson_options opts;
    opts.include_timing = false;
    for (const runtime::building_report& report : reports) write_ndjson_line(out, report, opts);
}

}  // namespace fisone::service
