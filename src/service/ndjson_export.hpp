#pragma once

/// \file ndjson_export.hpp
/// Machine-readable result streaming: each finished `building_report`
/// becomes exactly one newline-delimited JSON object. One line looks like
/// (wrapped here for the docs):
///
///   {"index":3,"name":"campus-3","ok":true,"seed":1234567890123456789,
///    "num_clusters":4,"cluster_to_floor":[0,1,2,3],
///    "has_ground_truth":true,"ari":0.93125,"nmi":0.9017,
///    "edit_distance":0.0,"seconds":0.42,"error":null}
///
/// Failed buildings carry `"ok":false`, an `"error"` string, and null
/// result fields. Number formatting uses shortest-round-trip `to_chars`,
/// so two bit-identical reports always serialise to the same bytes — the
/// foundation of the service's byte-identical re-export contract. The
/// only non-deterministic field is `seconds` (wall time); disable it via
/// `ndjson_options::include_timing` for reproducible output.

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/batch_runner.hpp"

namespace fisone::service {

/// Serialisation knobs.
struct ndjson_options {
    /// Emit the `"seconds"` field (per-building wall time). Wall time is
    /// the one field that varies run to run; the deterministic re-export
    /// path turns it off.
    bool include_timing = true;
};

/// Escape \p text as JSON string *contents* (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& text);

/// \p report as one JSON object — the line *without* the trailing newline.
[[nodiscard]] std::string to_ndjson(const runtime::building_report& report,
                                    const ndjson_options& opts = {});

/// Write one `\n`-terminated NDJSON line.
void write_ndjson_line(std::ostream& out, const runtime::building_report& report,
                       const ndjson_options& opts = {});

/// Thread-safe streaming sink, built to hang off
/// `service_config::on_report` or `batch_config::on_progress`: every
/// `write` appends one line in call (= completion) order.
class ndjson_exporter {
public:
    explicit ndjson_exporter(std::ostream& out, ndjson_options opts = {});

    /// Serialise and append \p report; serialised across threads.
    /// \throws std::ios_base::failure when the stream goes bad.
    void write(const runtime::building_report& report);

    [[nodiscard]] std::size_t lines_written() const;

private:
    std::ostream& out_;
    ndjson_options opts_;
    mutable std::mutex m_;
    std::size_t lines_ = 0;
};

/// Deterministic re-export: sort \p reports by `index` (input order) and
/// write them without timing. Given the runtime's determinism contract,
/// the bytes produced are identical for any thread count and — via the
/// corpus store's order-preserving split — any shard size.
/// \throws std::invalid_argument when two reports share an index.
void export_input_order(std::ostream& out, std::vector<runtime::building_report> reports);

}  // namespace fisone::service
