#include "propagation.hpp"

#include <algorithm>
#include <cmath>

namespace fisone::sim {

double distance(const position& a, const position& b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    const double dz = a.z - b.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double mean_rss_dbm(const propagation_model& model, const position& tx, const position& rx,
                    unsigned floors_crossed, bool through_atrium) noexcept {
    const double d = std::max(distance(tx, rx), 1.0);
    const double per_floor =
        through_atrium ? model.atrium_attenuation_db : model.floor_attenuation_db;
    return model.rss_at_1m_dbm - 10.0 * model.path_loss_exponent * std::log10(d) -
           per_floor * static_cast<double>(floors_crossed);
}

link_sample compute_link(const propagation_model& model, const position& tx, const position& rx,
                         unsigned floors_crossed, bool through_atrium, double device_offset_db,
                         util::rng& gen) {
    double rss = mean_rss_dbm(model, tx, rx, floors_crossed, through_atrium);
    rss += gen.normal(0.0, model.shadowing_sigma_db);
    rss += device_offset_db;

    link_sample out;
    if (rss < model.detection_threshold_dbm) return out;  // not detected

    rss = std::clamp(rss, model.rss_floor_dbm, model.rss_ceil_dbm);
    if (model.quantize) rss = std::round(rss);
    out.detected = true;
    out.rss_dbm = rss;
    return out;
}

}  // namespace fisone::sim
