#pragma once

/// \file building_generator.hpp
/// Synthetic multi-floor buildings with crowdsourced RF scans — the data
/// substitution for the paper's Microsoft open dataset and the three
/// shopping malls (see DESIGN.md §1). Every building draws AP positions,
/// contributor devices and scan positions from a seeded RNG, runs every
/// AP–scan link through the propagation model, and packages the detected
/// readings as `data::building` with the one-label protocol applied.

#include <cstdint>
#include <string>
#include <vector>

#include "data/rf_sample.hpp"
#include "propagation.hpp"

namespace fisone::sim {

/// How scan positions are drawn.
enum class scan_mode {
    random_positions,  ///< i.i.d. uniform positions (default)
    /// Scans along random-walk trajectories: one contributor walks
    /// `trajectory_length` steps on a floor, scanning at every step with
    /// the same device. Produces the spatially correlated, per-contributor
    /// bursts that real crowdsourcing exhibits.
    trajectories,
};

/// Everything needed to synthesise one building.
struct building_spec {
    std::string name = "synthetic";
    std::size_t num_floors = 5;
    double floor_width_m = 80.0;
    double floor_depth_m = 60.0;
    double floor_height_m = 4.0;
    std::size_t aps_per_floor = 20;
    /// Std-dev of per-AP transmit-power offsets (dB). Real deployments mix
    /// strong ceiling APs with weak ones (printers, hotspots); the weak
    /// tail is what keeps some MACs confined to a single floor (Fig. 1b).
    double ap_power_sigma_db = 6.0;
    std::size_t samples_per_floor = 150;
    std::size_t num_devices = 20;          ///< distinct contributing devices
    double device_offset_sigma_db = 3.0;   ///< per-device RSS bias std-dev
    /// Probability that an audible AP actually appears in a scan's record —
    /// real crowdsourced scans are partial (OS rate limits, short dwell
    /// times), which is the heterogeneity the bipartite model targets.
    double observation_rate = 0.7;
    /// Interior zoning. Real floors are split into wings / fire
    /// compartments whose dividing walls attenuate in-floor links; this is
    /// what makes per-floor signal distributions *multi-modal* (paper §V-B
    /// explicitly blames multi-modality for the centroid-based baselines'
    /// weakness). 1 = open floor plan.
    std::size_t zones_per_floor = 1;
    double zone_wall_db = 9.0;  ///< attenuation added per zone boundary crossed
    bool atrium = false;                   ///< open vertical core (malls)
    double atrium_radius_m = 12.0;
    std::size_t min_observations = 3;      ///< scans detecting fewer APs are redrawn
    std::size_t max_redraw_attempts = 50;
    scan_mode mode = scan_mode::random_positions;
    std::size_t trajectory_length = 10;    ///< scans per walk (trajectories mode)
    double trajectory_step_m = 2.5;        ///< stride between consecutive scans
    propagation_model model{};
    std::uint64_t seed = 1;
};

/// Ground-truth AP record, exposed for diagnostics and simulator tests.
struct ap_info {
    std::uint32_t mac_id = 0;
    position pos{};
    std::int32_t floor = 0;
    double power_offset_db = 0.0;  ///< per-AP deviation from the model's reference power
    std::size_t zone = 0;          ///< wing of the floor the AP sits in
};

/// A generated building together with its AP ground truth.
struct simulated_building {
    data::building building;
    std::vector<ap_info> aps;
};

/// Generate one building. The labeled sample is chosen uniformly among the
/// bottom-floor scans (labeled_floor = 0), matching the paper's protocol.
/// \throws std::invalid_argument on degenerate specs (0 floors/APs/samples).
[[nodiscard]] simulated_building generate_building(const building_spec& spec);

/// Move the single label to a uniformly random sample (used by the §VI
/// arbitrary-floor experiments, Fig. 14). Returns the floor that ended up
/// labeled.
int relabel_random_floor(data::building& b, util::rng& gen);

/// Move the single label to a uniformly random sample *on the given floor*.
/// \throws std::invalid_argument when the floor has no samples.
void relabel_floor(data::building& b, int floor, util::rng& gen);

/// Fig. 1(b) statistic: histogram over MACs of the number of distinct
/// floors (by ground truth of the detecting scans) where each MAC is
/// detected. Index f (1-based via index 0 = "1 floor") counts MACs seen on
/// exactly f+1 floors; MACs never detected are excluded.
[[nodiscard]] std::vector<std::size_t> spillover_histogram(const data::building& b);

/// The paper's Figure 7 floor-count distribution for the "Microsoft-like"
/// corpus: buildings of 3–10 floors with decaying frequency. Returns the
/// floor count for each of \p num_buildings buildings (largest-remainder
/// apportionment so small corpora stay representative).
[[nodiscard]] std::vector<std::size_t> microsoft_floor_counts(std::size_t num_buildings);

/// Synthesise the Microsoft-like corpus: \p num_buildings office-style
/// buildings (no atrium) with Fig.-7 floor counts.
[[nodiscard]] data::corpus make_microsoft_corpus(std::size_t num_buildings,
                                                 std::size_t samples_per_floor,
                                                 std::uint64_t seed);

/// Synthesise the "Ours" corpus: three large malls (5, 5 and 7 floors)
/// with open atria, mirroring the paper's deployment.
[[nodiscard]] data::corpus make_malls_corpus(std::size_t samples_per_floor, std::uint64_t seed);

}  // namespace fisone::sim
