#include "building_generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace fisone::sim {

namespace {

/// Is (x, y) inside the atrium footprint (circle at the floor centre)?
bool in_atrium(const building_spec& spec, double x, double y) {
    const double cx = spec.floor_width_m / 2.0;
    const double cy = spec.floor_depth_m / 2.0;
    const double dx = x - cx;
    const double dy = y - cy;
    return dx * dx + dy * dy <= spec.atrium_radius_m * spec.atrium_radius_m;
}

/// Wing (zone) index of a position: equal vertical slices of the footprint.
std::size_t zone_of(const building_spec& spec, double x) {
    if (spec.zones_per_floor <= 1) return 0;
    const double slice = spec.floor_width_m / static_cast<double>(spec.zones_per_floor);
    auto z = static_cast<std::size_t>(x / slice);
    return std::min(z, spec.zones_per_floor - 1);
}

/// Attenuation from the dividing walls between two zones.
double zone_wall_loss(const building_spec& spec, std::size_t za, std::size_t zb) {
    const std::size_t gap = za > zb ? za - zb : zb - za;
    return spec.zone_wall_db * static_cast<double>(gap);
}

}  // namespace

simulated_building generate_building(const building_spec& spec) {
    if (spec.num_floors < 2)
        throw std::invalid_argument("generate_building: need at least 2 floors");
    if (spec.aps_per_floor == 0) throw std::invalid_argument("generate_building: no APs");
    if (spec.samples_per_floor == 0) throw std::invalid_argument("generate_building: no samples");
    if (spec.num_devices == 0) throw std::invalid_argument("generate_building: no devices");

    util::rng gen(spec.seed);
    simulated_building out;
    out.building.name = spec.name;
    out.building.num_floors = spec.num_floors;
    out.building.num_macs = spec.num_floors * spec.aps_per_floor;

    // --- place APs ---
    out.aps.reserve(out.building.num_macs);
    for (std::size_t f = 0; f < spec.num_floors; ++f) {
        for (std::size_t a = 0; a < spec.aps_per_floor; ++a) {
            ap_info ap;
            ap.mac_id = static_cast<std::uint32_t>(out.aps.size());
            ap.floor = static_cast<std::int32_t>(f);
            ap.pos.x = gen.uniform(0.0, spec.floor_width_m);
            ap.pos.y = gen.uniform(0.0, spec.floor_depth_m);
            ap.pos.z = static_cast<double>(f) * spec.floor_height_m + 2.5;  // ceiling mount
            ap.power_offset_db = gen.normal(0.0, spec.ap_power_sigma_db);
            ap.zone = zone_of(spec, ap.pos.x);
            out.aps.push_back(ap);
        }
    }

    // --- per-device RSS bias ---
    std::vector<double> device_offset(spec.num_devices);
    for (double& o : device_offset) o = gen.normal(0.0, spec.device_offset_sigma_db);

    // --- generate scans ---
    // One scan at position rx on floor f by device dev.
    const auto measure_scan = [&](std::size_t f, const position& rx, std::uint32_t dev) {
        data::rf_sample sample;
        sample.true_floor = static_cast<std::int32_t>(f);
        sample.device_id = dev;
        const bool rx_atrium = spec.atrium && in_atrium(spec, rx.x, rx.y);
        const std::size_t rx_zone = zone_of(spec, rx.x);
        for (const ap_info& ap : out.aps) {
            const auto crossed =
                static_cast<unsigned>(std::abs(ap.floor - sample.true_floor));
            const bool through_atrium = crossed > 0 && rx_atrium && spec.atrium &&
                                        in_atrium(spec, ap.pos.x, ap.pos.y);
            const double wall_loss = zone_wall_loss(spec, ap.zone, rx_zone);
            const link_sample link =
                compute_link(spec.model, ap.pos, rx, crossed, through_atrium,
                             device_offset[dev] + ap.power_offset_db - wall_loss, gen);
            if (link.detected && gen.bernoulli(spec.observation_rate))
                sample.observations.push_back(data::rf_observation{ap.mac_id, link.rss_dbm});
        }
        return sample;
    };
    const auto random_position = [&](std::size_t f) {
        position rx;
        rx.x = gen.uniform(0.0, spec.floor_width_m);
        rx.y = gen.uniform(0.0, spec.floor_depth_m);
        rx.z = static_cast<double>(f) * spec.floor_height_m + 1.2;  // hand height
        return rx;
    };
    constexpr double kPi = 3.14159265358979323846;

    out.building.samples.reserve(spec.num_floors * spec.samples_per_floor);
    for (std::size_t f = 0; f < spec.num_floors; ++f) {
        if (spec.mode == scan_mode::random_positions) {
            for (std::size_t s = 0; s < spec.samples_per_floor; ++s) {
                data::rf_sample sample;
                for (std::size_t attempt = 0; attempt < spec.max_redraw_attempts; ++attempt) {
                    const auto dev =
                        static_cast<std::uint32_t>(gen.uniform_index(spec.num_devices));
                    sample = measure_scan(f, random_position(f), dev);
                    if (sample.observations.size() >= spec.min_observations) break;
                }
                if (sample.observations.size() < spec.min_observations)
                    throw std::runtime_error(
                        "generate_building: could not draw a connected scan; "
                        "check propagation parameters");
                out.building.samples.push_back(std::move(sample));
            }
        } else {
            // Trajectories: one contributor walks and scans every step with
            // the same device; headings wobble and reflect off the walls.
            std::size_t produced = 0;
            std::size_t guard = 0;  // bound the retry loop on hostile specs
            while (produced < spec.samples_per_floor) {
                if (++guard > spec.max_redraw_attempts * spec.samples_per_floor)
                    throw std::runtime_error(
                        "generate_building: trajectories cannot satisfy min_observations");
                const auto dev =
                    static_cast<std::uint32_t>(gen.uniform_index(spec.num_devices));
                position rx = random_position(f);
                double heading = gen.uniform(0.0, 2.0 * kPi);
                const std::size_t steps =
                    std::min(spec.trajectory_length, spec.samples_per_floor - produced);
                for (std::size_t t = 0; t < steps; ++t) {
                    data::rf_sample sample = measure_scan(f, rx, dev);
                    // Dead corners yield sparse scans; keep walking but only
                    // emit scans that meet the minimum.
                    if (sample.observations.size() >= spec.min_observations) {
                        out.building.samples.push_back(std::move(sample));
                        ++produced;
                    }
                    heading += gen.normal(0.0, 0.5);
                    rx.x += spec.trajectory_step_m * std::cos(heading);
                    rx.y += spec.trajectory_step_m * std::sin(heading);
                    if (rx.x < 0.0) {
                        rx.x = -rx.x;
                        heading = kPi - heading;
                    }
                    if (rx.x > spec.floor_width_m) {
                        rx.x = 2.0 * spec.floor_width_m - rx.x;
                        heading = kPi - heading;
                    }
                    if (rx.y < 0.0) {
                        rx.y = -rx.y;
                        heading = -heading;
                    }
                    if (rx.y > spec.floor_depth_m) {
                        rx.y = 2.0 * spec.floor_depth_m - rx.y;
                        heading = -heading;
                    }
                }
            }
        }
    }


    // --- the one label: a uniformly random bottom-floor scan ---
    std::vector<std::size_t> bottom;
    for (std::size_t i = 0; i < out.building.samples.size(); ++i)
        if (out.building.samples[i].true_floor == 0) bottom.push_back(i);
    out.building.labeled_sample = bottom[gen.uniform_index(bottom.size())];
    out.building.labeled_floor = 0;

    out.building.validate();
    return out;
}

int relabel_random_floor(data::building& b, util::rng& gen) {
    const std::size_t idx = gen.uniform_index(b.samples.size());
    b.labeled_sample = idx;
    b.labeled_floor = b.samples[idx].true_floor;
    return b.labeled_floor;
}

void relabel_floor(data::building& b, int floor, util::rng& gen) {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < b.samples.size(); ++i)
        if (b.samples[i].true_floor == floor) candidates.push_back(i);
    if (candidates.empty())
        throw std::invalid_argument("relabel_floor: no samples on requested floor");
    b.labeled_sample = candidates[gen.uniform_index(candidates.size())];
    b.labeled_floor = floor;
}

std::vector<std::size_t> spillover_histogram(const data::building& b) {
    std::vector<std::set<std::int32_t>> floors_seen(b.num_macs);
    for (const data::rf_sample& s : b.samples)
        for (const data::rf_observation& o : s.observations)
            floors_seen[o.mac_id].insert(s.true_floor);

    std::vector<std::size_t> hist(b.num_floors, 0);
    for (const auto& floors : floors_seen) {
        if (floors.empty()) continue;  // AP never detected
        ++hist[floors.size() - 1];
    }
    return hist;
}

std::vector<std::size_t> microsoft_floor_counts(std::size_t num_buildings) {
    // Relative frequencies eyeballed from the paper's Figure 7 (3–10 floors,
    // strongly skewed toward low-rise buildings).
    static constexpr double kWeights[] = {0.25, 0.22, 0.20, 0.11, 0.10, 0.06, 0.04, 0.02};
    constexpr std::size_t kKinds = 8;  // floors 3..10

    // Largest-remainder apportionment.
    double total = 0.0;
    for (const double w : kWeights) total += w;
    std::vector<double> exact(kKinds);
    std::vector<std::size_t> counts(kKinds, 0);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < kKinds; ++i) {
        exact[i] = kWeights[i] / total * static_cast<double>(num_buildings);
        counts[i] = static_cast<std::size_t>(exact[i]);
        assigned += counts[i];
    }
    while (assigned < num_buildings) {
        std::size_t best = 0;
        double best_frac = -1.0;
        for (std::size_t i = 0; i < kKinds; ++i) {
            const double frac = exact[i] - static_cast<double>(counts[i]);
            if (frac > best_frac) {
                best_frac = frac;
                best = i;
            }
        }
        ++counts[best];
        ++assigned;
    }

    std::vector<std::size_t> floors;
    floors.reserve(num_buildings);
    for (std::size_t i = 0; i < kKinds; ++i)
        for (std::size_t c = 0; c < counts[i]; ++c) floors.push_back(i + 3);
    return floors;
}

data::corpus make_microsoft_corpus(std::size_t num_buildings, std::size_t samples_per_floor,
                                   std::uint64_t seed) {
    data::corpus corpus;
    corpus.name = "Microsoft";
    const auto floor_counts = microsoft_floor_counts(num_buildings);
    util::rng seeder(seed);
    for (std::size_t i = 0; i < floor_counts.size(); ++i) {
        building_spec spec;
        spec.name = "ms-building-" + std::to_string(i);
        spec.num_floors = floor_counts[i];
        spec.floor_width_m = 60.0;
        spec.floor_depth_m = 40.0;
        spec.aps_per_floor = 16;
        // Offices are walled interiors: higher path-loss exponent than the
        // open-space malls, giving scans horizontal locality.
        spec.model.path_loss_exponent = 3.3;
        spec.samples_per_floor = samples_per_floor;
        spec.atrium = false;
        spec.seed = seeder();
        corpus.buildings.push_back(generate_building(spec).building);
    }
    return corpus;
}

data::corpus make_malls_corpus(std::size_t samples_per_floor, std::uint64_t seed) {
    data::corpus corpus;
    corpus.name = "Ours";
    util::rng seeder(seed);
    const std::size_t floors[] = {5, 5, 7};
    for (std::size_t i = 0; i < 3; ++i) {
        building_spec spec;
        spec.name = "mall-" + std::to_string(i);
        spec.num_floors = floors[i];
        spec.floor_width_m = 120.0;
        spec.floor_depth_m = 80.0;
        spec.aps_per_floor = 21;  // an 8-floor mall then carries ~168 MACs (Fig. 1b)
        spec.samples_per_floor = samples_per_floor;
        spec.atrium = true;
        spec.atrium_radius_m = 15.0;
        // Malls are open space: lower path-loss exponent than the walled
        // default, plus stronger shadowing and device spread (glass fronts,
        // crowds, many contributor phones). Calibrated so FIS-ONE lands at
        // the paper's "Ours" difficulty (~0.85 ARI) at bench scale.
        spec.model.path_loss_exponent = 2.7;
        spec.model.shadowing_sigma_db = 6.0;
        spec.device_offset_sigma_db = 4.0;
        spec.seed = seeder();
        corpus.buildings.push_back(generate_building(spec).building);
    }
    return corpus;
}

}  // namespace fisone::sim
