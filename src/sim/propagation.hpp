#pragma once

/// \file propagation.hpp
/// Multi-floor indoor RF propagation model. Log-distance path loss with a
/// per-floor attenuation factor (FAF), log-normal shadowing, per-device
/// RSS bias and a detection threshold — the standard multi-wall/multi-floor
/// model family (cf. the paper's refs [23], [25]). The FAF term is what
/// produces the *signal spillover* structure FIS-ONE exploits: adjacent
/// floors hear each other's APs at reduced strength, distant floors mostly
/// do not (paper Fig. 1). An optional *atrium* (open vertical core, as in
/// the paper's shopping malls) lets a few central APs reach many floors,
/// reproducing the long tail of Fig. 1(b).

#include <cstdint>

#include "util/rng.hpp"

namespace fisone::sim {

/// A 3-D position in metres.
struct position {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
};

/// Straight-line distance.
[[nodiscard]] double distance(const position& a, const position& b) noexcept;

/// Parameters of the propagation model.
struct propagation_model {
    double rss_at_1m_dbm = -35.0;       ///< reference RSS at 1 m, same floor
    double path_loss_exponent = 3.1;    ///< indoor-with-obstacles exponent
    double floor_attenuation_db = 16.0; ///< loss per concrete floor crossed
    double atrium_attenuation_db = 3.0; ///< loss per floor across the open atrium
    double shadowing_sigma_db = 5.0;    ///< log-normal shadowing std-dev
    double detection_threshold_dbm = -94.0;
    double rss_floor_dbm = -110.0;      ///< readings clamp here (chipset floor)
    double rss_ceil_dbm = -25.0;        ///< readings clamp here (saturation)
    bool quantize = true;               ///< round to whole dBm like real chipsets
};

/// Result of a single link computation.
struct link_sample {
    bool detected = false;
    double rss_dbm = -120.0;
};

/// Compute the received signal strength between \p tx and \p rx.
/// \param floors_crossed |Δfloor| between transmitter and receiver.
/// \param through_atrium true when the vertical path goes through the open
///        atrium (both endpoints within the atrium footprint).
/// \param device_offset_db receiver-hardware bias added to the reading.
/// \param gen randomness source for shadowing.
[[nodiscard]] link_sample compute_link(const propagation_model& model, const position& tx,
                                       const position& rx, unsigned floors_crossed,
                                       bool through_atrium, double device_offset_db,
                                       util::rng& gen);

/// Deterministic mean RSS (no shadowing, no offset) — used by tests to
/// check monotonicity properties of the model.
[[nodiscard]] double mean_rss_dbm(const propagation_model& model, const position& tx,
                                  const position& rx, unsigned floors_crossed,
                                  bool through_atrium) noexcept;

}  // namespace fisone::sim
