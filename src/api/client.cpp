#include "client.hpp"

#include <istream>
#include <ostream>

#include "codec.hpp"

namespace fisone::api {

client::client(server& srv) {
    session_ = srv.open([this](std::string_view frame) { collect_frame(frame); });
}

client::client(std::ostream& to_server) : to_server_(&to_server) {}

void client::collect_frame(std::string_view frame) {
    // Decoding our own server's frames can only fail if the codec itself
    // is broken; surface that as a collected error_response rather than
    // throwing through the server's emit path.
    decode_result<response> decoded = decode_response(frame);
    const std::lock_guard<std::mutex> lock(collect_m_);
    raw_.append(frame.data(), frame.size());
    if (decoded.value)
        responses_.push_back(*std::move(decoded.value));
    else
        responses_.push_back(error_response{
            0, decoded.error ? decoded.error->code : error_code::bad_payload,
            decoded.error ? decoded.error->message : "unreadable response frame"});
}

void client::send(const request& req) {
    const std::string frame = encode(req);
    if (session_) {
        session_->handle_frame(frame);
        return;
    }
    to_server_->write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!*to_server_) throw std::ios_base::failure("api::client: request stream went bad");
}

std::uint64_t client::identify(const data::building& b) {
    const std::uint64_t corr = next_correlation_++;
    identify_building_request m;
    m.correlation_id = corr;
    m.b = b;
    send(request(std::move(m)));
    return corr;
}

std::uint64_t client::identify(const data::building& b, std::uint64_t corpus_index) {
    const std::uint64_t corr = next_correlation_++;
    identify_building_request m;
    m.correlation_id = corr;
    m.has_index = true;
    m.corpus_index = corpus_index;
    m.b = b;
    send(request(std::move(m)));
    return corr;
}

std::uint64_t client::identify_shard(const service::shard_ref& ref) {
    const std::uint64_t corr = next_correlation_++;
    identify_shard_request m;
    m.correlation_id = corr;
    m.ref = ref;
    send(request(std::move(m)));
    return corr;
}

std::uint64_t client::get_stats() {
    const std::uint64_t corr = next_correlation_++;
    send(request(get_stats_request{corr}));
    return corr;
}

std::uint64_t client::cancel(std::uint64_t target_correlation_id) {
    const std::uint64_t corr = next_correlation_++;
    send(request(cancel_job_request{corr, target_correlation_id}));
    return corr;
}

std::uint64_t client::flush() {
    const std::uint64_t corr = next_correlation_++;
    send(request(flush_request{corr}));
    return corr;
}

std::uint64_t client::append_scans(const std::string& corpus_name,
                                   const std::vector<data::building>& records) {
    const std::uint64_t corr = next_correlation_++;
    append_scans_request m;
    m.correlation_id = corr;
    m.corpus_name = corpus_name;
    m.records = records;
    send(request(std::move(m)));
    return corr;
}

std::uint64_t client::watch(const std::string& name, bool subscribe) {
    const std::uint64_t corr = next_correlation_++;
    watch_request m;
    m.correlation_id = corr;
    m.name = name;
    m.subscribe = subscribe;
    send(request(std::move(m)));
    return corr;
}

std::size_t client::ingest(std::istream& from_server) {
    std::size_t decoded_frames = 0;
    for (;;) {
        decode_result<response> r = read_response(from_server);
        if (r.eof) break;
        ++decoded_frames;
        if (r.value) {
            responses_.push_back(*std::move(r.value));
        } else {
            responses_.push_back(error_response{0, r.error->code, r.error->message});
            if (r.fatal) break;
        }
    }
    return decoded_frames;
}

std::vector<runtime::building_report> client::reports() const {
    std::vector<runtime::building_report> out;
    for (const response& r : responses_)
        if (const auto* b = std::get_if<building_response>(&r)) out.push_back(b->report);
    return out;
}

std::vector<runtime::building_report> client::reports(std::uint64_t correlation_id) const {
    std::vector<runtime::building_report> out;
    for (const response& r : responses_)
        if (const auto* b = std::get_if<building_response>(&r))
            if (b->correlation_id == correlation_id) out.push_back(b->report);
    return out;
}

std::optional<service::service_stats> client::last_stats() const {
    std::optional<service::service_stats> out;
    for (const response& r : responses_)
        if (const auto* s = std::get_if<stats_response>(&r)) out = s->stats;
    return out;
}

std::vector<error_response> client::errors() const {
    std::vector<error_response> out;
    for (const response& r : responses_)
        if (const auto* e = std::get_if<error_response>(&r)) out.push_back(*e);
    return out;
}

}  // namespace fisone::api
