#pragma once

/// \file result_cache.hpp
/// Content-addressed LRU cache over finished building reports. The key is
/// (canonical building content hash, effective-config fingerprint):
///  - `data::content_hash` digests the building exactly as the pipeline
///    consumes it;
///  - `core::config_fingerprint` digests every result-relevant config
///    field *including the task-derived seeds* (and excluding
///    `num_threads`, which never changes results).
/// Because the fingerprint covers the derived seed, a hit guarantees the
/// cached report is bit-identical to what the pipeline would produce for
/// this submission — resubmitting a corpus at the same indices skips the
/// pipeline entirely while responses stay byte-identical to cache-off
/// runs (only the non-deterministic `seconds` field differs, as between
/// any two runs).
///
/// Only `ok` reports are worth caching; the server enforces that policy,
/// the cache itself stores whatever it is given. Thread-safe; eviction is
/// strict LRU on lookup-or-insert recency.
///
/// **Persistent spill.** With a `cache_spill_config`, every insert is also
/// written to disk as one file per entry — named by the key
/// (`<content_hash>-<config_fingerprint>.rc`, both as 16-hex-digit fields)
/// and holding the entry as an encoded `building_response` frame. Writes
/// go to a `.tmp` sibling first and land via `rename`, so a crash at any
/// instant leaves either the complete old file, the complete new file, or
/// a sweepable temp — never a torn entry. On construction the cache warm-
/// loads from the directory, but each instance restores **only its
/// affinity shard** (`content_hash % shard_count == shard_index`, the same
/// arithmetic content-hash-affinity routing uses) — the "least data
/// necessary" rule of distributed-checkpoint loading: a restarted fleet
/// member never reads its peers' entries. The key is parsed from the
/// filename, so shard filtering never opens out-of-shard files at all.
/// Corrupt files are deleted on load; leftover `.tmp` files are swept.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "runtime/batch_runner.hpp"

namespace fisone::api {

/// Content address of one pipeline execution.
struct cache_key {
    std::uint64_t content_hash = 0;        ///< `data::content_hash` of the building
    std::uint64_t config_fingerprint = 0;  ///< `core::config_fingerprint` of the effective config

    friend bool operator==(const cache_key&, const cache_key&) noexcept = default;
};

/// Point-in-time cache counters.
struct result_cache_stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
    std::size_t evictions = 0;
    std::size_t warm_loaded = 0;  ///< entries restored from disk at construction
};

/// Where (and which shard of) a persistent spill lives. An empty `dir`
/// disables persistence entirely — the cache is purely in-memory.
struct cache_spill_config {
    std::string dir;  ///< spill directory, shared by the whole fleet; created on demand
    std::size_t shard_count = 1;  ///< fleet size the affinity filter divides by
    std::size_t shard_index = 0;  ///< this instance's shard (< shard_count)

    [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

class result_cache {
public:
    /// \throws std::invalid_argument on zero capacity, a zero
    /// `shard_count`, or a `shard_index` out of range. With spill enabled,
    /// creates the directory and warm-loads this instance's shard.
    explicit result_cache(std::size_t capacity, cache_spill_config spill = {});

    /// The cached report for \p key, refreshed to most-recently-used; or
    /// nullopt. Counts one hit or miss.
    [[nodiscard]] std::optional<runtime::building_report> lookup(const cache_key& key);

    /// Insert (or refresh) \p report under \p key, evicting the least
    /// recently used entry when full. Does not count a hit or miss. With
    /// spill enabled the entry is durable on disk (write-then-rename)
    /// *before* it becomes visible in memory; a spill I/O failure is
    /// swallowed — persistence degrades, serving never does. Disk entries
    /// are not evicted with their in-memory twins: the spill is the warm-
    /// restart superset, bounded by the corpus, not by `capacity`.
    void insert(const cache_key& key, runtime::building_report report);

    [[nodiscard]] result_cache_stats stats() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] const cache_spill_config& spill() const noexcept { return spill_; }

    /// Drop every in-memory entry (counters and disk spill survive).
    void clear();

private:
    void warm_load();
    struct key_hash {
        std::size_t operator()(const cache_key& k) const noexcept {
            // The halves are already avalanched FNV digests; xor with an
            // odd-multiplier spread keeps (a,b) and (b,a) distinct.
            return static_cast<std::size_t>(k.content_hash * 0x9e3779b97f4a7c15ULL ^
                                            k.config_fingerprint);
        }
    };

    using lru_list = std::list<std::pair<cache_key, runtime::building_report>>;

    std::size_t capacity_;
    cache_spill_config spill_;
    mutable std::mutex m_;
    lru_list entries_;  ///< front = most recently used
    std::unordered_map<cache_key, lru_list::iterator, key_hash> index_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
    std::size_t warm_loaded_ = 0;
};

}  // namespace fisone::api
