#pragma once

/// \file result_cache.hpp
/// Content-addressed LRU cache over finished building reports. The key is
/// (canonical building content hash, effective-config fingerprint):
///  - `data::content_hash` digests the building exactly as the pipeline
///    consumes it;
///  - `core::config_fingerprint` digests every result-relevant config
///    field *including the task-derived seeds* (and excluding
///    `num_threads`, which never changes results).
/// Because the fingerprint covers the derived seed, a hit guarantees the
/// cached report is bit-identical to what the pipeline would produce for
/// this submission — resubmitting a corpus at the same indices skips the
/// pipeline entirely while responses stay byte-identical to cache-off
/// runs (only the non-deterministic `seconds` field differs, as between
/// any two runs).
///
/// Only `ok` reports are worth caching; the server enforces that policy,
/// the cache itself stores whatever it is given. Thread-safe; eviction is
/// strict LRU on lookup-or-insert recency.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "runtime/batch_runner.hpp"

namespace fisone::api {

/// Content address of one pipeline execution.
struct cache_key {
    std::uint64_t content_hash = 0;        ///< `data::content_hash` of the building
    std::uint64_t config_fingerprint = 0;  ///< `core::config_fingerprint` of the effective config

    friend bool operator==(const cache_key&, const cache_key&) noexcept = default;
};

/// Point-in-time cache counters.
struct result_cache_stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
    std::size_t evictions = 0;
};

class result_cache {
public:
    /// \throws std::invalid_argument on zero capacity.
    explicit result_cache(std::size_t capacity);

    /// The cached report for \p key, refreshed to most-recently-used; or
    /// nullopt. Counts one hit or miss.
    [[nodiscard]] std::optional<runtime::building_report> lookup(const cache_key& key);

    /// Insert (or refresh) \p report under \p key, evicting the least
    /// recently used entry when full. Does not count a hit or miss.
    void insert(const cache_key& key, runtime::building_report report);

    [[nodiscard]] result_cache_stats stats() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Drop every entry (counters survive).
    void clear();

private:
    struct key_hash {
        std::size_t operator()(const cache_key& k) const noexcept {
            // The halves are already avalanched FNV digests; xor with an
            // odd-multiplier spread keeps (a,b) and (b,a) distinct.
            return static_cast<std::size_t>(k.content_hash * 0x9e3779b97f4a7c15ULL ^
                                            k.config_fingerprint);
        }
    };

    using lru_list = std::list<std::pair<cache_key, runtime::building_report>>;

    std::size_t capacity_;
    mutable std::mutex m_;
    lru_list entries_;  ///< front = most recently used
    std::unordered_map<cache_key, lru_list::iterator, key_hash> index_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

}  // namespace fisone::api
