#pragma once

/// \file server.hpp
/// The API dispatcher: decodes request frames, routes them onto a
/// `service::floor_service`, and streams encoded response frames back in
/// completion order with correlation ids. Transports are trivial by
/// construction:
///  - `serve(in, out)` speaks the framed codec over any
///    `std::istream`/`std::ostream` pair (a file, a socketpair wrapper, a
///    `std::stringstream` in tests);
///  - `open(sink)` is the in-process loopback: callers hand encoded
///    request frames to `session::handle_frame` (or decoded messages to
///    `session::handle`) and receive encoded response frames through the
///    sink — the exact same codec path as the framed stream, so the two
///    transports are byte-identical by construction.
///
/// Result caching: `identify_building` requests are content-addressed
/// through an `api::result_cache` keyed by (building content hash,
/// effective-config fingerprint — seeds included). A hit answers without
/// touching the service and is bit-identical to what a fresh run would
/// produce; a miss runs normally and populates the cache on success.
/// Shard requests always run (their contents are on disk, not hashable
/// without the streaming read that *is* the job); when
/// `server_config::shard_root` is set, their paths must resolve inside
/// it or the request is refused with `error_code::bad_request`.
///
/// Protocol failures become typed `error_response` frames. Recoverable
/// ones (wrong version, unknown tag, malformed payload) keep the
/// connection alive; fatal ones (bad magic, truncation, oversized length)
/// end `serve` after the error frame is written.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string_view>

#include "message.hpp"
#include "result_cache.hpp"
#include "service/floor_service.hpp"

namespace fisone::api {

/// Server configuration.
struct server_config {
    /// The backing service (pipeline template, campaign seed, workers,
    /// backpressure). `service.on_report` stays available for the owner's
    /// observability taps; the server routes its responses through per-job
    /// callbacks, not this hook.
    service::service_config service{};
    bool enable_cache = true;          ///< serve repeat submissions from cache
    std::size_t cache_capacity = 1024; ///< LRU entries (one building report each)
    /// Persistent cache spill (crash-safe write-then-rename files, warm
    /// load on construction). Disabled by default; ignored when
    /// `enable_cache` is false. See `cache_spill_config`.
    cache_spill_config cache_spill{};
    /// Filesystem root that `identify_shard` paths must resolve inside
    /// (symlinks and dot-segments resolved). Empty — the default — trusts
    /// the caller, which is right for in-process embedding; SET THIS
    /// before attaching any network transport, or wire-supplied paths
    /// become an arbitrary-file probe of the server's filesystem.
    /// Out-of-root requests are answered with a typed
    /// `error_code::bad_request`, never executed.
    std::string shard_root;
};

class server {
public:
    /// Receives each encoded response frame. Calls are serialised by the
    /// session; the sink must not re-enter the session or block on it.
    using frame_sink = std::function<void(std::string_view)>;

    /// One client connection: a correlation-id namespace (for `cancel_job`)
    /// plus the response channel. Cheap handle; copies share state. Jobs
    /// submitted through a session keep the session state alive until they
    /// finish, but the *sink targets* (e.g. the output stream) must outlive
    /// the jobs — call `finish()` (or `server` teardown) before tearing
    /// them down.
    class session {
    public:
        /// Dispatch one decoded request.
        void handle(const request& req);

        /// Decode one frame, then dispatch. Protocol failures emit a typed
        /// `error_response` through the sink. Returns false when the
        /// failure was fatal (framing integrity lost — the feeder should
        /// stop), true otherwise.
        bool handle_frame(std::string_view frame);

        /// Barrier: wait until every building of every job submitted so
        /// far has produced its response frame. (Same as a `flush` request,
        /// minus the `flush_response`.)
        void finish();

        /// True once a sink invocation threw: subsequent response frames
        /// are dropped (the transport is assumed gone).
        [[nodiscard]] bool sink_broken() const;

    private:
        friend class server;
        struct state;
        explicit session(std::shared_ptr<state> s) : state_(std::move(s)) {}
        std::shared_ptr<state> state_;
    };

    /// Spins up the backing `floor_service` immediately.
    /// \throws std::invalid_argument exactly as `floor_service` does.
    explicit server(server_config cfg);

    /// Waits for every submitted job (service teardown semantics).
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Open an in-process loopback session.
    [[nodiscard]] session open(frame_sink sink);

    /// Serve one framed connection: read request frames from \p in until
    /// EOF or a fatal framing error, stream response frames to \p out.
    /// Returns after every accepted job has answered (implicit `finish`).
    void serve(std::istream& in, std::ostream& out);

    /// Service stats with the cache counters folded in — exactly what a
    /// `get_stats` request returns.
    [[nodiscard]] service::service_stats stats() const;

    [[nodiscard]] result_cache_stats cache_stats() const;

    /// The backing service (pause/resume, direct submission, raw stats).
    [[nodiscard]] service::floor_service& backing_service() noexcept { return *svc_; }

private:
    server_config cfg_;
    /// Declared before the service so teardown destroys the service first:
    /// its destructor waits for in-flight jobs, whose callbacks may still
    /// touch the cache.
    std::unique_ptr<result_cache> cache_;  ///< null when caching disabled
    std::unique_ptr<service::floor_service> svc_;
};

}  // namespace fisone::api
