#include "server.hpp"

#include <chrono>
#include <istream>
#include <mutex>
#include <ostream>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "codec.hpp"
#include "core/fis_one.hpp"
#include "obs/trace.hpp"
#include "runtime/task_executor.hpp"
#include "util/path.hpp"

namespace fisone::api {

namespace {

using clock = std::chrono::steady_clock;

}  // namespace

/// Shared per-connection state. Jobs' completion callbacks hold it by
/// shared_ptr, so a session handle may be dropped while jobs are still in
/// flight without dangling anything.
struct server::session::state {
    service::floor_service* svc = nullptr;
    result_cache* cache = nullptr;  ///< null when caching is disabled
    std::string shard_root;         ///< empty = shard paths unconstrained
    frame_sink sink;

    std::mutex emit_m;  ///< serialises sink calls across worker threads
    bool broken = false;

    std::mutex jobs_m;
    /// Jobs by request correlation id (the `cancel_job` namespace).
    /// Resubmitting under an id replaces the cancellable target.
    std::unordered_map<std::uint64_t, service::floor_service::job> jobs;

    /// Encode and emit one response frame. A sink that throws marks the
    /// transport broken; later frames are dropped silently — the job
    /// machinery must never wedge on a dead connection.
    void emit(const response& resp) {
        const std::lock_guard<std::mutex> lock(emit_m);
        if (broken) return;
        try {
            const std::string frame = encode(resp);
            sink(frame);
        } catch (...) {
            broken = true;
        }
    }

    /// Track \p job as the cancellable target of \p correlation_id,
    /// dropping finished jobs first so a long-lived connection that never
    /// flushes cannot accumulate handles (each pins its reports — full
    /// embeddings matrices — for the job's lifetime).
    void remember_job(std::uint64_t correlation_id, service::floor_service::job job) {
        const std::lock_guard<std::mutex> lock(jobs_m);
        prune_locked();
        jobs[correlation_id] = std::move(job);
    }

    /// Drop handles of finished jobs (flush-time housekeeping).
    void prune_jobs() {
        const std::lock_guard<std::mutex> lock(jobs_m);
        prune_locked();
    }

    void prune_locked() {
        for (auto it = jobs.begin(); it != jobs.end();) {
            const service::job_state js = it->second.state();
            if (js == service::job_state::done || js == service::job_state::cancelled)
                it = jobs.erase(it);
            else
                ++it;
        }
    }

    /// Stats exactly as `get_stats` answers them.
    [[nodiscard]] service::service_stats merged_stats() const {
        service::service_stats s = svc->stats();
        if (cache) {
            const result_cache_stats cs = cache->stats();
            s.cache_hits = cs.hits;
            s.cache_misses = cs.misses;
            s.cache_evictions = cs.evictions;
        }
        return s;
    }
};

void server::session::handle(const request& req) {
    const std::shared_ptr<state> st = state_;
    std::visit(
        [&](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, identify_building_request>) {
                obs::scoped_span span("api.identify");
                const std::uint64_t corr = m.correlation_id;
                const std::size_t index = m.has_index
                                              ? static_cast<std::size_t>(m.corpus_index)
                                              : st->svc->allocate_corpus_index();
                std::optional<cache_key> key;
                if (st->cache && !m.no_cache) {
                    const clock::time_point start = clock::now();
                    obs::scoped_span probe_span("api.cache_probe");
                    const service::service_config& scfg = st->svc->config();
                    key = cache_key{
                        data::content_hash(m.b),
                        core::config_fingerprint(runtime::effective_task_config(
                            scfg.pipeline, scfg.seed, index, st->svc->num_workers() > 1))};
                    if (std::optional<runtime::building_report> hit = st->cache->lookup(*key)) {
                        // Keep index assignment identical to a cache-off
                        // run even though the service never sees this one.
                        st->svc->advance_corpus_index(index + 1);
                        hit->index = index;
                        hit->seconds =
                            std::chrono::duration<double>(clock::now() - start).count();
                        st->emit(building_response{corr, std::move(*hit)});
                        return;
                    }
                }
                service::floor_service::job job = st->svc->submit(
                    m.b, index, [st, corr, key](const runtime::building_report& report) {
                        if (key && report.ok) st->cache->insert(*key, report);
                        st->emit(building_response{corr, report});
                    });
                st->remember_job(corr, std::move(job));
            } else if constexpr (std::is_same_v<T, identify_shard_request>) {
                obs::scoped_span span("api.identify");
                const std::uint64_t corr = m.correlation_id;
                if (!st->shard_root.empty() &&
                    !util::path_within_root(st->shard_root, m.ref.path)) {
                    st->emit(error_response{corr, error_code::bad_request,
                                            "shard path outside the configured shard root: " +
                                                m.ref.path});
                    return;
                }
                service::floor_service::job job = st->svc->submit(
                    m.ref, [st, corr](const runtime::building_report& report) {
                        st->emit(building_response{corr, report});
                    });
                st->remember_job(corr, std::move(job));
            } else if constexpr (std::is_same_v<T, get_stats_request>) {
                st->emit(stats_response{m.correlation_id, st->merged_stats()});
            } else if constexpr (std::is_same_v<T, cancel_job_request>) {
                bool accepted = false;
                {
                    const std::lock_guard<std::mutex> lock(st->jobs_m);
                    const auto it = st->jobs.find(m.target_correlation_id);
                    if (it != st->jobs.end()) accepted = it->second.cancel();
                }
                st->emit(cancel_response{m.correlation_id, m.target_correlation_id, accepted});
            } else if constexpr (std::is_same_v<T, flush_request>) {
                st->svc->wait_all();
                st->prune_jobs();
                st->emit(flush_response{m.correlation_id});
            } else if constexpr (std::is_same_v<T, append_scans_request>) {
                // Live ingestion is a federation-level verb: a bare server
                // has no mounted store to land deltas in.
                st->emit(error_response{m.correlation_id, error_code::bad_request,
                                        "append_scans: this server mounts no corpus store "
                                        "(appends are served by the federated front-end)"});
            } else if constexpr (std::is_same_v<T, watch_request>) {
                st->emit(error_response{m.correlation_id, error_code::bad_request,
                                        "watch: this server has no watch registry "
                                        "(subscriptions are served by the federated "
                                        "front-end)"});
            } else if constexpr (std::is_same_v<T, identify_resident_request>) {
                st->emit(error_response{m.correlation_id, error_code::bad_request,
                                        "identify_resident: this server mounts no corpus "
                                        "store (resident lookups are served by the "
                                        "federated front-end)"});
            } else {
                static_assert(std::is_same_v<T, subscribe_stats_request>);
                st->emit(error_response{m.correlation_id, error_code::bad_request,
                                        "subscribe_stats: this server has no telemetry "
                                        "windows (stats streams are served by the TCP "
                                        "front door)"});
            }
        },
        req);
}

bool server::session::handle_frame(std::string_view frame) {
    const decode_result<request> decoded = decode_request(frame);
    if (decoded.eof) return true;  // empty feed: nothing to do
    if (decoded.error) {
        state_->emit(error_response{0, decoded.error->code, decoded.error->message});
        return !decoded.fatal;
    }
    handle(*decoded.value);
    return true;
}

void server::session::finish() { state_->svc->wait_all(); }

bool server::session::sink_broken() const {
    const std::lock_guard<std::mutex> lock(state_->emit_m);
    return state_->broken;
}

server::server(server_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.enable_cache)
        cache_ = std::make_unique<result_cache>(cfg_.cache_capacity, cfg_.cache_spill);
    svc_ = std::make_unique<service::floor_service>(cfg_.service);
}

server::~server() = default;

server::session server::open(frame_sink sink) {
    auto st = std::make_shared<session::state>();
    st->svc = svc_.get();
    st->cache = cache_.get();
    st->shard_root = cfg_.shard_root;
    st->sink = std::move(sink);
    return session(std::move(st));
}

void server::serve(std::istream& in, std::ostream& out) {
    session s = open([&out](std::string_view frame) {
        out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        if (!out) throw std::ios_base::failure("api::server: response stream went bad");
        out.flush();
    });
    try {
        for (;;) {
            const decode_result<request> r = read_request(in);
            if (r.eof) break;
            if (r.error) {
                s.state_->emit(error_response{0, r.error->code, r.error->message});
                if (r.fatal) break;
                continue;
            }
            s.handle(*r.value);
            if (s.sink_broken()) break;
        }
    } catch (...) {
        // serve must never return (or unwind) with jobs in flight: their
        // callbacks write to `out`, which the caller is free to destroy
        // afterwards. The one in-protocol throw is flush-while-paused
        // (`wait_all` refuses to deadlock), so release the gate, drain,
        // and only then let the error propagate.
        svc_->resume();
        s.finish();
        throw;
    }
    s.finish();
}

service::service_stats server::stats() const {
    service::service_stats s = svc_->stats();
    if (cache_) {
        const result_cache_stats cs = cache_->stats();
        s.cache_hits = cs.hits;
        s.cache_misses = cs.misses;
        s.cache_evictions = cs.evictions;
    }
    return s;
}

result_cache_stats server::cache_stats() const {
    return cache_ ? cache_->stats() : result_cache_stats{};
}

}  // namespace fisone::api
