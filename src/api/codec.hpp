#pragma once

/// \file codec.hpp
/// Canonical binary codec for the API messages: length-prefixed frames,
/// little-endian scalars, explicit schema version. One frame is
///
///   offset  size  field
///        0     4  magic "FIS1"
///        4     4  u32 schema version (`k_schema_version`)
///        8     2  u16 message tag (`message_tag`)
///       10     4  u32 payload length (bytes that follow)
///       14     …  payload (message body, correlation id first)
///
/// Everything is encoded with fixed-width little-endian integers and
/// IEEE-754 bit patterns for doubles, independent of the host — encoding
/// is a *canonical serialisation*: the same logical message always
/// produces the same bytes, which is what makes the in-process loopback
/// transport byte-identical to the framed-stream path.
///
/// Decoding never exhibits UB on hostile input. Every failure is typed
/// (`error_code`) and classified as *fatal* (framing integrity lost —
/// bad magic, truncation, oversized declared length; the stream cannot be
/// resynchronised and reading must stop) or *recoverable* (the frame
/// boundary is still trustworthy — wrong schema version, unknown tag,
/// malformed payload; the decoder skips the frame and the next read
/// proceeds). Declared payload lengths are bounds-checked *before* any
/// allocation, so an adversarial length cannot trigger a huge allocation.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "message.hpp"

namespace fisone::api {

/// Frame magic: the four ASCII bytes "FIS1".
inline constexpr char k_frame_magic[4] = {'F', 'I', 'S', '1'};

/// Fixed frame-header size in bytes (magic + version + tag + length).
inline constexpr std::size_t k_frame_header_size = 14;

/// Hard bound on a declared payload length. Generous for any real
/// building (a 64 MiB payload is ≈ 8M observations) while keeping a
/// hostile length from looking like a plausible allocation.
inline constexpr std::size_t k_max_payload = 64u << 20;

/// Encode one message as a complete frame (header + payload).
/// \throws std::length_error when the payload exceeds `k_max_payload` —
///         the protocol cannot carry such a frame, and silently emitting
///         one would only move the failure to the peer's decoder.
[[nodiscard]] std::string encode(const request& r);
[[nodiscard]] std::string encode(const response& r);

/// A typed decode failure.
struct decode_error {
    error_code code = error_code::none;
    std::string message;
};

/// Outcome of pulling one frame off a stream. Exactly one of
/// {value, error, eof} is active: `eof` is a clean end-of-stream before
/// any header byte; `error` carries the typed failure (with `fatal`
/// saying whether the stream can still be read); otherwise `value` holds
/// the decoded message.
template <class M>
struct decode_result {
    std::optional<M> value;
    std::optional<decode_error> error;
    bool eof = false;
    bool fatal = false;  ///< meaningful only when `error` is set

    [[nodiscard]] bool ok() const noexcept { return value.has_value(); }
};

/// Read and decode one request / response frame from \p in. Recoverable
/// failures consume the whole frame, so the next call reads the next one.
[[nodiscard]] decode_result<request> read_request(std::istream& in);
[[nodiscard]] decode_result<response> read_response(std::istream& in);

/// Decode one frame from memory. \p consumed (optional) receives how many
/// bytes of \p bytes the frame spanned (0 when eof/fatal before a length
/// was trusted).
[[nodiscard]] decode_result<request> decode_request(std::string_view bytes,
                                                    std::size_t* consumed = nullptr);
[[nodiscard]] decode_result<response> decode_response(std::string_view bytes,
                                                      std::size_t* consumed = nullptr);

/// Assemble a raw frame around an arbitrary payload — the adversarial
/// tests' tool for crafting wrong-version / unknown-tag / short frames.
[[nodiscard]] std::string make_frame(std::uint16_t tag, std::string_view payload,
                                     std::uint32_t version = k_schema_version,
                                     std::string_view magic = {k_frame_magic, 4});

/// Incremental frame reassembly for byte-stream transports (TCP `recv`
/// hands the codec arbitrary chunks: half a header, three frames and a
/// tail, one byte at a time — any split is legal). `append` buffered bytes
/// as they arrive; `next` extracts complete frames in order. Framing
/// integrity is validated as early as the bytes allow: a bad magic or an
/// oversized declared length fails permanently (`error()` set — the stream
/// cannot be resynchronised and the connection must close), *before* the
/// bogus payload is ever buffered. Frames that are well-framed but carry a
/// wrong version / unknown tag / malformed payload pass through — the
/// message-level decoder turns those into recoverable typed errors.
///
/// Memory: the internal buffer never holds more than one maximal frame
/// (`k_frame_header_size + k_max_payload`) plus one `append` chunk, because
/// complete frames are surrendered eagerly and oversized declarations are
/// rejected from the header alone.
class frame_splitter {
public:
    /// Buffer \p bytes. No-op once a fatal framing error was detected.
    void append(std::string_view bytes);

    /// Extract the next complete frame (header + payload), or nullopt when
    /// more bytes are needed or framing failed (check `error()`).
    [[nodiscard]] std::optional<std::string> next();

    /// The fatal framing failure, if one was detected.
    [[nodiscard]] const std::optional<decode_error>& error() const noexcept { return error_; }

    /// Bytes buffered but not yet surrendered as a frame.
    [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

    /// True when the stream sits on a clean frame boundary — EOF here is a
    /// graceful close; EOF with `buffered() > 0` is a mid-frame disconnect.
    [[nodiscard]] bool at_boundary() const noexcept { return buffered() == 0 && !error_; }

private:
    std::string buf_;
    std::size_t pos_ = 0;  ///< consumed prefix of `buf_` (compacted lazily)
    std::optional<decode_error> error_;
};

}  // namespace fisone::api
