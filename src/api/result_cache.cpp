#include "result_cache.hpp"

#include <stdexcept>

namespace fisone::api {

result_cache::result_cache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("result_cache: capacity must be >= 1");
}

std::optional<runtime::building_report> result_cache::lookup(const cache_key& key) {
    const std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    return it->second->second;
}

void result_cache::insert(const cache_key& key, runtime::building_report report) {
    const std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(report);
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
        ++evictions_;
    }
    entries_.emplace_front(key, std::move(report));
    index_.emplace(key, entries_.begin());
}

result_cache_stats result_cache::stats() const {
    const std::lock_guard<std::mutex> lock(m_);
    result_cache_stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = entries_.size();
    s.evictions = evictions_;
    return s;
}

void result_cache::clear() {
    const std::lock_guard<std::mutex> lock(m_);
    entries_.clear();
    index_.clear();
}

}  // namespace fisone::api
