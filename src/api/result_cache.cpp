#include "result_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "codec.hpp"
#include "message.hpp"

namespace fisone::api {

namespace fs = std::filesystem;

namespace {

/// Spill filename for \p key: both halves as fixed-width hex, parseable
/// back without opening the file (shard filtering reads names only).
std::string spill_name(const cache_key& key) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%016llx-%016llx.rc",
                  static_cast<unsigned long long>(key.content_hash),
                  static_cast<unsigned long long>(key.config_fingerprint));
    return buf;
}

/// Parse a spill filename back into its key; nullopt for anything that is
/// not exactly `<16 hex>-<16 hex>.rc`.
std::optional<cache_key> parse_spill_name(const std::string& name) {
    if (name.size() != 16 + 1 + 16 + 3 || name[16] != '-' || name.substr(33) != ".rc")
        return std::nullopt;
    const auto parse_hex = [](std::string_view hex, std::uint64_t& out) {
        out = 0;
        for (const char c : hex) {
            std::uint64_t digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint64_t>(c - 'a') + 10;
            else
                return false;
            out = out << 4 | digit;
        }
        return true;
    };
    cache_key key;
    if (!parse_hex(std::string_view(name).substr(0, 16), key.content_hash) ||
        !parse_hex(std::string_view(name).substr(17, 16), key.config_fingerprint))
        return std::nullopt;
    return key;
}

/// Durably write \p bytes to `dir/name` via a write-then-rename: the file
/// either exists complete or not at all, never torn. Returns false on any
/// I/O failure (the caller degrades to memory-only).
bool atomic_spill_write(const fs::path& dir, const std::string& name, const std::string& bytes,
                        std::size_t shard_index) {
    // The counter keeps concurrent writers within this process off each
    // other's temp files; the shard index separates fleet members sharing
    // the directory (each key is written only by its affinity owner, so
    // cross-process races on the *final* name do not happen).
    static std::atomic<std::uint64_t> counter{0};
    const fs::path tmp = dir / (name + "." + std::to_string(shard_index) + "-" +
                                std::to_string(counter.fetch_add(1)) + ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, dir / name, ec);
    if (ec) fs::remove(tmp, ec);
    return !ec;
}

}  // namespace

result_cache::result_cache(std::size_t capacity, cache_spill_config spill)
    : capacity_(capacity), spill_(std::move(spill)) {
    if (capacity == 0) throw std::invalid_argument("result_cache: capacity must be >= 1");
    if (spill_.shard_count == 0)
        throw std::invalid_argument("result_cache: spill shard_count must be >= 1");
    if (spill_.shard_index >= spill_.shard_count)
        throw std::invalid_argument("result_cache: spill shard_index out of range");
    if (spill_.enabled()) warm_load();
}

/// Restore this instance's affinity shard from the spill directory: sweep
/// leftover temps, skip out-of-shard names without opening them, decode
/// in-shard entries (deleting any corrupt file), stop at capacity.
void result_cache::warm_load() {
    const fs::path dir(spill_.dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) return;  // persistence degrades, construction never fails on I/O
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
            fs::remove(entry.path(), ec);  // torn write from a crashed run
            continue;
        }
        const std::optional<cache_key> key = parse_spill_name(name);
        if (!key) continue;  // foreign file; leave it alone
        if (key->content_hash % spill_.shard_count != spill_.shard_index)
            continue;  // a peer's shard — least data necessary
        if (entries_.size() >= capacity_) continue;

        std::string bytes;
        {
            std::ifstream in(entry.path(), std::ios::binary);
            if (!in) continue;
            bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
        }
        std::size_t consumed = 0;
        decode_result<response> decoded = decode_response(bytes, &consumed);
        auto* hit = decoded.value ? std::get_if<building_response>(&*decoded.value) : nullptr;
        if (!hit || consumed != bytes.size()) {
            fs::remove(entry.path(), ec);  // corrupt or truncated: drop it
            continue;
        }
        entries_.emplace_front(*key, std::move(hit->report));
        index_.emplace(*key, entries_.begin());
        ++warm_loaded_;
    }
}

std::optional<runtime::building_report> result_cache::lookup(const cache_key& key) {
    const std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);  // refresh recency
    return it->second->second;
}

void result_cache::insert(const cache_key& key, runtime::building_report report) {
    if (spill_.enabled()) {
        // Durable before visible: the disk entry lands before the report
        // can be served (and thus before any response is acknowledged).
        // Serialized as the building_response frame a warm lookup replays.
        atomic_spill_write(fs::path(spill_.dir), spill_name(key),
                           encode(response{building_response{0, report}}), spill_.shard_index);
    }
    const std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(report);
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
        ++evictions_;
    }
    entries_.emplace_front(key, std::move(report));
    index_.emplace(key, entries_.begin());
}

result_cache_stats result_cache::stats() const {
    const std::lock_guard<std::mutex> lock(m_);
    result_cache_stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = entries_.size();
    s.evictions = evictions_;
    s.warm_loaded = warm_loaded_;
    return s;
}

void result_cache::clear() {
    const std::lock_guard<std::mutex> lock(m_);
    entries_.clear();
    index_.clear();
}

}  // namespace fisone::api
