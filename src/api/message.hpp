#pragma once

/// \file message.hpp
/// The versioned request/response message model of the FIS-ONE API — the
/// one public contract that subsumes the library's three historical entry
/// points (`core::fis_one::run`, `runtime::batch_runner`,
/// `service::floor_service::submit`). Every front-end — the in-process
/// loopback, the framed-stream server, and any future HTTP/gRPC or
/// federation adapter — speaks exactly these messages; transports differ
/// only in how the encoded frames move.
///
/// Conventions:
///  - every message carries a caller-chosen `correlation_id`; responses
///    echo the id of the request they answer, so a transport may stream
///    responses in completion order;
///  - a shard request fans out into one `building_response` per building,
///    all sharing the request's correlation id;
///  - protocol-level failures arrive as a typed `error_response`, never as
///    a broken stream (see `codec.hpp` for the framing rules).

#include <cstdint>
#include <string>
#include <variant>

#include "data/rf_sample.hpp"
#include "runtime/batch_runner.hpp"
#include "service/floor_service.hpp"

namespace fisone::api {

/// Wire schema version. Bump on any change to message layouts; decoders
/// reject frames from a different version with `error_code::bad_version`.
/// v2: `service_stats` gained `cache_evictions`.
/// v3: live ingestion — `append_scans` / `watch` verbs, `append_result` /
///     `watch_ack` / `push_update` frames, `service_stats` gained the
///     ingest counters.
/// v4: live telemetry — `identify_resident` / `subscribe_stats` verbs and
///     the `stats_update` push frame; `identify_building_request` gained
///     `no_cache`.
inline constexpr std::uint32_t k_schema_version = 4;

/// Frame tag: which message a frame's payload holds. Requests live in
/// [1, 64), responses in [64, 128); the split leaves both ranges room to
/// grow without renumbering.
enum class message_tag : std::uint16_t {
    // requests
    identify_building = 1,
    identify_shard = 2,
    get_stats = 3,
    cancel_job = 4,
    flush = 5,
    append_scans = 6,
    watch = 7,
    identify_resident = 8,
    subscribe_stats = 9,
    // responses
    building_result = 64,
    stats_result = 65,
    cancel_result = 66,
    flush_done = 67,
    append_result = 68,
    watch_ack = 69,
    /// Server-initiated: a re-identified floor labeling pushed to a
    /// standing `watch` subscription — the one frame a client receives
    /// without a request of its own in flight.
    push_update = 70,
    /// Server-initiated: one completed telemetry window streamed to a
    /// standing `subscribe_stats` subscription.
    stats_update = 71,
    error = 127,
};

/// Typed protocol-failure codes carried by `error_response`.
enum class error_code : std::uint16_t {
    none = 0,
    bad_magic = 1,     ///< frame does not start with the FIS1 magic (fatal)
    truncated = 2,     ///< stream ended inside a header or payload (fatal)
    oversized = 3,     ///< declared payload length exceeds the codec bound (fatal)
    bad_version = 4,   ///< frame from a different schema version (skippable)
    unknown_tag = 5,   ///< well-framed payload with an unknown tag (skippable)
    bad_payload = 6,   ///< payload too short, malformed, or with trailing bytes
    bad_request = 7,   ///< decoded fine but semantically unservable
    overloaded = 8,    ///< shed: the admission queue is saturated — retry later
    draining = 9,      ///< shed: the server is draining for shutdown
    /// Every backend that could serve the request is circuit-broken or
    /// crashed and retries are exhausted — the fleet, not the request, is
    /// at fault; retry later.
    backend_unavailable = 10,
    /// The request's deadline elapsed before any backend produced a
    /// result; the in-flight attempt was cancelled.
    deadline_exceeded = 11,
};

/// Human-readable name of \p code (for logs and error messages).
[[nodiscard]] const char* error_code_name(error_code code) noexcept;

// --- requests ---------------------------------------------------------------

/// Run the pipeline on one building. Without `has_index` the server
/// assigns the next unused corpus index (and thus seed); with it, the
/// caller pins the building's place in the campaign — resubmitting a
/// corpus at the same indices is what makes the result cache hit.
struct identify_building_request {
    std::uint64_t correlation_id = 0;
    bool has_index = false;
    std::uint64_t corpus_index = 0;
    /// Skip the result cache for this request (no probe, no insert): the
    /// pipeline always reruns. This is what keeps a capacity bench honest —
    /// without it, a repeated corpus measures cache lookups, not the
    /// pipeline.
    bool no_cache = false;
    data::building b;
};

/// Stream an on-disk shard through the service (one `building_response`
/// per building, shared correlation id). Never served from the cache —
/// shard contents are not resident to hash.
struct identify_shard_request {
    std::uint64_t correlation_id = 0;
    service::shard_ref ref;
};

/// Snapshot the service + cache counters.
struct get_stats_request {
    std::uint64_t correlation_id = 0;
};

/// Cooperatively cancel the job submitted under `target_correlation_id`.
struct cancel_job_request {
    std::uint64_t correlation_id = 0;
    std::uint64_t target_correlation_id = 0;
};

/// Barrier: answered (with `flush_response`) only after every building of
/// every job submitted before it has produced its response.
struct flush_request {
    std::uint64_t correlation_id = 0;
};

/// Durably append new crowdsourced scans to the mounted store whose corpus
/// is named `corpus_name`. Each record is a building block carrying the
/// NEW scans for the building it names (`data::apply_delta_record`
/// semantics); a name no base building holds introduces a new building at
/// the store's tail. Answered with `append_response` only after the
/// store's manifest has durably versioned forward; the re-run of the dirty
/// buildings follows asynchronously (barrier: `flush`). Served by the
/// federated front-end — a bare `api::server` has no store to land deltas
/// in and answers `bad_request`.
struct append_scans_request {
    std::uint64_t correlation_id = 0;
    std::string corpus_name;
    std::vector<data::building> records;
};

/// Stand up (or tear down) a subscription on one building name: after a
/// `watch_ack`, every re-identification of that building triggered by an
/// append pushes a `push_update` carrying this request's correlation id
/// over the same connection, until unsubscribed or the connection closes.
struct watch_request {
    std::uint64_t correlation_id = 0;
    std::string name;      ///< building name to watch
    bool subscribe = true; ///< false = cancel this connection's subscription
};

/// Run the pipeline on one *resident* building: the building named `name`
/// in a mounted corpus store, at its store-assigned corpus index (and thus
/// seed). The request carries a few bytes where `identify_building` carries
/// the whole building — the mode that keeps the wire from being the
/// bottleneck when exploring server capacity. Served by the federated
/// front-end (it owns the mounted stores); a bare `api::server` answers
/// `bad_request`, as does a fleet with no stores or an unknown name.
struct identify_resident_request {
    std::uint64_t correlation_id = 0;
    std::string name;    ///< building name in a mounted store
    bool fresh = false;  ///< bypass the result cache (forwarded as `no_cache`)
};

/// Stand up (or tear down) a telemetry stream on this connection: after
/// the `watch_ack`, the server pushes one `stats_update` frame per elapsed
/// interval (rounded up to the server's telemetry window) carrying this
/// request's correlation id, until unsubscribed or the connection closes.
/// Served by `net::tcp_server` — the shed/admission counters the stream
/// exists to expose live at the front door, so loopback servers answer
/// `bad_request`.
struct subscribe_stats_request {
    std::uint64_t correlation_id = 0;
    std::uint32_t interval_ms = 1000;  ///< minimum spacing between pushes
    bool subscribe = true;  ///< false = cancel this connection's stream
};

using request = std::variant<identify_building_request, identify_shard_request,
                             get_stats_request, cancel_job_request, flush_request,
                             append_scans_request, watch_request, identify_resident_request,
                             subscribe_stats_request>;

// --- responses --------------------------------------------------------------

/// One finished building (ok, failed, cancelled — exactly as
/// `runtime::building_report` models it).
struct building_response {
    std::uint64_t correlation_id = 0;
    runtime::building_report report;
};

/// Answer to `get_stats_request`; `stats.cache_hits` / `cache_misses` are
/// filled from the server's `result_cache`.
struct stats_response {
    std::uint64_t correlation_id = 0;
    service::service_stats stats;
};

/// Answer to `cancel_job_request`. `accepted` mirrors
/// `floor_service::job::cancel`: true when the request landed before the
/// target finished; false when the target was already complete or the
/// target correlation id is unknown.
struct cancel_response {
    std::uint64_t correlation_id = 0;
    std::uint64_t target_correlation_id = 0;
    bool accepted = false;
};

/// Answer to `flush_request`.
struct flush_response {
    std::uint64_t correlation_id = 0;
};

/// Answer to `append_scans_request`, emitted once the append is durable
/// (manifest renamed into place — a crash after this frame never loses the
/// delta). `version` is the store's manifest version after the append;
/// `dirty` counts the buildings whose content hash changed (they re-run;
/// everything else keeps serving from cache).
struct append_response {
    std::uint64_t correlation_id = 0;
    std::uint64_t version = 0;
    std::uint64_t accepted = 0;  ///< delta records durably appended
    std::uint64_t dirty = 0;
};

/// Answer to `watch_request`: the subscription state after the request.
struct watch_ack_response {
    std::uint64_t correlation_id = 0;
    bool active = false;
};

/// Server-initiated push to a standing watch: the watched building was
/// re-identified after an append made it dirty. `correlation_id` is the
/// watch request's, so a client multiplexing subscriptions can tell them
/// apart; `version` is the store version whose data the report reflects.
struct push_response {
    std::uint64_t correlation_id = 0;
    std::uint64_t version = 0;
    runtime::building_report report;
};

/// Typed protocol failure. `correlation_id` is 0 when the failure happened
/// before a correlation id could be decoded (e.g. a truncated header).
struct error_response {
    std::uint64_t correlation_id = 0;
    error_code code = error_code::none;
    std::string message;
};

/// Server-initiated push to a standing `subscribe_stats` stream: one
/// completed telemetry window of the front door. Counters are deltas over
/// the window; connections/inflight are gauges sampled at its close;
/// percentiles come from the window's latency histogram and carry
/// `obs::latency_histogram::k_max_relative_error`.
struct stats_update_response {
    std::uint64_t correlation_id = 0;  ///< the subscribe request's id
    std::uint64_t window_seq = 0;      ///< 1-based telemetry tick number
    double window_seconds = 0.0;       ///< actual window duration
    std::uint64_t connections = 0;     ///< open connections at window close
    std::uint64_t inflight = 0;        ///< admitted jobs not yet answered
    std::uint64_t admitted = 0;        ///< requests admitted this window
    std::uint64_t responses = 0;       ///< response frames sent this window
    std::uint64_t shed_overload = 0;   ///< overload sheds this window
    std::uint64_t shed_draining = 0;   ///< draining sheds this window
    std::uint64_t latency_count = 0;   ///< latencies observed this window
    double latency_sum = 0.0;          ///< their exact sum (seconds)
    double latency_p50 = 0.0;
    double latency_p90 = 0.0;
    double latency_p99 = 0.0;
};

using response = std::variant<building_response, stats_response, cancel_response,
                              flush_response, append_response, watch_ack_response,
                              push_response, stats_update_response, error_response>;

// --- uniform accessors ------------------------------------------------------

[[nodiscard]] std::uint64_t correlation_id(const request& r) noexcept;
[[nodiscard]] std::uint64_t correlation_id(const response& r) noexcept;
[[nodiscard]] message_tag tag_of(const request& r) noexcept;
[[nodiscard]] message_tag tag_of(const response& r) noexcept;

/// Rewrite the correlation id in place — the primitive a multiplexing
/// front-end (e.g. `net::tcp_server`) uses to give every connection its own
/// id space: client ids are remapped to globally unique internal ids before
/// a shared backend sees them, and mapped back on the way out. Note that
/// `cancel_job_request::target_correlation_id` / `cancel_response::
/// target_correlation_id` are NOT touched: the *target* lives in the same
/// per-connection namespace and the front-end remaps it through its own
/// table (an unknown target must become a local `accepted = false`, not a
/// forwarded id).
void set_correlation_id(request& r, std::uint64_t id) noexcept;
void set_correlation_id(response& r, std::uint64_t id) noexcept;

}  // namespace fisone::api
