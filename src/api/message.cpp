#include "message.hpp"

namespace fisone::api {

const char* error_code_name(error_code code) noexcept {
    switch (code) {
        case error_code::none: return "none";
        case error_code::bad_magic: return "bad_magic";
        case error_code::truncated: return "truncated";
        case error_code::oversized: return "oversized";
        case error_code::bad_version: return "bad_version";
        case error_code::unknown_tag: return "unknown_tag";
        case error_code::bad_payload: return "bad_payload";
        case error_code::bad_request: return "bad_request";
        case error_code::overloaded: return "overloaded";
        case error_code::draining: return "draining";
        case error_code::backend_unavailable: return "backend_unavailable";
        case error_code::deadline_exceeded: return "deadline_exceeded";
    }
    return "unknown";
}

std::uint64_t correlation_id(const request& r) noexcept {
    return std::visit([](const auto& m) { return m.correlation_id; }, r);
}

std::uint64_t correlation_id(const response& r) noexcept {
    return std::visit([](const auto& m) { return m.correlation_id; }, r);
}

message_tag tag_of(const request& r) noexcept {
    struct visitor {
        message_tag operator()(const identify_building_request&) const {
            return message_tag::identify_building;
        }
        message_tag operator()(const identify_shard_request&) const {
            return message_tag::identify_shard;
        }
        message_tag operator()(const get_stats_request&) const { return message_tag::get_stats; }
        message_tag operator()(const cancel_job_request&) const { return message_tag::cancel_job; }
        message_tag operator()(const flush_request&) const { return message_tag::flush; }
        message_tag operator()(const append_scans_request&) const {
            return message_tag::append_scans;
        }
        message_tag operator()(const watch_request&) const { return message_tag::watch; }
        message_tag operator()(const identify_resident_request&) const {
            return message_tag::identify_resident;
        }
        message_tag operator()(const subscribe_stats_request&) const {
            return message_tag::subscribe_stats;
        }
    };
    return std::visit(visitor{}, r);
}

void set_correlation_id(request& r, std::uint64_t id) noexcept {
    std::visit([id](auto& m) { m.correlation_id = id; }, r);
}

void set_correlation_id(response& r, std::uint64_t id) noexcept {
    std::visit([id](auto& m) { m.correlation_id = id; }, r);
}

message_tag tag_of(const response& r) noexcept {
    struct visitor {
        message_tag operator()(const building_response&) const {
            return message_tag::building_result;
        }
        message_tag operator()(const stats_response&) const { return message_tag::stats_result; }
        message_tag operator()(const cancel_response&) const { return message_tag::cancel_result; }
        message_tag operator()(const flush_response&) const { return message_tag::flush_done; }
        message_tag operator()(const append_response&) const { return message_tag::append_result; }
        message_tag operator()(const watch_ack_response&) const { return message_tag::watch_ack; }
        message_tag operator()(const push_response&) const { return message_tag::push_update; }
        message_tag operator()(const stats_update_response&) const {
            return message_tag::stats_update;
        }
        message_tag operator()(const error_response&) const { return message_tag::error; }
    };
    return std::visit(visitor{}, r);
}

}  // namespace fisone::api
