#include "codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <stdexcept>

namespace fisone::api {

namespace {

// --- canonical scalar encoding ----------------------------------------------

/// Append-only little-endian byte writer over a std::string.
class wire_writer {
public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

    void u16(std::uint16_t v) {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v) {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void str(std::string_view s) {
        u64(s.size());
        out_.append(s.data(), s.size());
    }

    void vec_i32(const std::vector<int>& v) {
        u64(v.size());
        for (const int x : v) i32(static_cast<std::int32_t>(x));
    }

    void matrix(const linalg::matrix& m) {
        u64(m.rows());
        u64(m.cols());
        for (std::size_t r = 0; r < m.rows(); ++r)
            for (std::size_t c = 0; c < m.cols(); ++c) f64(m(r, c));
    }

    [[nodiscard]] std::string take() && { return std::move(out_); }
    [[nodiscard]] const std::string& bytes() const noexcept { return out_; }

private:
    std::string out_;
};

/// Bounds-checked little-endian reader over a byte span. Any overrun (or
/// hostile count) sets `failed` and makes every further read a no-op
/// returning zeros — callers check once at the end.
class wire_reader {
public:
    explicit wire_reader(std::string_view bytes) : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

    [[nodiscard]] std::size_t remaining() const noexcept {
        return static_cast<std::size_t>(end_ - p_);
    }
    [[nodiscard]] bool failed() const noexcept { return failed_; }
    [[nodiscard]] bool exhausted() const noexcept { return p_ == end_; }
    void fail() noexcept { failed_ = true; }

    std::uint8_t u8() {
        if (remaining() < 1) return fail_zero<std::uint8_t>();
        return static_cast<std::uint8_t>(*p_++);
    }

    std::uint16_t u16() {
        const std::uint16_t lo = u8();
        const std::uint16_t hi = u8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t u32() {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    std::uint64_t u64() {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool boolean() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    /// Element count with a hostile-length guard: a count that could not
    /// possibly fit in the remaining bytes (each element needs at least
    /// \p min_element_bytes) fails before any allocation happens.
    std::size_t count(std::size_t min_element_bytes) {
        const std::uint64_t n = u64();
        if (failed_ || n > remaining() / min_element_bytes) {
            fail();
            return 0;
        }
        return static_cast<std::size_t>(n);
    }

    std::string str() {
        const std::size_t n = count(1);
        if (failed_) return {};
        std::string s(p_, n);
        p_ += n;
        return s;
    }

    std::vector<int> vec_i32() {
        const std::size_t n = count(4);
        std::vector<int> v;
        if (failed_) return v;
        v.reserve(n);
        for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<int>(i32()));
        return v;
    }

    linalg::matrix matrix() {
        const std::uint64_t rows = u64();
        const std::uint64_t cols = u64();
        // Overflow-safe rows*cols*8 <= remaining check before allocating.
        // An R×0 matrix carries no payload bytes (the encoder legally
        // produces one, e.g. failed reports) — any row count is fine.
        if (failed_ || (cols != 0 && rows > remaining() / 8 / cols)) {
            fail();
            return {};
        }
        linalg::matrix m =
            linalg::matrix::uninit(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c) m(r, c) = f64();
        return m;
    }

private:
    template <class T>
    T fail_zero() noexcept {
        failed_ = true;
        return T{};
    }

    const char* p_;
    const char* end_;
    bool failed_ = false;
};

// --- message bodies ----------------------------------------------------------

void put_building(wire_writer& w, const data::building& b) {
    // The shared canonical walk — the same field sequence content_hash
    // digests, so the wire form and the content address cannot drift.
    // get_building below must mirror it (the round-trip tests pin that).
    data::visit_building_canonical(b, w);
}

data::building get_building(wire_reader& r) {
    data::building b;
    b.name = r.str();
    b.num_floors = static_cast<std::size_t>(r.u64());
    b.num_macs = static_cast<std::size_t>(r.u64());
    b.labeled_sample = static_cast<std::size_t>(r.u64());
    b.labeled_floor = r.i32();
    // One encoded sample is at least true_floor + device_id + count.
    const std::size_t num_samples = r.count(4 + 4 + 8);
    b.samples.reserve(num_samples);
    for (std::size_t i = 0; i < num_samples && !r.failed(); ++i) {
        data::rf_sample s;
        s.true_floor = r.i32();
        s.device_id = r.u32();
        const std::size_t num_obs = r.count(4 + 8);
        s.observations.reserve(num_obs);
        for (std::size_t j = 0; j < num_obs; ++j) {
            data::rf_observation o;
            o.mac_id = r.u32();
            o.rss_dbm = r.f64();
            s.observations.push_back(o);
        }
        b.samples.push_back(std::move(s));
    }
    return b;
}

void put_report(wire_writer& w, const runtime::building_report& report) {
    w.u64(report.index);
    w.str(report.name);
    w.boolean(report.ok);
    w.str(report.error);
    w.u64(report.seed);
    w.f64(report.seconds);
    const core::fis_one_result& res = report.result;
    w.u64(res.num_clusters);
    w.vec_i32(res.assignment);
    w.vec_i32(res.cluster_to_floor);
    w.vec_i32(res.predicted_floor);
    w.matrix(res.embeddings);
    w.boolean(res.ambiguous);
    w.boolean(res.has_ground_truth);
    w.f64(res.ari);
    w.f64(res.nmi);
    w.f64(res.edit_distance);
}

runtime::building_report get_report(wire_reader& r) {
    runtime::building_report report;
    report.index = static_cast<std::size_t>(r.u64());
    report.name = r.str();
    report.ok = r.boolean();
    report.error = r.str();
    report.seed = r.u64();
    report.seconds = r.f64();
    core::fis_one_result& res = report.result;
    res.num_clusters = static_cast<std::size_t>(r.u64());
    res.assignment = r.vec_i32();
    res.cluster_to_floor = r.vec_i32();
    res.predicted_floor = r.vec_i32();
    res.embeddings = r.matrix();
    res.ambiguous = r.boolean();
    res.has_ground_truth = r.boolean();
    res.ari = r.f64();
    res.nmi = r.f64();
    res.edit_distance = r.f64();
    return report;
}

void put_stats(wire_writer& w, const service::service_stats& s) {
    w.u64(s.jobs_submitted);
    w.u64(s.jobs_queued);
    w.u64(s.jobs_running);
    w.u64(s.jobs_done);
    w.u64(s.jobs_cancelled);
    w.u64(s.buildings_done);
    w.u64(s.buildings_ok);
    w.u64(s.buildings_failed);
    w.u64(s.buildings_cancelled);
    w.f64(s.latency_p50);
    w.f64(s.latency_p90);
    w.f64(s.latency_p99);
    w.u64(s.latency_count);
    w.f64(s.latency_sum);
    w.u32(static_cast<std::uint32_t>(s.latency_le.size()));
    for (const std::uint64_t c : s.latency_le) w.u64(c);
    w.u64(s.cache_hits);
    w.u64(s.cache_misses);
    w.u64(s.cache_evictions);
    w.u64(s.ingest_appends);
    w.u64(s.ingest_dirty_buildings);
    w.u64(s.watch_subscribers);
}

service::service_stats get_stats_body(wire_reader& r) {
    service::service_stats s;
    s.jobs_submitted = static_cast<std::size_t>(r.u64());
    s.jobs_queued = static_cast<std::size_t>(r.u64());
    s.jobs_running = static_cast<std::size_t>(r.u64());
    s.jobs_done = static_cast<std::size_t>(r.u64());
    s.jobs_cancelled = static_cast<std::size_t>(r.u64());
    s.buildings_done = static_cast<std::size_t>(r.u64());
    s.buildings_ok = static_cast<std::size_t>(r.u64());
    s.buildings_failed = static_cast<std::size_t>(r.u64());
    s.buildings_cancelled = static_cast<std::size_t>(r.u64());
    s.latency_p50 = r.f64();
    s.latency_p90 = r.f64();
    s.latency_p99 = r.f64();
    s.latency_count = r.u64();
    s.latency_sum = r.f64();
    const std::uint32_t n_le = r.u32();
    s.latency_le.reserve(n_le);
    for (std::uint32_t i = 0; i < n_le; ++i) s.latency_le.push_back(r.u64());
    s.cache_hits = static_cast<std::size_t>(r.u64());
    s.cache_misses = static_cast<std::size_t>(r.u64());
    s.cache_evictions = static_cast<std::size_t>(r.u64());
    s.ingest_appends = static_cast<std::size_t>(r.u64());
    s.ingest_dirty_buildings = static_cast<std::size_t>(r.u64());
    s.watch_subscribers = static_cast<std::size_t>(r.u64());
    return s;
}

// --- per-message payload encoders -------------------------------------------

struct request_payload_encoder {
    wire_writer& w;

    void operator()(const identify_building_request& m) const {
        w.u64(m.correlation_id);
        w.boolean(m.has_index);
        w.u64(m.corpus_index);
        w.boolean(m.no_cache);
        put_building(w, m.b);
    }
    void operator()(const identify_shard_request& m) const {
        w.u64(m.correlation_id);
        w.str(m.ref.path);
        w.u64(m.ref.first_index);
        w.u64(m.ref.num_buildings);
    }
    void operator()(const get_stats_request& m) const { w.u64(m.correlation_id); }
    void operator()(const cancel_job_request& m) const {
        w.u64(m.correlation_id);
        w.u64(m.target_correlation_id);
    }
    void operator()(const flush_request& m) const { w.u64(m.correlation_id); }
    void operator()(const append_scans_request& m) const {
        w.u64(m.correlation_id);
        w.str(m.corpus_name);
        w.u64(m.records.size());
        for (const data::building& b : m.records) put_building(w, b);
    }
    void operator()(const watch_request& m) const {
        w.u64(m.correlation_id);
        w.str(m.name);
        w.boolean(m.subscribe);
    }
    void operator()(const identify_resident_request& m) const {
        w.u64(m.correlation_id);
        w.str(m.name);
        w.boolean(m.fresh);
    }
    void operator()(const subscribe_stats_request& m) const {
        w.u64(m.correlation_id);
        w.u32(m.interval_ms);
        w.boolean(m.subscribe);
    }
};

struct response_payload_encoder {
    wire_writer& w;

    void operator()(const building_response& m) const {
        w.u64(m.correlation_id);
        put_report(w, m.report);
    }
    void operator()(const stats_response& m) const {
        w.u64(m.correlation_id);
        put_stats(w, m.stats);
    }
    void operator()(const cancel_response& m) const {
        w.u64(m.correlation_id);
        w.u64(m.target_correlation_id);
        w.boolean(m.accepted);
    }
    void operator()(const flush_response& m) const { w.u64(m.correlation_id); }
    void operator()(const append_response& m) const {
        w.u64(m.correlation_id);
        w.u64(m.version);
        w.u64(m.accepted);
        w.u64(m.dirty);
    }
    void operator()(const watch_ack_response& m) const {
        w.u64(m.correlation_id);
        w.boolean(m.active);
    }
    void operator()(const push_response& m) const {
        w.u64(m.correlation_id);
        w.u64(m.version);
        put_report(w, m.report);
    }
    void operator()(const stats_update_response& m) const {
        w.u64(m.correlation_id);
        w.u64(m.window_seq);
        w.f64(m.window_seconds);
        w.u64(m.connections);
        w.u64(m.inflight);
        w.u64(m.admitted);
        w.u64(m.responses);
        w.u64(m.shed_overload);
        w.u64(m.shed_draining);
        w.u64(m.latency_count);
        w.f64(m.latency_sum);
        w.f64(m.latency_p50);
        w.f64(m.latency_p90);
        w.f64(m.latency_p99);
    }
    void operator()(const error_response& m) const {
        w.u64(m.correlation_id);
        w.u16(static_cast<std::uint16_t>(m.code));
        w.str(m.message);
    }
};

// --- per-tag payload decoders -----------------------------------------------

/// nullopt ⇔ the tag is not a request tag.
std::optional<request> parse_request(std::uint16_t tag, wire_reader& r) {
    switch (static_cast<message_tag>(tag)) {
        case message_tag::identify_building: {
            identify_building_request m;
            m.correlation_id = r.u64();
            m.has_index = r.boolean();
            m.corpus_index = r.u64();
            m.no_cache = r.boolean();
            m.b = get_building(r);
            return request(std::move(m));
        }
        case message_tag::identify_shard: {
            identify_shard_request m;
            m.correlation_id = r.u64();
            m.ref.path = r.str();
            m.ref.first_index = static_cast<std::size_t>(r.u64());
            m.ref.num_buildings = static_cast<std::size_t>(r.u64());
            return request(std::move(m));
        }
        case message_tag::get_stats: {
            get_stats_request m;
            m.correlation_id = r.u64();
            return request(m);
        }
        case message_tag::cancel_job: {
            cancel_job_request m;
            m.correlation_id = r.u64();
            m.target_correlation_id = r.u64();
            return request(m);
        }
        case message_tag::flush: {
            flush_request m;
            m.correlation_id = r.u64();
            return request(m);
        }
        case message_tag::append_scans: {
            append_scans_request m;
            m.correlation_id = r.u64();
            m.corpus_name = r.str();
            // One encoded record is at least the fixed building header
            // (name len + 3×u64 + i32 + sample count).
            const std::size_t num_records = r.count(8 + 8 + 8 + 8 + 4 + 8);
            m.records.reserve(num_records);
            for (std::size_t i = 0; i < num_records && !r.failed(); ++i)
                m.records.push_back(get_building(r));
            return request(std::move(m));
        }
        case message_tag::watch: {
            watch_request m;
            m.correlation_id = r.u64();
            m.name = r.str();
            m.subscribe = r.boolean();
            return request(std::move(m));
        }
        case message_tag::identify_resident: {
            identify_resident_request m;
            m.correlation_id = r.u64();
            m.name = r.str();
            m.fresh = r.boolean();
            return request(std::move(m));
        }
        case message_tag::subscribe_stats: {
            subscribe_stats_request m;
            m.correlation_id = r.u64();
            m.interval_ms = r.u32();
            m.subscribe = r.boolean();
            return request(m);
        }
        default: return std::nullopt;
    }
}

/// nullopt ⇔ the tag is not a response tag.
std::optional<response> parse_response(std::uint16_t tag, wire_reader& r) {
    switch (static_cast<message_tag>(tag)) {
        case message_tag::building_result: {
            building_response m;
            m.correlation_id = r.u64();
            m.report = get_report(r);
            return response(std::move(m));
        }
        case message_tag::stats_result: {
            stats_response m;
            m.correlation_id = r.u64();
            m.stats = get_stats_body(r);
            return response(m);
        }
        case message_tag::cancel_result: {
            cancel_response m;
            m.correlation_id = r.u64();
            m.target_correlation_id = r.u64();
            m.accepted = r.boolean();
            return response(m);
        }
        case message_tag::flush_done: {
            flush_response m;
            m.correlation_id = r.u64();
            return response(m);
        }
        case message_tag::append_result: {
            append_response m;
            m.correlation_id = r.u64();
            m.version = r.u64();
            m.accepted = r.u64();
            m.dirty = r.u64();
            return response(m);
        }
        case message_tag::watch_ack: {
            watch_ack_response m;
            m.correlation_id = r.u64();
            m.active = r.boolean();
            return response(m);
        }
        case message_tag::push_update: {
            push_response m;
            m.correlation_id = r.u64();
            m.version = r.u64();
            m.report = get_report(r);
            return response(std::move(m));
        }
        case message_tag::stats_update: {
            stats_update_response m;
            m.correlation_id = r.u64();
            m.window_seq = r.u64();
            m.window_seconds = r.f64();
            m.connections = r.u64();
            m.inflight = r.u64();
            m.admitted = r.u64();
            m.responses = r.u64();
            m.shed_overload = r.u64();
            m.shed_draining = r.u64();
            m.latency_count = r.u64();
            m.latency_sum = r.f64();
            m.latency_p50 = r.f64();
            m.latency_p90 = r.f64();
            m.latency_p99 = r.f64();
            return response(m);
        }
        case message_tag::error: {
            error_response m;
            m.correlation_id = r.u64();
            m.code = static_cast<error_code>(r.u16());
            m.message = r.str();
            return response(std::move(m));
        }
        default: return std::nullopt;
    }
}

// --- shared frame machinery --------------------------------------------------

template <class M>
decode_result<M> fail(error_code code, std::string message, bool fatal) {
    decode_result<M> out;
    out.error = decode_error{code, std::move(message)};
    out.fatal = fatal;
    return out;
}

/// Decode the payload of an already-framed message (header validated,
/// payload fully read — from here on every failure is recoverable).
template <class M, class ParseFn>
decode_result<M> decode_payload(std::uint32_t version, std::uint16_t tag,
                                std::string_view payload, ParseFn parse) {
    if (version != k_schema_version)
        return fail<M>(error_code::bad_version,
                       "schema version " + std::to_string(version) + " (speaking " +
                           std::to_string(k_schema_version) + ")",
                       false);
    wire_reader r(payload);
    std::optional<M> parsed = parse(tag, r);
    if (!parsed)
        return fail<M>(error_code::unknown_tag, "unknown message tag " + std::to_string(tag),
                       false);
    if (r.failed())
        return fail<M>(error_code::bad_payload,
                       "payload of tag " + std::to_string(tag) + " is malformed or too short",
                       false);
    if (!r.exhausted())
        return fail<M>(error_code::bad_payload,
                       "payload of tag " + std::to_string(tag) + " has " +
                           std::to_string(r.remaining()) + " trailing bytes",
                       false);
    decode_result<M> out;
    out.value = std::move(parsed);
    return out;
}

/// Split one frame header; shared by the stream and memory entry points.
struct frame_header {
    std::uint32_t version = 0;
    std::uint16_t tag = 0;
    std::uint32_t payload_len = 0;
};

template <class M>
std::optional<decode_result<M>> check_header(const char* header, frame_header& h) {
    if (std::memcmp(header, k_frame_magic, sizeof k_frame_magic) != 0)
        return fail<M>(error_code::bad_magic, "frame does not start with FIS1 magic", true);
    wire_reader r(std::string_view(header + 4, k_frame_header_size - 4));
    h.version = r.u32();
    h.tag = r.u16();
    h.payload_len = r.u32();
    if (h.payload_len > k_max_payload)
        return fail<M>(error_code::oversized,
                       "declared payload length " + std::to_string(h.payload_len) +
                           " exceeds the " + std::to_string(k_max_payload) + "-byte bound",
                       true);
    return std::nullopt;
}

template <class M, class ParseFn>
decode_result<M> read_frame(std::istream& in, ParseFn parse) {
    char header[k_frame_header_size];
    in.read(header, static_cast<std::streamsize>(sizeof header));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) {
        decode_result<M> out;
        out.eof = true;
        return out;
    }
    if (got < sizeof header)
        return fail<M>(error_code::truncated,
                       "stream ended inside a frame header (" + std::to_string(got) + " of " +
                           std::to_string(sizeof header) + " bytes)",
                       true);

    frame_header h;
    if (auto bad = check_header<M>(header, h)) return *std::move(bad);

    std::string payload(h.payload_len, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(h.payload_len));
    if (static_cast<std::size_t>(in.gcount()) < h.payload_len)
        return fail<M>(error_code::truncated,
                       "stream ended inside a " + std::to_string(h.payload_len) +
                           "-byte payload",
                       true);

    return decode_payload<M>(h.version, h.tag, payload, parse);
}

template <class M, class ParseFn>
decode_result<M> decode_frame(std::string_view bytes, std::size_t* consumed, ParseFn parse) {
    if (consumed) *consumed = 0;
    if (bytes.empty()) {
        decode_result<M> out;
        out.eof = true;
        return out;
    }
    if (bytes.size() < k_frame_header_size)
        return fail<M>(error_code::truncated,
                       "buffer ended inside a frame header (" + std::to_string(bytes.size()) +
                           " of " + std::to_string(k_frame_header_size) + " bytes)",
                       true);

    frame_header h;
    if (auto bad = check_header<M>(bytes.data(), h)) return *std::move(bad);

    if (bytes.size() - k_frame_header_size < h.payload_len)
        return fail<M>(error_code::truncated,
                       "buffer ended inside a " + std::to_string(h.payload_len) +
                           "-byte payload",
                       true);
    if (consumed) *consumed = k_frame_header_size + h.payload_len;
    return decode_payload<M>(h.version, h.tag,
                             bytes.substr(k_frame_header_size, h.payload_len), parse);
}

template <class M, class Encoder>
std::string encode_message(const M& m) {
    wire_writer body;
    std::visit(Encoder{body}, m);
    // A frame the protocol cannot carry must fail loudly at the encode
    // boundary: past the bound the decoder would fatally reject it, and
    // past 2^32 the u32 length field would wrap and desynchronise the
    // stream.
    if (body.bytes().size() > k_max_payload)
        throw std::length_error("api::encode: " + std::to_string(body.bytes().size()) +
                                "-byte payload exceeds the " + std::to_string(k_max_payload) +
                                "-byte frame bound");

    wire_writer frame;
    frame.u8(static_cast<std::uint8_t>(k_frame_magic[0]));
    frame.u8(static_cast<std::uint8_t>(k_frame_magic[1]));
    frame.u8(static_cast<std::uint8_t>(k_frame_magic[2]));
    frame.u8(static_cast<std::uint8_t>(k_frame_magic[3]));
    frame.u32(k_schema_version);
    frame.u16(static_cast<std::uint16_t>(tag_of(m)));
    frame.u32(static_cast<std::uint32_t>(body.bytes().size()));
    std::string out = std::move(frame).take();
    out += body.bytes();
    return out;
}

}  // namespace

std::string encode(const request& r) {
    return encode_message<request, request_payload_encoder>(r);
}

std::string encode(const response& r) {
    return encode_message<response, response_payload_encoder>(r);
}

decode_result<request> read_request(std::istream& in) {
    return read_frame<request>(in, [](std::uint16_t tag, wire_reader& r) {
        return parse_request(tag, r);
    });
}

decode_result<response> read_response(std::istream& in) {
    return read_frame<response>(in, [](std::uint16_t tag, wire_reader& r) {
        return parse_response(tag, r);
    });
}

decode_result<request> decode_request(std::string_view bytes, std::size_t* consumed) {
    return decode_frame<request>(bytes, consumed, [](std::uint16_t tag, wire_reader& r) {
        return parse_request(tag, r);
    });
}

decode_result<response> decode_response(std::string_view bytes, std::size_t* consumed) {
    return decode_frame<response>(bytes, consumed, [](std::uint16_t tag, wire_reader& r) {
        return parse_response(tag, r);
    });
}

void frame_splitter::append(std::string_view bytes) {
    if (error_) return;
    // Compact the consumed prefix before growing: keeps the buffer bounded
    // by one maximal frame plus one append chunk.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(bytes.data(), bytes.size());
}

std::optional<std::string> frame_splitter::next() {
    if (error_) return std::nullopt;
    const std::string_view pending(buf_.data() + pos_, buf_.size() - pos_);
    // Validate as much of the header as has arrived: magic byte-by-byte, the
    // declared length as soon as it is complete. Rejecting from the partial
    // header means a hostile peer cannot make us buffer an oversized
    // payload, and a mid-stream desync is caught at the first wrong byte.
    const std::size_t magic_got = std::min(pending.size(), sizeof k_frame_magic);
    if (std::memcmp(pending.data(), k_frame_magic, magic_got) != 0) {
        error_ = decode_error{error_code::bad_magic, "frame does not start with FIS1 magic"};
        return std::nullopt;
    }
    if (pending.size() < k_frame_header_size) return std::nullopt;
    const auto u32_at = [&](std::size_t off) {
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(pending[off + i]))
                 << (8 * i);
        return v;
    };
    const std::uint32_t payload_len = u32_at(10);
    if (payload_len > k_max_payload) {
        error_ = decode_error{error_code::oversized,
                              "declared payload length " + std::to_string(payload_len) +
                                  " exceeds the " + std::to_string(k_max_payload) +
                                  "-byte bound"};
        return std::nullopt;
    }
    const std::size_t frame_size = k_frame_header_size + payload_len;
    if (pending.size() < frame_size) return std::nullopt;
    std::string frame(pending.substr(0, frame_size));
    pos_ += frame_size;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    return frame;
}

std::string make_frame(std::uint16_t tag, std::string_view payload, std::uint32_t version,
                       std::string_view magic) {
    wire_writer frame;
    for (const char c : magic) frame.u8(static_cast<std::uint8_t>(c));
    frame.u32(version);
    frame.u16(tag);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    std::string out = std::move(frame).take();
    out.append(payload.data(), payload.size());
    return out;
}

}  // namespace fisone::api
