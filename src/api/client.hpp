#pragma once

/// \file client.hpp
/// Typed client facade over the API transports, so examples and tests
/// exercise the *real wire path*: every call encodes a request frame with
/// the canonical codec, and every result comes back by decoding response
/// frames — in both modes:
///
///  - **loopback**: frames go straight to an in-process `server::session`
///    and response frames come back through its sink. Synchronous-ish:
///    cache hits, stats, cancel and flush answers are collected by the
///    time the call returns; building results arrive as jobs complete.
///  - **framed stream**: frames are written to an `std::ostream` (the
///    server's input). Responses are collected later by `ingest`-ing the
///    server's output stream — the batch shape of a one-shot connection
///    (write requests, `server::serve`, read responses).
///
/// The two modes share every byte of codec, which is what makes them
/// byte-identical per frame. Collected responses are kept in arrival
/// (= completion) order.
///
/// Not thread-safe: one client is one caller. Read accessors assume the
/// connection is quiescent (after `flush()` / `ingest`).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "message.hpp"
#include "server.hpp"

namespace fisone::api {

class client {
public:
    /// Loopback client over \p srv (opens a dedicated session).
    explicit client(server& srv);

    /// Framed-stream client: request frames are written to \p to_server.
    /// The stream must outlive the client (or at least every send call).
    explicit client(std::ostream& to_server);

    /// Submit one building (server-assigned corpus index).
    /// Returns the request's correlation id.
    std::uint64_t identify(const data::building& b);

    /// Submit one building pinned to \p corpus_index — resubmitting a
    /// corpus at the same indices is what makes the server's result cache
    /// hit.
    std::uint64_t identify(const data::building& b, std::uint64_t corpus_index);

    /// Submit an on-disk shard (one building_response per building).
    std::uint64_t identify_shard(const service::shard_ref& ref);

    /// Ask for service + cache stats.
    std::uint64_t get_stats();

    /// Ask to cancel the job submitted under \p target_correlation_id.
    std::uint64_t cancel(std::uint64_t target_correlation_id);

    /// Completion barrier: the server answers only after every prior
    /// job's responses were emitted. In loopback mode, returns with every
    /// response collected.
    std::uint64_t flush();

    /// Append a batch of scan records to the store serving \p corpus_name.
    /// Answered with `append_response` once the delta shard is durable (a
    /// bare `api::server` answers a typed bad_request: appends are a
    /// federation verb).
    std::uint64_t append_scans(const std::string& corpus_name,
                               const std::vector<data::building>& records);

    /// Subscribe to (or with \p subscribe false, drop) re-identification
    /// pushes for building \p name. Answered with `watch_ack_response`;
    /// pushes arrive later as `push_update_response` frames carrying this
    /// call's correlation id.
    std::uint64_t watch(const std::string& name, bool subscribe = true);

    /// Framed mode: decode every response frame in \p from_server into
    /// the collected set. Stops at EOF or the first fatal framing error.
    /// Returns the number of frames decoded (errors included as
    /// `error_response` entries with `error_code` context preserved).
    std::size_t ingest(std::istream& from_server);

    /// Every collected response, in arrival (completion) order.
    [[nodiscard]] const std::vector<response>& responses() const noexcept { return responses_; }

    /// All building reports across collected responses, in arrival order;
    /// pass a correlation id to restrict to one request's reports.
    [[nodiscard]] std::vector<runtime::building_report> reports() const;
    [[nodiscard]] std::vector<runtime::building_report> reports(
        std::uint64_t correlation_id) const;

    /// The most recent stats_response, if any.
    [[nodiscard]] std::optional<service::service_stats> last_stats() const;

    /// Typed protocol errors received so far.
    [[nodiscard]] std::vector<error_response> errors() const;

    /// Loopback mode: concatenated raw response frames, exactly as they
    /// crossed the transport — the byte-identity probe against a framed
    /// run (whose raw bytes are the server's output stream itself).
    [[nodiscard]] const std::string& raw_response_bytes() const noexcept { return raw_; }

private:
    void send(const request& req);
    void collect_frame(std::string_view frame);

    std::uint64_t next_correlation_ = 1;
    std::optional<server::session> session_;  ///< loopback mode
    std::ostream* to_server_ = nullptr;       ///< framed mode
    std::mutex collect_m_;  ///< loopback sink runs on worker threads
    std::vector<response> responses_;
    std::string raw_;
};

}  // namespace fisone::api
