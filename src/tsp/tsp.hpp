#pragma once

/// \file tsp.hpp
/// Shortest-Hamiltonian-path solvers for the cluster-indexing problem
/// (paper §IV-B, Theorem 1). The paper reduces cluster indexing to a TSP
/// on the complete graph of clusters where w_ij = 1 − J^n_ij and all
/// weights *into the start cluster* are zero; with a zero-cost return edge
/// the TSP tour is exactly the shortest Hamiltonian path from the start.
/// We solve the path problem directly:
///  - `held_karp_path`: exact O(N²·2^N) dynamic program (paper's choice);
///  - `two_opt_path`: nearest-neighbour + 2-opt local search with restarts
///    (the paper's approximation, Fig. 9(c,d));
///  - `brute_force_path`: O(N!) reference used by the test suite.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace fisone::tsp {

/// A Hamiltonian path and its cost (sum of consecutive edge weights; no
/// return edge).
struct path_result {
    std::vector<std::size_t> order;  ///< visiting order; order.front() == start
    double cost = 0.0;
};

/// Cost of visiting \p order under \p dist.
/// \throws std::invalid_argument on out-of-range indices.
[[nodiscard]] double path_cost(const linalg::matrix& dist, const std::vector<std::size_t>& order);

/// Exact Held–Karp dynamic program for the shortest Hamiltonian path
/// starting at \p start.
/// \param dist square non-negative weight matrix (need not be symmetric).
/// \throws std::invalid_argument if dist is not square, empty, start is out
///         of range, or N > 24 (DP table would exceed memory).
[[nodiscard]] path_result held_karp_path(const linalg::matrix& dist, std::size_t start);

/// 2-opt local search seeded by the nearest-neighbour heuristic, keeping
/// \p start pinned as the first node. Runs \p restarts random restarts and
/// returns the best path found.
[[nodiscard]] path_result two_opt_path(const linalg::matrix& dist, std::size_t start,
                                       util::rng& gen, std::size_t restarts = 8);

/// Exhaustive search (test oracle). \throws std::invalid_argument for N > 10.
[[nodiscard]] path_result brute_force_path(const linalg::matrix& dist, std::size_t start);

}  // namespace fisone::tsp
