#include "tsp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace fisone::tsp {

namespace {

void check_inputs(const linalg::matrix& dist, std::size_t start, const char* what) {
    if (dist.rows() == 0 || dist.rows() != dist.cols())
        throw std::invalid_argument(std::string(what) + ": dist must be square and non-empty");
    if (start >= dist.rows())
        throw std::invalid_argument(std::string(what) + ": start out of range");
}

/// Nearest-neighbour construction from \p start; unvisited choice can be
/// randomised among near-ties for restart diversity.
std::vector<std::size_t> nearest_neighbor_order(const linalg::matrix& dist, std::size_t start,
                                                util::rng* gen) {
    const std::size_t n = dist.rows();
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> order;
    order.reserve(n);
    order.push_back(start);
    visited[start] = true;
    while (order.size() < n) {
        const std::size_t cur = order.back();
        std::size_t best = n;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t j = 0; j < n; ++j) {
            if (visited[j]) continue;
            double d = dist(cur, j);
            if (gen != nullptr) d += gen->uniform() * 1e-9;  // tie-break jitter
            if (d < best_d) {
                best_d = d;
                best = j;
            }
        }
        order.push_back(best);
        visited[best] = true;
    }
    return order;
}

/// In-place 2-opt on a path with a pinned first node. Reversing the
/// segment [i, j] replaces edges (i−1, i) and (j, j+1) with (i−1, j) and
/// (i, j+1); when j is the last node only the first replacement applies.
void improve_two_opt(const linalg::matrix& dist, std::vector<std::size_t>& order) {
    const std::size_t n = order.size();
    if (n < 3) return;
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t i = 1; i + 1 < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const std::size_t a = order[i - 1];
                const std::size_t b = order[i];
                const std::size_t c = order[j];
                double delta = dist(a, c) - dist(a, b);
                if (j + 1 < n) {
                    const std::size_t d = order[j + 1];
                    delta += dist(b, d) - dist(c, d);
                }
                if (delta < -1e-12) {
                    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                                 order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
                    improved = true;
                }
            }
        }
    }
}

}  // namespace

double path_cost(const linalg::matrix& dist, const std::vector<std::size_t>& order) {
    if (dist.rows() != dist.cols()) throw std::invalid_argument("path_cost: dist must be square");
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        if (order[i] >= dist.rows() || order[i + 1] >= dist.rows())
            throw std::invalid_argument("path_cost: index out of range");
        cost += dist(order[i], order[i + 1]);
    }
    return cost;
}

path_result held_karp_path(const linalg::matrix& dist, std::size_t start) {
    check_inputs(dist, start, "held_karp_path");
    const std::size_t n = dist.rows();
    if (n > 24) throw std::invalid_argument("held_karp_path: N > 24; use two_opt_path");
    if (n == 1) return path_result{{start}, 0.0};

    const std::size_t full = std::size_t{1} << n;
    constexpr double inf = std::numeric_limits<double>::max() / 4;
    // dp[mask * n + j]: cheapest path from start visiting exactly `mask`,
    // ending at j (mask always contains start and j).
    std::vector<double> dp(full * n, inf);
    std::vector<std::uint32_t> parent(full * n, static_cast<std::uint32_t>(n));
    dp[(std::size_t{1} << start) * n + start] = 0.0;

    for (std::size_t mask = 1; mask < full; ++mask) {
        if ((mask & (std::size_t{1} << start)) == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            if ((mask & (std::size_t{1} << j)) == 0) continue;
            const double cur = dp[mask * n + j];
            if (cur >= inf) continue;
            for (std::size_t k = 0; k < n; ++k) {
                if (mask & (std::size_t{1} << k)) continue;
                const std::size_t next_mask = mask | (std::size_t{1} << k);
                const double cand = cur + dist(j, k);
                if (cand < dp[next_mask * n + k]) {
                    dp[next_mask * n + k] = cand;
                    parent[next_mask * n + k] = static_cast<std::uint32_t>(j);
                }
            }
        }
    }

    const std::size_t all = full - 1;
    std::size_t best_end = n;
    double best_cost = inf;
    for (std::size_t j = 0; j < n; ++j) {
        if (dp[all * n + j] < best_cost) {
            best_cost = dp[all * n + j];
            best_end = j;
        }
    }

    // Reconstruct.
    path_result result;
    result.cost = best_cost;
    result.order.resize(n);
    std::size_t mask = all;
    std::size_t node = best_end;
    for (std::size_t pos = n; pos-- > 0;) {
        result.order[pos] = node;
        const std::uint32_t p = parent[mask * n + node];
        mask &= ~(std::size_t{1} << node);
        node = p;
    }
    return result;
}

path_result two_opt_path(const linalg::matrix& dist, std::size_t start, util::rng& gen,
                         std::size_t restarts) {
    check_inputs(dist, start, "two_opt_path");
    const std::size_t n = dist.rows();
    if (n == 1) return path_result{{start}, 0.0};
    if (restarts == 0) restarts = 1;

    path_result best;
    best.cost = std::numeric_limits<double>::max();
    for (std::size_t r = 0; r < restarts; ++r) {
        std::vector<std::size_t> order;
        if (r == 0) {
            order = nearest_neighbor_order(dist, start, nullptr);
        } else if (r == 1) {
            order = nearest_neighbor_order(dist, start, &gen);
        } else {
            // random permutation keeping start first
            order.resize(n);
            std::iota(order.begin(), order.end(), 0);
            std::swap(order[0], order[start]);
            std::vector<std::size_t> tail(order.begin() + 1, order.end());
            gen.shuffle(tail);
            std::copy(tail.begin(), tail.end(), order.begin() + 1);
        }
        improve_two_opt(dist, order);
        const double cost = path_cost(dist, order);
        if (cost < best.cost) {
            best.cost = cost;
            best.order = std::move(order);
        }
    }
    return best;
}

path_result brute_force_path(const linalg::matrix& dist, std::size_t start) {
    check_inputs(dist, start, "brute_force_path");
    const std::size_t n = dist.rows();
    if (n > 10) throw std::invalid_argument("brute_force_path: N > 10");

    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < n; ++i)
        if (i != start) rest.push_back(i);

    path_result best;
    best.cost = std::numeric_limits<double>::max();
    std::vector<std::size_t> order(n);
    order[0] = start;
    std::sort(rest.begin(), rest.end());
    do {
        std::copy(rest.begin(), rest.end(), order.begin() + 1);
        const double cost = path_cost(dist, order);
        if (cost < best.cost) {
            best.cost = cost;
            best.order = order;
        }
    } while (std::next_permutation(rest.begin(), rest.end()));
    return best;
}

}  // namespace fisone::tsp
