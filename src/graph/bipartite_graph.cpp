#include "bipartite_graph.hpp"

#include <stdexcept>

namespace fisone::graph {

bipartite_graph bipartite_graph::from_building(const data::building& b, double rss_offset_dbm) {
    bipartite_graph g;
    g.num_macs_ = b.num_macs;
    g.num_samples_ = b.samples.size();
    g.rss_offset_ = rss_offset_dbm;

    const std::size_t n = g.num_nodes();
    std::vector<std::size_t> deg(n, 0);
    std::size_t total = 0;
    for (const data::rf_sample& s : b.samples) {
        for (const data::rf_observation& o : s.observations) {
            if (o.mac_id >= b.num_macs)
                throw std::invalid_argument("bipartite_graph: mac_id out of range");
            ++deg[o.mac_id];
        }
        total += s.observations.size();
    }
    for (std::size_t i = 0; i < g.num_samples_; ++i)
        deg[g.num_macs_ + i] = b.samples[i].observations.size();

    g.offsets_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + deg[i];
    g.edges_.resize(2 * total);

    std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (std::size_t si = 0; si < b.samples.size(); ++si) {
        const std::uint32_t snode = g.sample_node(si);
        for (const data::rf_observation& o : b.samples[si].observations) {
            const double w = o.rss_dbm + rss_offset_dbm;
            if (w <= 0.0)
                throw std::invalid_argument(
                    "bipartite_graph: non-positive edge weight; increase rss_offset_dbm");
            g.edges_[cursor[o.mac_id]++] = edge{snode, w};
            g.edges_[cursor[snode]++] = edge{o.mac_id, w};
        }
    }
    return g;
}

std::size_t bipartite_graph::sample_index(std::uint32_t node) const {
    if (!is_sample_node(node))
        throw std::invalid_argument("bipartite_graph::sample_index: not a sample node");
    return node - num_macs_;
}

std::span<const edge> bipartite_graph::neighbors(std::uint32_t node) const {
    if (node >= num_nodes()) throw std::out_of_range("bipartite_graph::neighbors");
    return {edges_.data() + offsets_[node], offsets_[node + 1] - offsets_[node]};
}

std::size_t bipartite_graph::degree(std::uint32_t node) const {
    if (node >= num_nodes()) throw std::out_of_range("bipartite_graph::degree");
    return offsets_[node + 1] - offsets_[node];
}

double bipartite_graph::weighted_degree(std::uint32_t node) const {
    double acc = 0.0;
    for (const edge& e : neighbors(node)) acc += e.weight;
    return acc;
}

}  // namespace fisone::graph
