#pragma once

/// \file sampling.hpp
/// Stochastic machinery on the bipartite RF graph:
///  - RSS-proportional neighbour sampling (paper §III-B: Pr(u) =
///    f(RSS_uv) / Σ f(RSS_u'v)), with a uniform variant for the
///    "without attention" ablation of Fig. 8(a,b);
///  - the degree^(3/4) negative-sampling table of the unsupervised loss;
///  - fixed-length weighted random walks (length 5 per the paper) and
///    their co-occurring positive pairs.

#include <cstdint>
#include <utility>
#include <vector>

#include "bipartite_graph.hpp"
#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

namespace fisone::graph {

/// O(1) per-draw neighbour sampler with per-node alias tables.
class neighbor_sampler {
public:
    /// \param weighted true → Pr(neighbour) ∝ f(RSS) (the RF-GNN attention
    ///        sampling); false → uniform (ablation).
    neighbor_sampler(const bipartite_graph& g, bool weighted);

    /// Draw one neighbour of \p node. \throws std::logic_error on isolated node.
    [[nodiscard]] std::uint32_t sample(std::uint32_t node, util::rng& gen) const;

    /// Draw one incident *edge* of \p node (neighbour id + its f(RSS)
    /// weight, needed by the attention aggregator).
    [[nodiscard]] const edge& sample_edge(std::uint32_t node, util::rng& gen) const;

    /// Draw \p count neighbours with replacement (GraphSAGE-style).
    [[nodiscard]] std::vector<std::uint32_t> sample_many(std::uint32_t node, std::size_t count,
                                                         util::rng& gen) const;

    [[nodiscard]] bool weighted() const noexcept { return weighted_; }

private:
    const bipartite_graph* graph_;
    bool weighted_;
    std::vector<util::alias_sampler> tables_;  // only built when weighted
};

/// Alias table over all nodes with Pr(z) ∝ degree(z)^(3/4) — the paper's
/// negative-sampling distribution (following word2vec / LINE).
class negative_table {
public:
    explicit negative_table(const bipartite_graph& g, double exponent = 0.75);

    /// Draw one negative node.
    [[nodiscard]] std::uint32_t sample(util::rng& gen) const;

private:
    util::alias_sampler table_;
};

/// A positive training pair: two nodes co-occurring on a random walk.
struct walk_pair {
    std::uint32_t first = 0;
    std::uint32_t second = 0;
};

/// Configuration for walk generation.
struct walk_config {
    std::size_t walk_length = 5;     ///< steps per walk (paper: five)
    std::size_t walks_per_node = 6;  ///< walks started from every node
    std::size_t window = 2;          ///< co-occurrence window within a walk
};

/// Generate weighted random walks from every node and emit co-occurring
/// pairs within the window. Steps follow the same distribution as the
/// neighbour sampler passed in (weighted or uniform).
[[nodiscard]] std::vector<walk_pair> generate_walk_pairs(const bipartite_graph& g,
                                                         const neighbor_sampler& sampler,
                                                         const walk_config& cfg, util::rng& gen);

}  // namespace fisone::graph
