#pragma once

/// \file bipartite_graph.hpp
/// The weighted bipartite RF graph of paper §III-A: MAC nodes on one side,
/// signal-sample nodes on the other, an edge wherever a MAC is detected in
/// a sample, with weight w = f(RSS) = RSS + c (c = 120 dBm by default so
/// that every weight is strictly positive). Stored as CSR over the unified
/// node id space [0, num_macs) ∪ [num_macs, num_macs + num_samples).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/rf_sample.hpp"

namespace fisone::graph {

/// One directed half-edge in the CSR structure.
struct edge {
    std::uint32_t neighbor = 0;  ///< unified node id of the other endpoint
    double weight = 0.0;         ///< f(RSS) > 0
};

/// Immutable weighted bipartite graph over MAC and sample nodes.
class bipartite_graph {
public:
    /// Build from a building's scans.
    /// \param b the building (validated by the caller or the simulator).
    /// \param rss_offset_dbm the constant c of w = RSS + c; must exceed the
    ///        magnitude of every RSS so that all weights are positive.
    /// \throws std::invalid_argument if some weight would be non-positive.
    static bipartite_graph from_building(const data::building& b, double rss_offset_dbm = 120.0);

    [[nodiscard]] std::size_t num_macs() const noexcept { return num_macs_; }
    [[nodiscard]] std::size_t num_samples() const noexcept { return num_samples_; }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return num_macs_ + num_samples_; }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size() / 2; }
    [[nodiscard]] double rss_offset() const noexcept { return rss_offset_; }

    /// Unified node id of MAC \p mac_id.
    [[nodiscard]] std::uint32_t mac_node(std::uint32_t mac_id) const noexcept { return mac_id; }

    /// Unified node id of sample \p sample_index.
    [[nodiscard]] std::uint32_t sample_node(std::size_t sample_index) const noexcept {
        return static_cast<std::uint32_t>(num_macs_ + sample_index);
    }

    /// True when \p node is a sample node.
    [[nodiscard]] bool is_sample_node(std::uint32_t node) const noexcept {
        return node >= num_macs_;
    }

    /// Sample index of a sample node. \throws std::invalid_argument otherwise.
    [[nodiscard]] std::size_t sample_index(std::uint32_t node) const;

    /// Adjacency list of \p node (both directions are materialised).
    [[nodiscard]] std::span<const edge> neighbors(std::uint32_t node) const;

    /// Degree of \p node.
    [[nodiscard]] std::size_t degree(std::uint32_t node) const;

    /// Sum of edge weights incident to \p node.
    [[nodiscard]] double weighted_degree(std::uint32_t node) const;

private:
    std::size_t num_macs_ = 0;
    std::size_t num_samples_ = 0;
    double rss_offset_ = 120.0;
    std::vector<std::size_t> offsets_;  // CSR offsets, size num_nodes()+1
    std::vector<edge> edges_;           // both directions
};

}  // namespace fisone::graph
