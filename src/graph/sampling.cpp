#include "sampling.hpp"

#include <cmath>
#include <stdexcept>

namespace fisone::graph {

neighbor_sampler::neighbor_sampler(const bipartite_graph& g, bool weighted)
    : graph_(&g), weighted_(weighted) {
    if (weighted_) {
        tables_.reserve(g.num_nodes());
        std::vector<double> weights;
        for (std::uint32_t node = 0; node < g.num_nodes(); ++node) {
            const auto nbrs = g.neighbors(node);
            weights.clear();
            weights.reserve(nbrs.size());
            for (const edge& e : nbrs) weights.push_back(e.weight);
            tables_.emplace_back(weights.empty() ? util::alias_sampler{}
                                                 : util::alias_sampler{weights});
        }
    }
}

std::uint32_t neighbor_sampler::sample(std::uint32_t node, util::rng& gen) const {
    return sample_edge(node, gen).neighbor;
}

const edge& neighbor_sampler::sample_edge(std::uint32_t node, util::rng& gen) const {
    const auto nbrs = graph_->neighbors(node);
    if (nbrs.empty()) throw std::logic_error("neighbor_sampler: isolated node");
    if (weighted_) return nbrs[tables_[node].sample(gen)];
    return nbrs[gen.uniform_index(nbrs.size())];
}

std::vector<std::uint32_t> neighbor_sampler::sample_many(std::uint32_t node, std::size_t count,
                                                         util::rng& gen) const {
    std::vector<std::uint32_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(sample(node, gen));
    return out;
}

negative_table::negative_table(const bipartite_graph& g, double exponent) {
    std::vector<double> weights(g.num_nodes());
    for (std::uint32_t node = 0; node < g.num_nodes(); ++node)
        weights[node] = std::pow(static_cast<double>(g.degree(node)), exponent);
    table_ = util::alias_sampler(weights);
}

std::uint32_t negative_table::sample(util::rng& gen) const {
    return static_cast<std::uint32_t>(table_.sample(gen));
}

std::vector<walk_pair> generate_walk_pairs(const bipartite_graph& g,
                                           const neighbor_sampler& sampler,
                                           const walk_config& cfg, util::rng& gen) {
    if (cfg.walk_length < 2)
        throw std::invalid_argument("generate_walk_pairs: walk_length must be >= 2");
    if (cfg.window == 0) throw std::invalid_argument("generate_walk_pairs: window must be >= 1");

    std::vector<walk_pair> pairs;
    pairs.reserve(g.num_nodes() * cfg.walks_per_node * cfg.walk_length);
    std::vector<std::uint32_t> walk(cfg.walk_length);

    for (std::uint32_t start = 0; start < g.num_nodes(); ++start) {
        if (g.degree(start) == 0) continue;  // isolated nodes contribute no pairs
        for (std::size_t w = 0; w < cfg.walks_per_node; ++w) {
            walk[0] = start;
            for (std::size_t step = 1; step < cfg.walk_length; ++step)
                walk[step] = sampler.sample(walk[step - 1], gen);
            for (std::size_t i = 0; i < cfg.walk_length; ++i)
                for (std::size_t j = i + 1; j < cfg.walk_length && j - i <= cfg.window; ++j)
                    if (walk[i] != walk[j]) pairs.push_back(walk_pair{walk[i], walk[j]});
        }
    }
    return pairs;
}

}  // namespace fisone::graph
