#pragma once

/// \file router.hpp
/// Backend selection for the federation layer: given a request's affinity
/// hash and a point-in-time probe of every backend, pick the backend that
/// runs it. Pure scheduling — the router never touches a service; the
/// `federated_server` probes its backends and forwards the chosen one the
/// work. That separation keeps every policy unit-testable with synthetic
/// probes (no pipelines, no threads).
///
/// Policies:
///  - `round_robin` — cyclic over the fleet; even spread, no state beyond a
///    cursor.
///  - `least_queue_depth` — the backend with the fewest submitted-but-
///    unfinished jobs (its bounded-queue occupancy), lowest index on ties
///    so equal fleets route deterministically.
///  - `content_hash_affinity` — `affinity_hash % fleet`, so resubmissions
///    of the same building (same `data::content_hash`) land on the backend
///    whose `result_cache` already holds the answer.
///
/// Paused backends are holding their queue at the gate, so no policy hands
/// them new work while an unpaused backend exists (affinity probes
/// forward cyclically from its home slot; round-robin and least-depth skip).
/// When the whole fleet is paused the policy's natural choice stands —
/// submission then parks at that backend's gate, which is exactly what
/// pause means.
///
/// Routing never affects *results*: a building's output depends only on its
/// global corpus index (seeds) and bits (pipeline), both fixed before the
/// router runs. Policies trade throughput and cache warmth, not answers.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fisone::federation {

/// How a `federated_server` spreads work over its backends.
enum class routing_policy {
    round_robin,
    least_queue_depth,
    content_hash_affinity,
};

/// Human-readable policy name (logs, bench tables).
[[nodiscard]] const char* routing_policy_name(routing_policy p) noexcept;

/// Point-in-time view of one backend, as the router scores it.
struct backend_probe {
    /// Bounded-queue occupancy: jobs submitted but not yet finished.
    std::size_t queue_depth = 0;
    /// True when the backend's service is holding queued jobs at the gate.
    bool paused = false;
    /// True when the backend is circuit-broken (or otherwise excluded from
    /// this routing decision, e.g. the backend a retry is failing over
    /// *from*). Treated exactly like `paused`: no policy hands it work
    /// while an available backend exists.
    bool broken = false;
};

/// Deterministic backend chooser. Thread-compatible, not thread-safe: the
/// owning server serialises `route` calls (its dispatch is per-session
/// sequential anyway).
class router {
public:
    /// \throws std::invalid_argument when \p num_backends is 0.
    router(routing_policy policy, std::size_t num_backends);

    [[nodiscard]] routing_policy policy() const noexcept { return policy_; }
    [[nodiscard]] std::size_t num_backends() const noexcept { return num_backends_; }

    /// Choose the backend for a piece of work. \p affinity_hash is the
    /// work's stable identity (building content hash, or a path hash for
    /// shards) — only `content_hash_affinity` reads it. \p probes must
    /// hold one entry per backend.
    /// \throws std::invalid_argument on a probe-count mismatch.
    [[nodiscard]] std::size_t route(std::uint64_t affinity_hash,
                                    const std::vector<backend_probe>& probes);

private:
    /// First available (neither paused nor broken) backend at or
    /// cyclically after \p start; \p start itself when none is available.
    [[nodiscard]] static std::size_t skip_paused(std::size_t start,
                                                 const std::vector<backend_probe>& probes);

    routing_policy policy_;
    std::size_t num_backends_;
    std::size_t next_ = 0;  ///< round-robin cursor
};

}  // namespace fisone::federation
