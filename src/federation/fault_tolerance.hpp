#pragma once

/// \file fault_tolerance.hpp
/// `federation::fleet_health` — the shared fault-tolerance brain of a
/// federated fleet: one circuit breaker per backend, the fleet-wide
/// retry/failover counters `/metrics` exports, and a single watchdog
/// thread that runs every deferred action (retry backoffs, per-request
/// deadline timers). Centralising the deferred work on one thread is a
/// correctness rule, not an optimisation: `floor_service` report
/// callbacks must never block or submit jobs, so resubmission can never
/// happen inline from a completion sink — it is always *scheduled* here
/// and executed on the watchdog.
///
/// Breaker per backend, classic three-state:
///  - **closed** — healthy; every transient failure increments a
///    consecutive-failure count, every success resets it.
///  - **open** — the count reached `breaker_failure_threshold`; the
///    backend is unavailable (routing masks it out) until the cooldown
///    elapses. Failures while open restart the cooldown.
///  - **half-open** — cooldown elapsed; exactly one probe request may be
///    routed at the backend (`note_routed` claims the slot). Probe
///    success closes the breaker; probe failure reopens it.
///
/// This header is deliberately include-light (no api/service headers) so
/// `net/metrics.hpp` can consume `health_snapshot` without dragging the
/// whole message model in.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fisone::federation {

/// Retry / deadline / breaker tuning. Protection engages when `enabled`
/// is set (or the owning server turns it on implicitly — see
/// `federation_config`); the other fields only matter then.
struct fault_tolerance_config {
    /// Master switch for the protected dispatch path.
    bool enabled = false;
    /// Per-request deadline, enforced per attempt: an attempt that has
    /// not answered in time is cancelled, circuit-broken against, and
    /// failed over. 0 = no deadline (failures still retry).
    std::chrono::milliseconds request_timeout{0};
    /// Total tries per request (first attempt + retries) before the
    /// caller gets a typed `backend_unavailable` / `deadline_exceeded`.
    std::size_t max_attempts = 3;
    /// Exponential backoff before retry t is `base << (t-1)`, capped.
    std::chrono::milliseconds backoff_base{2};
    std::chrono::milliseconds backoff_cap{50};
    /// Consecutive transient failures that open a backend's breaker.
    std::size_t breaker_failure_threshold = 3;
    /// How long an open breaker blocks routing before half-opening.
    std::chrono::milliseconds breaker_cooldown{250};
};

/// Point-in-time fleet-health counters, shaped for `/metrics`.
struct health_snapshot {
    std::uint64_t retries = 0;    ///< attempts re-dispatched after a transient failure
    std::uint64_t failovers = 0;  ///< retries that moved to a different backend
    std::uint64_t deadline_exceeded = 0;    ///< requests failed with the typed error
    std::uint64_t backend_unavailable = 0;  ///< requests failed with the typed error
    std::vector<bool> backend_up;  ///< per backend: breaker closed (fully trusted)
};

class fleet_health {
public:
    using clock = std::chrono::steady_clock;

    /// Spawns the watchdog thread immediately.
    fleet_health(fault_tolerance_config cfg, std::size_t num_backends);

    /// Stops the watchdog; pending scheduled actions are dropped.
    ~fleet_health();

    fleet_health(const fleet_health&) = delete;
    fleet_health& operator=(const fleet_health&) = delete;

    [[nodiscard]] const fault_tolerance_config& config() const noexcept { return cfg_; }
    [[nodiscard]] std::size_t num_backends() const noexcept;

    // --- circuit breakers ---------------------------------------------------

    /// A (non-transient-completed or succeeded) answer from \p backend:
    /// reset its failure streak, close its breaker.
    void on_success(std::size_t backend);

    /// A transient failure / timeout / crash from \p backend: bump the
    /// streak, open the breaker at the threshold (restarting the cooldown
    /// if already open).
    void on_failure(std::size_t backend);

    /// Routing is about to send a request to \p backend. Claims the
    /// half-open probe slot when the breaker is half-open, so only one
    /// probe flies per cooldown.
    void note_routed(std::size_t backend);

    /// Per backend: true when routing must avoid it right now (breaker
    /// open, or half-open with the probe already in flight).
    [[nodiscard]] std::vector<bool> unavailable_mask() const;

    // --- counters -----------------------------------------------------------

    void count_retry();
    void count_failover();
    void count_deadline_exceeded();
    void count_backend_unavailable();

    [[nodiscard]] health_snapshot snapshot() const;

    // --- watchdog scheduler -------------------------------------------------

    /// Run \p fn on the watchdog thread at \p when (immediately if past).
    /// `fn` runs outside all fleet_health locks and may call back into
    /// this object freely.
    void schedule(clock::time_point when, std::function<void()> fn);

    /// Convenience: `schedule(now + delay, fn)`.
    void schedule_after(std::chrono::milliseconds delay, std::function<void()> fn);

    /// Backoff before retry number \p tries (1-based): exponential from
    /// `backoff_base`, capped at `backoff_cap`.
    [[nodiscard]] std::chrono::milliseconds backoff(std::size_t tries) const;

private:
    struct breaker {
        std::size_t consecutive_failures = 0;
        clock::time_point open_until{};  ///< epoch = never opened / closed again
        bool probe_inflight = false;     ///< half-open probe claimed
        bool tripped = false;            ///< threshold reached, not yet re-closed
    };

    struct timer {
        clock::time_point when;
        std::uint64_t seq;  ///< tie-break so equal deadlines stay FIFO
        std::function<void()> fn;
    };
    struct timer_later {
        bool operator()(const timer& a, const timer& b) const {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    void watchdog_loop();

    fault_tolerance_config cfg_;

    mutable std::mutex m_;
    std::vector<breaker> breakers_;
    std::uint64_t retries_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t deadline_exceeded_ = 0;
    std::uint64_t backend_unavailable_ = 0;

    std::mutex timer_m_;
    std::condition_variable timer_cv_;
    std::priority_queue<timer, std::vector<timer>, timer_later> timers_;
    std::uint64_t next_seq_ = 0;
    bool stopping_ = false;
    std::thread watchdog_;
};

}  // namespace fisone::federation
