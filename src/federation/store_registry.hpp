#pragma once

/// \file store_registry.hpp
/// The federation layer's namespace: N `data::corpus_store` roots mounted as
/// ONE city-scale corpus. Mount order defines the global corpus order — the
/// buildings of store k come after every building of stores [0, k) — so the
/// merged namespace is exactly the concatenation of the mounted corpora, and
/// global corpus indices (which the runtime derives every pipeline seed from)
/// are identical to a single store holding the concatenated corpus. That
/// index identity is what makes a federated campaign bit-identical to a
/// single-service run.
///
/// Mounting validates the merge, not just each manifest:
///  - **duplicate building ids** — two stores declaring the same corpus name
///    would collide every `<corpus>/<local index>` building id in the merged
///    namespace, and the same shard file reachable through two mounts would
///    serve one building's content under two global indices. Both are
///    rejected at mount time, naming the offending store/shard file (each
///    store's own manifest already rejects in-store duplicates at load).
///  - **per-store shard-path confinement** — `shard_allowed` accepts a path
///    only when it resolves inside some mounted store's directory; the
///    federated front-end refuses every other `identify_shard` path before
///    it can touch the filesystem.

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/corpus_store.hpp"
#include "service/floor_service.hpp"

namespace fisone::federation {

/// One shard of the merged namespace: which store it lives in plus its
/// submittable reference with the *global* first index.
struct mounted_shard {
    std::size_t store_index = 0;  ///< which mounted store holds the shard
    std::size_t shard_index = 0;  ///< shard's index within that store
    service::shard_ref ref;       ///< path + global first_index + count
};

class store_registry {
public:
    /// Open `<dir>/manifest.csv` and mount the store after every store
    /// mounted so far. Returns the index of the mounted store.
    /// \throws std::ios_base::failure / std::invalid_argument exactly as
    ///         `corpus_store::open`, plus std::invalid_argument when the
    ///         merge would create duplicate building ids (corpus-name
    ///         collision or an already-mounted shard file).
    std::size_t mount(const std::string& dir);

    /// Mount an already-open store (same validation).
    std::size_t mount(data::corpus_store store);

    [[nodiscard]] std::size_t num_stores() const noexcept { return stores_.size(); }

    /// Buildings across every mounted store.
    [[nodiscard]] std::size_t total_buildings() const noexcept { return total_buildings_; }

    /// Shards across every mounted store, in global corpus order.
    [[nodiscard]] const std::vector<mounted_shard>& shards() const noexcept { return shards_; }

    /// Mounted store \p store_index. \throws std::out_of_range on a bad index.
    [[nodiscard]] const data::corpus_store& store(std::size_t store_index) const;

    /// Global corpus index of the first building of store \p store_index.
    /// \throws std::out_of_range on a bad index.
    [[nodiscard]] std::size_t store_offset(std::size_t store_index) const;

    /// Per-store shard-path confinement: true when \p path resolves inside
    /// some mounted store's directory. False on an empty registry — with
    /// nothing mounted, nothing is servable.
    [[nodiscard]] bool shard_allowed(const std::string& path) const noexcept;

    /// The merged namespace as one manifest: shard rows in global order
    /// with store-qualified file paths, corpus names joined with '+'.
    /// Validates by construction (contiguous tiling, unique files).
    [[nodiscard]] data::corpus_manifest merged_manifest() const;

private:
    std::vector<data::corpus_store> stores_;
    std::vector<mounted_shard> shards_;       ///< global corpus order
    std::vector<std::size_t> store_offsets_;  ///< global first index per store
    /// Canonicalised paths of every mounted shard file — one filesystem
    /// canonicalisation per shard ever, so mounting stays linear in shards.
    std::unordered_set<std::string> mounted_shard_keys_;
    std::size_t total_buildings_ = 0;
};

}  // namespace fisone::federation
