#include "store_registry.hpp"

#include <filesystem>
#include <stdexcept>

#include "util/path.hpp"

namespace fisone::federation {

namespace {

/// Canonical form of \p path for duplicate detection: two spellings of one
/// file must compare equal, or a store mounted via `./stores/a` and again
/// via `stores/a` would slip past the duplicate check.
std::string canonical_key(const std::string& path) try {
    return std::filesystem::weakly_canonical(std::filesystem::path(path)).string();
} catch (...) {
    return path;
}

}  // namespace

std::size_t store_registry::mount(const std::string& dir) {
    return mount(data::corpus_store::open(dir));
}

std::size_t store_registry::mount(data::corpus_store store) {
    const data::corpus_manifest& manifest = store.manifest();
    // Duplicate-building-id detection across the merge. In the merged
    // namespace a building's id is `<corpus name>/<local index>`, so a
    // corpus-name collision duplicates every id of the incoming store...
    for (const data::corpus_store& mounted : stores_)
        if (mounted.manifest().corpus_name == manifest.corpus_name)
            throw std::invalid_argument(
                "store_registry: corpus '" + manifest.corpus_name + "' of " +
                store.directory() + " is already mounted from " + mounted.directory() +
                " — the merged namespace would hold duplicate building ids");
    // ...and a shard file already reachable through an earlier mount would
    // serve the same buildings under two global index ranges. Validate the
    // whole incoming store before touching the registry state, so a
    // rejected mount leaves it usable.
    std::vector<std::string> incoming_keys;
    incoming_keys.reserve(manifest.shards.size());
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        std::string key = canonical_key(store.shard_path(s));
        if (mounted_shard_keys_.count(key) != 0)
            throw std::invalid_argument("store_registry: shard file '" +
                                        store.shard_path(s) +
                                        "' is already mounted — its building ids would "
                                        "duplicate under two global index ranges");
        incoming_keys.push_back(std::move(key));
    }

    const std::size_t store_index = stores_.size();
    const std::size_t offset = total_buildings_;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        const data::shard_entry& entry = manifest.shards[s];
        mounted_shard ms;
        ms.store_index = store_index;
        ms.shard_index = s;
        ms.ref.path = store.shard_path(s);
        ms.ref.first_index = offset + entry.first_index;
        ms.ref.num_buildings = entry.num_buildings;
        shards_.push_back(std::move(ms));
    }
    for (std::string& key : incoming_keys) mounted_shard_keys_.insert(std::move(key));
    store_offsets_.push_back(offset);
    total_buildings_ += manifest.total_buildings();
    stores_.push_back(std::move(store));
    return store_index;
}

const data::corpus_store& store_registry::store(std::size_t store_index) const {
    if (store_index >= stores_.size())
        throw std::out_of_range("store_registry: store " + std::to_string(store_index) + " of " +
                                std::to_string(stores_.size()));
    return stores_[store_index];
}

std::size_t store_registry::store_offset(std::size_t store_index) const {
    if (store_index >= store_offsets_.size())
        throw std::out_of_range("store_registry: store " + std::to_string(store_index) + " of " +
                                std::to_string(store_offsets_.size()));
    return store_offsets_[store_index];
}

bool store_registry::shard_allowed(const std::string& path) const noexcept {
    for (const data::corpus_store& mounted : stores_)
        if (util::path_within_root(mounted.directory(), path)) return true;
    return false;
}

data::corpus_manifest store_registry::merged_manifest() const {
    data::corpus_manifest merged;
    for (std::size_t i = 0; i < stores_.size(); ++i) {
        if (i > 0) merged.corpus_name += '+';
        merged.corpus_name += stores_[i].manifest().corpus_name;
    }
    for (const mounted_shard& ms : shards_)
        merged.shards.push_back(
            data::shard_entry{ms.ref.path, ms.ref.first_index, ms.ref.num_buildings});
    return merged;
}

}  // namespace fisone::federation
