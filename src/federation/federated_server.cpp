#include "federated_server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "api/codec.hpp"
#include "ingest/ingest_manager.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "watch_registry.hpp"

namespace fisone::federation {

namespace {

/// Frame-peek helpers, mirroring `net::tcp_server`'s wire layout: tag at
/// byte 8, correlation id at the payload start (byte 14), a cancel
/// response's target id right after it (byte 22). All little-endian.
constexpr std::size_t k_off_tag = 8;
constexpr std::size_t k_off_corr = api::k_frame_header_size;  // 14
constexpr std::size_t k_off_cancel_target = k_off_corr + 8;   // 22

std::uint16_t rd_u16(std::string_view b, std::size_t off) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(b[off]) |
                                      (static_cast<unsigned char>(b[off + 1]) << 8));
}

std::uint64_t rd_u64(std::string_view b, std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[off + i])) << (8 * i);
    return v;
}

void patch_u64(std::string& b, std::size_t off, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i)
        b[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

/// Stable affinity identity of a shard request: a canonical hash of its
/// path, so resubmitting the same shard lands on the same backend.
std::uint64_t shard_affinity(const service::shard_ref& ref) noexcept {
    util::fnv1a64 h;
    h.str(ref.path);
    return h.digest();
}

/// Snapshot every backend and merge — the one implementation behind both
/// `get_stats` requests and `federated_server::stats()`.
service::service_stats gather_merged_stats(const std::vector<api::server*>& backends) {
    std::vector<service::service_stats> stats;
    std::vector<obs::latency_histogram> latencies;
    stats.reserve(backends.size());
    latencies.reserve(backends.size());
    for (api::server* b : backends) {
        stats.push_back(b->stats());
        latencies.push_back(b->backing_service().latencies());
    }
    return merge_backend_stats(stats, latencies);
}

}  // namespace

service::service_stats merge_backend_stats(
    const std::vector<service::service_stats>& stats,
    const std::vector<obs::latency_histogram>& latencies) {
    if (stats.size() != latencies.size())
        throw std::invalid_argument("merge_backend_stats: " + std::to_string(stats.size()) +
                                    " stats snapshots, " + std::to_string(latencies.size()) +
                                    " latency histograms");
    service::service_stats merged;
    obs::latency_histogram pooled;
    for (std::size_t k = 0; k < stats.size(); ++k) {
        const service::service_stats& s = stats[k];
        merged.jobs_submitted += s.jobs_submitted;
        merged.jobs_queued += s.jobs_queued;
        merged.jobs_running += s.jobs_running;
        merged.jobs_done += s.jobs_done;
        merged.jobs_cancelled += s.jobs_cancelled;
        merged.buildings_done += s.buildings_done;
        merged.buildings_ok += s.buildings_ok;
        merged.buildings_failed += s.buildings_failed;
        merged.buildings_cancelled += s.buildings_cancelled;
        merged.cache_hits += s.cache_hits;
        merged.cache_misses += s.cache_misses;
        merged.cache_evictions += s.cache_evictions;
        merged.ingest_appends += s.ingest_appends;
        merged.ingest_dirty_buildings += s.ingest_dirty_buildings;
        merged.watch_subscribers += s.watch_subscribers;
        pooled.merge(latencies[k]);
    }
    // Percentiles come from the pooled observations, never from averaging
    // the per-backend percentiles (which answers a different question).
    merged.latency_p50 = pooled.percentile_or_zero(50.0);
    merged.latency_p90 = pooled.percentile_or_zero(90.0);
    merged.latency_p99 = pooled.percentile_or_zero(99.0);
    merged.latency_count = pooled.count();
    merged.latency_sum = pooled.sum();
    merged.latency_le = pooled.le_counts();
    return merged;
}

/// Shared routing state: one cursor/counter namespace per server, shared by
/// every session (and outliving dropped handles).
struct federated_server::routing {
    routing(routing_policy policy, std::size_t num_backends) : rt(policy, num_backends) {}

    std::mutex m;  ///< guards `rt` and `next_index`
    router rt;
    /// Front-end corpus-index counter — the ONE assignment authority for
    /// auto-indexed buildings, mirroring `floor_service`'s own counter so
    /// a federated campaign assigns exactly the indices (and thus seeds) a
    /// single service would.
    std::size_t next_index = 0;

    std::size_t allocate_index() {
        const std::lock_guard<std::mutex> lock(m);
        return next_index++;
    }

    void advance_index(std::size_t end) {
        const std::lock_guard<std::mutex> lock(m);
        if (end > next_index) next_index = end;
    }

    std::size_t route(std::uint64_t affinity, const std::vector<backend_probe>& probes) {
        const std::lock_guard<std::mutex> lock(m);
        return rt.route(affinity, probes);
    }
};

/// Name → global-corpus-index directory over the mounted stores, plus an
/// in-memory cache of the buildings `identify_resident` has actually been
/// asked for (resident mode pins served buildings in memory — that is its
/// point: neither the wire nor the disk should gate the pipeline). The
/// directory is fingerprinted on the stores' manifest versions and rebuilt
/// lazily whenever an append moves one forward, so post-append names (new
/// buildings included) resolve without a restart.
struct federated_server::resident_directory {
    struct entry {
        std::size_t store = 0;         ///< which mounted store holds the name
        std::size_t global_index = 0;  ///< its global corpus index
    };

    std::mutex m;
    std::string fingerprint;  ///< store count + manifest versions at last build
    bool built = false;
    std::unordered_map<std::string, entry> index;
    std::unordered_map<std::string, std::shared_ptr<const data::building>> cache;

    static std::string current_fingerprint(const store_registry& reg) {
        std::string fp = std::to_string(reg.num_stores());
        for (std::size_t s = 0; s < reg.num_stores(); ++s)
            fp += ":" + std::to_string(reg.store(s).manifest().version);
        return fp;
    }

    /// Resolve \p name to (global index, building), loading the building
    /// from its store on the first request. Serialised under the directory
    /// lock — a store scan stalls concurrent resolutions, but only the
    /// first request of each name (per store version) ever scans.
    struct hit {
        std::size_t global_index = 0;
        std::shared_ptr<const data::building> b;
    };
    std::optional<hit> resolve(const store_registry& reg, const std::string& name) {
        const std::lock_guard<std::mutex> lock(m);
        const std::string fp = current_fingerprint(reg);
        if (!built || fp != fingerprint) {
            index.clear();
            cache.clear();  // an append may have changed any building's scans
            for (std::size_t s = 0; s < reg.num_stores(); ++s) {
                const std::size_t offset = reg.store_offset(s);
                reg.store(s).for_each_building_effective(
                    [&](std::size_t local, data::building&& b) {
                        index[b.name] = entry{s, offset + local};
                    });
            }
            fingerprint = fp;
            built = true;
        }
        const auto it = index.find(name);
        if (it == index.end()) return std::nullopt;
        auto cached = cache.find(name);
        if (cached == cache.end()) {
            obs::scoped_span span("federation.resident_load");
            const std::size_t local = it->second.global_index - reg.store_offset(it->second.store);
            std::shared_ptr<const data::building> loaded;
            reg.store(it->second.store)
                .for_each_building_effective([&](std::size_t i, data::building&& b) {
                    if (i == local) loaded = std::make_shared<const data::building>(std::move(b));
                });
            if (!loaded) return std::nullopt;  // store mutated underneath us
            cached = cache.emplace(name, std::move(loaded)).first;
        }
        return hit{it->second.global_index, cached->second};
    }
};

// Named (not anonymous) so session::state — an external-linkage type — may
// hold it without GCC's -Wsubobject-linkage firing.
namespace detail {

/// High bit of a correlation id: set on every id the protected dispatch
/// path mints (attempt ids, swallow-cancel ids), never on a client id the
/// front door forwards (`net::tcp_server` remaps client ids to small
/// internal ones). The bit is what lets the emitter tell backend frames it
/// must intercept from frames it streams through verbatim.
inline constexpr std::uint64_t k_attempt_bit = std::uint64_t{1} << 63;

/// One in-flight protected building request. Lives in the tracker map
/// from submission until its final answer (success, genuine failure, or
/// typed error) — a scheduled-but-not-yet-dispatched retry re-keys the
/// entry under a fresh attempt id, so the map is never empty while the
/// client still awaits a response (the drain barrier waits on exactly
/// that).
struct attempt {
    std::uint64_t client_corr = 0;
    api::identify_building_request req;  ///< pinned (has_index = true)
    std::uint64_t affinity = 0;
    std::size_t backend = 0;      ///< backend of the current dispatch
    std::size_t last_failed = 0;  ///< backend the previous try failed on
    bool has_failed = false;      ///< `last_failed` is meaningful
    std::size_t tries = 0;        ///< dispatches so far
    /// Set while the final response is being delivered: competing
    /// resolution paths (a late timeout racing the answer) back off, and
    /// the drain barrier keeps waiting until delivery completes.
    bool resolving = false;
    obs::trace_context trace{};   ///< submitter's trace position (for retry spans)
};

/// Protected-mode bookkeeping of one session. Pure data + locks — shared
/// by the session state and its emitter, so interception keeps working on
/// frames that arrive after the session handle was dropped.
struct attempt_tracker {
    std::mutex m;
    std::condition_variable cv;  ///< notified whenever an attempt resolves
    std::unordered_map<std::uint64_t, attempt> attempts;  ///< by attempt id
    /// Client correlation id → current attempt id (the `cancel_job`
    /// namespace under protection). Resubmitting under an id re-points it.
    std::unordered_map<std::uint64_t, std::uint64_t> attempt_by_client;
    /// Forwarded client cancels had their target translated to an attempt
    /// id; this maps the cancel's own correlation id back to the client's
    /// target so the response can be un-translated in place.
    std::unordered_map<std::uint64_t, std::uint64_t> cancel_rewrites;
    std::uint64_t next_id = 0;

    std::uint64_t mint() { return k_attempt_bit | next_id++; }

    /// Drop the resolved attempt \p id (and its client alias).
    void erase(std::uint64_t id) {
        const auto it = attempts.find(id);
        if (it == attempts.end()) return;
        const auto alias = attempt_by_client.find(it->second.client_corr);
        if (alias != attempt_by_client.end() && alias->second == id)
            attempt_by_client.erase(alias);
        attempts.erase(it);
    }
};

/// The response channel of one federated connection. Kept separate from the
/// session state on purpose: backend sessions hold their sink (and thus
/// this) alive while jobs are in flight, and pointing those sinks at the
/// session state instead would cycle session → backend sessions → sink →
/// session and leak all three.
struct emitter {
    federated_server::frame_sink sink;
    std::mutex m;  ///< serialises sink calls across every backend's workers
    bool broken = false;
    /// Protected mode: inspects each backend frame first; true = consumed
    /// (handled, rewritten-and-delivered, or dropped as stale). Owned by
    /// this emitter; captures it by raw pointer (same lifetime) and the
    /// session state only weakly (no cycle).
    std::function<bool(std::string_view)> intercept;

    /// Route one backend frame: interception first, else verbatim.
    void frame(std::string_view f) {
        if (intercept && intercept(f)) return;
        deliver(f);
    }

    /// Hand one frame to the sink. A sink that throws marks the transport
    /// broken; later frames are dropped silently.
    void deliver(std::string_view f) {
        const std::lock_guard<std::mutex> lock(m);
        if (broken) return;
        try {
            sink(f);
        } catch (...) {
            broken = true;
        }
    }

    /// Encode and forward one front-end-authored response (never
    /// intercepted: these already carry the client's correlation id).
    void respond(const api::response& resp) { deliver(api::encode(resp)); }
};

}  // namespace detail

/// Per-connection state: one backend session per backend (a correlation-id
/// namespace spanning the fleet) plus the owner map `cancel_job` routes by.
struct federated_server::session::state {
    std::shared_ptr<detail::emitter> out;
    std::shared_ptr<federated_server::routing> routing;
    store_registry* registry = nullptr;
    std::vector<api::server*> backends;
    std::vector<api::server::session> backend_sessions;
    /// Protection (both null when off). The tracker is shared with the
    /// emitter; fleet_health is shared with the server (its watchdog must
    /// outlive every scheduled retry).
    std::shared_ptr<detail::attempt_tracker> tracker;
    std::shared_ptr<fleet_health> health;
    /// Live ingestion: the append engine (null when the fleet has no
    /// stores — and always null on the manager's own internal session, or
    /// manager → session → manager would cycle) and the fleet-wide watch
    /// registry.
    std::shared_ptr<ingest::ingest_manager> ingest;
    std::shared_ptr<watch_registry> watches;
    std::shared_ptr<federated_server::resident_directory> residents;

    std::mutex owners_m;
    /// Which backend owns each submitted correlation id (the `cancel_job`
    /// namespace). Resubmitting under an id re-points it, exactly as
    /// `api::server` re-points its cancellable target. Cleared at `flush`
    /// (everything is finished then, so cancels answer false either way).
    /// Under protection, building requests route cancels through the
    /// tracker instead; this map still owns shard requests.
    std::unordered_map<std::uint64_t, std::size_t> owners;

    /// Probe every backend's load (and, under protection, breaker state)
    /// for the router.
    [[nodiscard]] std::vector<backend_probe> probe() const {
        std::vector<backend_probe> probes(backends.size());
        for (std::size_t k = 0; k < backends.size(); ++k) {
            const service::floor_service& svc = backends[k]->backing_service();
            probes[k] = backend_probe{svc.pending_jobs(), svc.paused()};
        }
        if (health) {
            const std::vector<bool> mask = health->unavailable_mask();
            for (std::size_t k = 0; k < probes.size(); ++k) probes[k].broken = mask[k];
        }
        return probes;
    }

    std::size_t pick(std::uint64_t affinity) { return routing->route(affinity, probe()); }

    void remember(std::uint64_t correlation_id, std::size_t backend_index) {
        const std::lock_guard<std::mutex> lock(owners_m);
        owners[correlation_id] = backend_index;
    }

    /// Drain barrier: the ingest manager idle (appends queued before the
    /// barrier durable, their dirty re-runs answered), every backend
    /// finished, AND every protected attempt resolved. Ingest first — its
    /// re-runs create the backend work the rest of the barrier waits on.
    /// Loops because a scheduled retry may submit new backend work after a
    /// round of finishes.
    void drain() {
        if (ingest) ingest->wait_idle();
        for (;;) {
            for (api::server::session& bs : backend_sessions) bs.finish();
            if (!tracker) return;
            std::unique_lock<std::mutex> lock(tracker->m);
            if (tracker->attempts.empty()) return;
            tracker->cv.wait_for(lock, std::chrono::milliseconds(20));
        }
    }
};

// --- protected dispatch -----------------------------------------------------

/// (Re)dispatch protected attempt \p attempt_id: route it (avoiding the
/// backend it last failed on and every circuit-broken backend — though
/// when nothing is available the natural choice still gets the work, so
/// a single-backend fleet keeps retrying toward exhaustion rather than
/// failing early), forward it under its attempt id, arm its deadline.
/// Runs on the submitting thread for the first try and on the fleet_health
/// watchdog for retries — never inside a completion callback.
void federated_server::dispatch_attempt(const std::shared_ptr<session::state>& st,
                                        std::uint64_t attempt_id) {
    detail::attempt_tracker& tr = *st->tracker;
    fleet_health& health = *st->health;

    api::identify_building_request req;
    std::uint64_t affinity = 0;
    std::size_t last_failed = 0;
    bool has_failed = false;
    std::size_t tries = 0;
    obs::trace_context trace;
    {
        const std::lock_guard<std::mutex> lock(tr.m);
        const auto it = tr.attempts.find(attempt_id);
        if (it == tr.attempts.end()) return;  // resolved while queued
        detail::attempt& a = it->second;
        ++a.tries;
        tries = a.tries;
        req = a.req;
        affinity = a.affinity;
        last_failed = a.last_failed;
        has_failed = a.has_failed;
        trace = a.trace;
    }

    std::vector<backend_probe> probes = st->probe();
    if (has_failed && last_failed < probes.size()) probes[last_failed].broken = true;
    const std::size_t k = st->routing->route(affinity, probes);
    if (tries > 1) {
        health.count_retry();
        const std::uint64_t now = obs::now_ns();
        obs::emit_child_span("federation.retry", trace, now, now);
        if (has_failed && k != last_failed) {
            health.count_failover();
            obs::emit_child_span("federation.failover", trace, now, now);
        }
    }
    health.note_routed(k);
    {
        const std::lock_guard<std::mutex> lock(tr.m);
        const auto it = tr.attempts.find(attempt_id);
        if (it == tr.attempts.end()) return;
        it->second.backend = k;
    }

    req.correlation_id = attempt_id;
    try {
        st->backend_sessions[k].handle(api::request{std::move(req)});
    } catch (const std::exception& e) {
        // Submit-time crash: no backend job exists, no response will come.
        health.on_failure(k);
        retry_or_fail(st, attempt_id, k, api::error_code::backend_unavailable,
                      std::string("backend crashed on submit: ") + e.what());
        return;
    }
    if (health.config().request_timeout.count() > 0) {
        std::weak_ptr<session::state> w = st;
        health.schedule(fleet_health::clock::now() + health.config().request_timeout,
                        [w, attempt_id] {
                            if (const std::shared_ptr<session::state> s = w.lock())
                                expire_attempt(s, attempt_id);
                        });
    }
}

/// Resolve a failed try of \p attempt_id: either re-key it under a fresh
/// attempt id and schedule the backoff retry, or — attempts exhausted —
/// answer the client with the typed error \p code.
void federated_server::retry_or_fail(const std::shared_ptr<session::state>& st,
                                     std::uint64_t attempt_id, std::size_t failed_backend,
                                     api::error_code code, const std::string& message) {
    detail::attempt_tracker& tr = *st->tracker;
    fleet_health& health = *st->health;

    std::uint64_t client = 0;
    std::uint64_t new_id = 0;
    bool exhausted = false;
    std::size_t tries = 0;
    {
        const std::lock_guard<std::mutex> lock(tr.m);
        const auto it = tr.attempts.find(attempt_id);
        if (it == tr.attempts.end() || it->second.resolving) return;  // already resolved
        tries = it->second.tries;
        client = it->second.client_corr;
        if (tries >= health.config().max_attempts) {
            exhausted = true;
            it->second.resolving = true;  // claimed: the error below is final
        } else {
            // Re-key now (not at dispatch time): the map must stay
            // non-empty while the client awaits an answer, or the drain
            // barrier would return with a retry still scheduled. A late
            // frame for the old id finds nothing and is dropped as stale.
            detail::attempt a = std::move(it->second);
            tr.attempts.erase(it);
            a.last_failed = failed_backend;
            a.has_failed = true;
            new_id = tr.mint();
            const auto alias = tr.attempt_by_client.find(a.client_corr);
            if (alias != tr.attempt_by_client.end() && alias->second == attempt_id)
                alias->second = new_id;
            tr.attempts.emplace(new_id, std::move(a));
        }
    }
    if (exhausted) {
        if (code == api::error_code::deadline_exceeded)
            health.count_deadline_exceeded();
        else
            health.count_backend_unavailable();
        st->out->respond(api::error_response{
            client, code, message + " (after " + std::to_string(tries) + " attempts)"});
        {
            const std::lock_guard<std::mutex> lock(tr.m);
            tr.erase(attempt_id);
        }
        tr.cv.notify_all();
        return;
    }
    std::weak_ptr<session::state> w = st;
    health.schedule_after(health.backoff(tries), [w, new_id] {
        if (const std::shared_ptr<session::state> s = w.lock()) dispatch_attempt(s, new_id);
    });
}

/// Deadline expiry of \p attempt_id (watchdog timer). Claims the attempt
/// first, then cancels the straggler job — in that order, so the job's
/// "cancelled" report arrives under an id no longer tracked and is
/// stale-dropped instead of reaching the client as a cancelled result.
void federated_server::expire_attempt(const std::shared_ptr<session::state>& st,
                                      std::uint64_t attempt_id) {
    detail::attempt_tracker& tr = *st->tracker;
    std::size_t backend = 0;
    std::uint64_t swallow = 0;
    {
        const std::lock_guard<std::mutex> lock(tr.m);
        const auto it = tr.attempts.find(attempt_id);
        if (it == tr.attempts.end() || it->second.resolving) return;  // answered in time
        if (it->second.tries == 0) return;  // not yet dispatched (paranoia)
        backend = it->second.backend;
        swallow = tr.mint();  // never registered: its cancel ack is dropped
    }
    st->health->on_failure(backend);
    retry_or_fail(st, attempt_id, backend, api::error_code::deadline_exceeded,
                  "deadline exceeded after " +
                      std::to_string(st->health->config().request_timeout.count()) + " ms");
    // Cancel the hung job so its worker stops burning the deadline's
    // budget; the swallow id keeps the ack out of the client stream.
    st->backend_sessions[backend].handle(
        api::request{api::cancel_job_request{swallow, attempt_id}});
}

void federated_server::session::handle(const api::request& req) {
    const std::shared_ptr<state> st = state_;
    std::visit(
        [&](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, api::identify_building_request>) {
                obs::scoped_span span("federation.dispatch");
                // Affinity reads the building's content hash only when the
                // policy routes on it (the hash walks every sample).
                const bool affine =
                    st->routing->rt.policy() == routing_policy::content_hash_affinity;
                if (st->tracker) {
                    // Protected path: pin the index up front (the identity
                    // must survive failover — every retry reruns the SAME
                    // task), register the attempt, then dispatch under a
                    // minted attempt id the emitter intercepts.
                    api::identify_building_request pinned = m;
                    pinned.has_index = true;
                    if (m.has_index)
                        st->routing->advance_index(static_cast<std::size_t>(m.corpus_index) +
                                                   1);
                    else
                        pinned.corpus_index = st->routing->allocate_index();
                    const std::uint64_t affinity = affine ? data::content_hash(m.b) : 0;
                    std::uint64_t id = 0;
                    {
                        const std::lock_guard<std::mutex> lock(st->tracker->m);
                        id = st->tracker->mint();
                        detail::attempt a;
                        a.client_corr = m.correlation_id;
                        a.req = std::move(pinned);
                        a.affinity = affinity;
                        a.trace = obs::current_context();
                        st->tracker->attempts.emplace(id, std::move(a));
                        st->tracker->attempt_by_client[m.correlation_id] = id;
                    }
                    dispatch_attempt(st, id);
                    return;
                }
                const std::size_t k = [&] {
                    obs::scoped_span route_span("federation.route");
                    return st->pick(affine ? data::content_hash(m.b) : 0);
                }();
                st->remember(m.correlation_id, k);
                if (m.has_index) {
                    st->routing->advance_index(static_cast<std::size_t>(m.corpus_index) + 1);
                    st->backend_sessions[k].handle(req);
                } else {
                    // The front-end is the one index-assignment authority:
                    // pin the next global index before the hop, so the
                    // backend (and its cache key) sees the same identity a
                    // single service would assign.
                    api::identify_building_request pinned = m;
                    pinned.has_index = true;
                    pinned.corpus_index = st->routing->allocate_index();
                    st->backend_sessions[k].handle(api::request{std::move(pinned)});
                }
            } else if constexpr (std::is_same_v<T, api::identify_shard_request>) {
                obs::scoped_span span("federation.dispatch");
                // Per-store confinement: only paths inside a mounted store
                // are servable — an empty registry serves nothing.
                if (!st->registry->shard_allowed(m.ref.path)) {
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::bad_request,
                        st->registry->num_stores() == 0
                            ? "no corpus stores mounted: " + m.ref.path
                            : "shard path outside every mounted store: " + m.ref.path});
                    return;
                }
                st->routing->advance_index(m.ref.first_index + m.ref.num_buildings);
                if (st->tracker) {
                    // Shards fail over only on submit-time crashes: once a
                    // backend accepts the stream it may have emitted
                    // frames, and resubmission would duplicate them. The
                    // loop is synchronous (submission is cheap — it only
                    // enqueues), rerouting around each crashed backend.
                    std::vector<backend_probe> probes = st->probe();
                    const std::size_t max_tries =
                        std::min(st->health->config().max_attempts, probes.size());
                    std::size_t prev = probes.size();
                    for (std::size_t t = 0; t < max_tries; ++t) {
                        const std::size_t k =
                            st->routing->route(shard_affinity(m.ref), probes);
                        if (t > 0) {
                            st->health->count_retry();
                            if (k != prev) st->health->count_failover();
                        }
                        try {
                            st->backend_sessions[k].handle(req);
                            st->remember(m.correlation_id, k);
                            st->health->on_success(k);
                            return;
                        } catch (const std::exception&) {
                            st->health->on_failure(k);
                            probes[k].broken = true;  // reroute away from it
                            prev = k;
                        }
                    }
                    st->health->count_backend_unavailable();
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::backend_unavailable,
                        "every backend crashed on shard submit: " + m.ref.path});
                    return;
                }
                const std::size_t k = [&] {
                    obs::scoped_span route_span("federation.route");
                    return st->pick(shard_affinity(m.ref));
                }();
                st->remember(m.correlation_id, k);
                st->backend_sessions[k].handle(req);
            } else if constexpr (std::is_same_v<T, api::get_stats_request>) {
                service::service_stats s = gather_merged_stats(st->backends);
                if (st->ingest) {
                    s.ingest_appends = static_cast<std::size_t>(st->ingest->appends_total());
                    s.ingest_dirty_buildings =
                        static_cast<std::size_t>(st->ingest->dirty_total());
                }
                if (st->watches) s.watch_subscribers = st->watches->live_count();
                st->out->respond(api::stats_response{m.correlation_id, std::move(s)});
            } else if constexpr (std::is_same_v<T, api::append_scans_request>) {
                obs::scoped_span span("federation.dispatch");
                if (!st->ingest) {
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::bad_request,
                        "append_scans needs a store-backed fleet (no corpus stores "
                        "mounted at construction)"});
                    return;
                }
                // Ack from the ingest worker, after the manifest durably
                // versioned forward (or the batch was refused). The emitter
                // is captured shared: the ack must deliver even if this
                // session handle is dropped meanwhile.
                const std::uint64_t corr = m.correlation_id;
                const std::shared_ptr<detail::emitter> out = st->out;
                st->ingest->enqueue_append(
                    m.corpus_name, m.records, [out, corr](const ingest::append_ack& ack) {
                        if (ack.error.empty())
                            out->respond(api::append_response{corr, ack.version, ack.accepted,
                                                              ack.dirty});
                        else
                            out->respond(api::error_response{
                                corr, api::error_code::bad_request, ack.error});
                    });
            } else if constexpr (std::is_same_v<T, api::watch_request>) {
                // One subscription per (building, connection); the emitter
                // pointer is the connection's identity. Entries hold the
                // emitter weakly — closing the connection unsubscribes by
                // expiry.
                const auto token =
                    static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(st->out.get()));
                bool active = false;
                if (m.subscribe) {
                    std::weak_ptr<detail::emitter> w = st->out;
                    st->watches->subscribe(m.name, token, m.correlation_id,
                                           std::weak_ptr<void>(st->out),
                                           [w](const api::response& resp) {
                                               if (const auto out_ = w.lock())
                                                   out_->respond(resp);
                                           });
                    active = true;
                } else {
                    st->watches->unsubscribe(m.name, token);
                }
                st->out->respond(api::watch_ack_response{m.correlation_id, active});
            } else if constexpr (std::is_same_v<T, api::identify_resident_request>) {
                // Resolve the name against the mounted stores, then re-enter
                // dispatch as a pinned identify_building: resident requests
                // ride the exact routing/protection path client-supplied
                // buildings do.
                if (st->registry->num_stores() == 0) {
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::bad_request,
                        "identify_resident: no corpus stores mounted"});
                    return;
                }
                const auto hit = st->residents->resolve(*st->registry, m.name);
                if (!hit) {
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::bad_request,
                        "identify_resident: no mounted store holds a building named '" +
                            m.name + "'"});
                    return;
                }
                api::identify_building_request fwd;
                fwd.correlation_id = m.correlation_id;
                fwd.has_index = true;
                fwd.corpus_index = hit->global_index;
                fwd.no_cache = m.fresh;
                fwd.b = *hit->b;
                handle(api::request{std::move(fwd)});
            } else if constexpr (std::is_same_v<T, api::subscribe_stats_request>) {
                st->out->respond(api::error_response{
                    m.correlation_id, api::error_code::bad_request,
                    "subscribe_stats: telemetry windows live at the TCP front door "
                    "(connect through serve_tcp to stream stats)"});
            } else if constexpr (std::is_same_v<T, api::cancel_job_request>) {
                if (st->tracker) {
                    // Protected buildings live under attempt ids: translate
                    // the target for the hop and record the un-translation
                    // the response's target field needs on the way back.
                    std::size_t backend = st->backends.size();
                    std::uint64_t attempt_id = 0;
                    {
                        const std::lock_guard<std::mutex> lock(st->tracker->m);
                        const auto alias =
                            st->tracker->attempt_by_client.find(m.target_correlation_id);
                        if (alias != st->tracker->attempt_by_client.end()) {
                            const auto at = st->tracker->attempts.find(alias->second);
                            if (at != st->tracker->attempts.end() && !at->second.resolving &&
                                at->second.tries > 0) {
                                attempt_id = alias->second;
                                backend = at->second.backend;
                                st->tracker->cancel_rewrites[m.correlation_id] =
                                    m.target_correlation_id;
                            }
                        }
                    }
                    if (backend < st->backends.size()) {
                        api::cancel_job_request fwd = m;
                        fwd.target_correlation_id = attempt_id;
                        st->backend_sessions[backend].handle(api::request{std::move(fwd)});
                        return;
                    }
                    // else: not a live protected building — a shard job
                    // (owners map below) or an unknown target.
                }
                std::size_t owner = st->backends.size();
                {
                    const std::lock_guard<std::mutex> lock(st->owners_m);
                    const auto it = st->owners.find(m.target_correlation_id);
                    if (it != st->owners.end()) owner = it->second;
                }
                if (owner < st->backends.size())
                    st->backend_sessions[owner].handle(req);  // backend answers
                else
                    st->out->respond(api::cancel_response{m.correlation_id,
                                                          m.target_correlation_id, false});
            } else {
                static_assert(std::is_same_v<T, api::flush_request>);
                // Fan-out barrier: every backend drains — and, under
                // protection, every attempt resolves (retries included) —
                // before the one flush_response. (Flush on a paused fleet
                // throws, exactly as floor_service::wait_all refuses to
                // deadlock.)
                st->drain();
                {
                    const std::lock_guard<std::mutex> lock(st->owners_m);
                    st->owners.clear();
                }
                st->out->respond(api::flush_response{m.correlation_id});
            }
        },
        req);
}

bool federated_server::session::handle_frame(std::string_view frame) {
    const api::decode_result<api::request> decoded = api::decode_request(frame);
    if (decoded.eof) return true;
    if (decoded.error) {
        state_->out->respond(
            api::error_response{0, decoded.error->code, decoded.error->message});
        return !decoded.fatal;
    }
    handle(*decoded.value);
    return true;
}

void federated_server::session::finish() { state_->drain(); }

bool federated_server::session::sink_broken() const {
    const std::lock_guard<std::mutex> lock(state_->out->m);
    return state_->out->broken;
}

federated_server::federated_server(federation_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.num_backends == 0)
        throw std::invalid_argument("federated_server: num_backends must be >= 1");
    if (!cfg_.fault_plans.empty() && cfg_.fault_plans.size() != cfg_.num_backends)
        throw std::invalid_argument("federated_server: " +
                                    std::to_string(cfg_.fault_plans.size()) +
                                    " fault plans for " + std::to_string(cfg_.num_backends) +
                                    " backends");
    // Protection engages implicitly whenever something could go wrong on
    // purpose (armed faults) or a deadline must be enforced; otherwise
    // dispatch stays the byte-for-byte unprotected fast path.
    bool any_fault = false;
    for (const service::fault_plan& plan : cfg_.fault_plans) any_fault = any_fault || plan.any();
    if (any_fault || cfg_.fault_tolerance.request_timeout.count() > 0)
        cfg_.fault_tolerance.enabled = true;
    if (cfg_.fault_tolerance.enabled)
        health_ = std::make_shared<fleet_health>(cfg_.fault_tolerance, cfg_.num_backends);
    routing_ = std::make_shared<routing>(cfg_.policy, cfg_.num_backends);
    for (const std::string& dir : cfg_.store_dirs) static_cast<void>(registry_.mount(dir));
    backends_.reserve(cfg_.num_backends);
    for (std::size_t k = 0; k < cfg_.num_backends; ++k) {
        api::server_config bc;
        bc.service = cfg_.service;
        if (!cfg_.fault_plans.empty()) bc.service.faults = cfg_.fault_plans[k];
        bc.enable_cache = cfg_.enable_cache;
        bc.cache_capacity = cfg_.cache_capacity;
        if (!cfg_.cache_dir.empty())
            bc.cache_spill = api::cache_spill_config{cfg_.cache_dir, cfg_.num_backends, k};
        // Backends trust their paths: the front-end already confined every
        // shard request to the mounted stores.
        bc.shard_root.clear();
        backends_.push_back(std::make_unique<api::server>(std::move(bc)));
    }
    watches_ = std::make_shared<watch_registry>();
    residents_ = std::make_shared<resident_directory>();
    if (registry_.num_stores() > 0) {
        std::vector<ingest::store_binding> bindings;
        bindings.reserve(registry_.num_stores());
        for (std::size_t s = 0; s < registry_.num_stores(); ++s) {
            ingest::store_binding b;
            b.dir = registry_.store(s).directory();
            b.corpus_name = registry_.store(s).manifest().corpus_name;
            b.base_offset = registry_.store_offset(s);
            // The store-owning backend's drills govern its ingest path:
            // store k belongs to backend k mod fleet size.
            if (!cfg_.fault_plans.empty()) b.faults = cfg_.fault_plans[s % cfg_.num_backends];
            bindings.push_back(std::move(b));
        }
        // The manager's re-runs go through an internal session, so they
        // ride the protected retry/failover/deadline path exactly as
        // client work does. Opened BEFORE `ingest_` exists, so its state's
        // `ingest` pointer stays null — the manager must not own a session
        // that owns the manager. The bridge breaks the remaining knot: the
        // session's sink needs the manager, the manager needs the session.
        auto bridge = std::make_shared<std::weak_ptr<ingest::ingest_manager>>();
        session internal = open([bridge](std::string_view frame) {
            const std::shared_ptr<ingest::ingest_manager> mgr = bridge->lock();
            if (!mgr) return;
            const api::decode_result<api::response> d = api::decode_response(frame);
            if (!d.value) return;
            if (const auto* br = std::get_if<api::building_response>(&*d.value))
                mgr->on_reindex_result(br->correlation_id, &br->report);
            else if (const auto* er = std::get_if<api::error_response>(&*d.value))
                mgr->on_reindex_result(er->correlation_id, nullptr);
        });
        std::shared_ptr<watch_registry> watches = watches_;
        ingest_ = std::make_shared<ingest::ingest_manager>(
            std::move(bindings),
            [internal](std::uint64_t corr, std::size_t index, data::building b) mutable {
                api::identify_building_request req;
                req.correlation_id = corr;
                req.has_index = true;
                req.corpus_index = index;
                req.b = std::move(b);
                internal.handle(api::request{std::move(req)});
            },
            [watches](const std::string& name, std::uint64_t version,
                      const runtime::building_report& report) {
                watches->publish(name, version, report);
            });
        *bridge = ingest_;
    }
}

federated_server::~federated_server() = default;

federated_server::session federated_server::open(frame_sink sink) {
    auto out = std::make_shared<detail::emitter>();
    out->sink = std::move(sink);
    auto st = std::make_shared<session::state>();
    st->out = out;
    st->routing = routing_;
    st->registry = &registry_;
    st->ingest = ingest_;  // still null while the internal session opens
    st->watches = watches_;
    st->residents = residents_;
    st->backends.reserve(backends_.size());
    st->backend_sessions.reserve(backends_.size());
    for (const std::unique_ptr<api::server>& b : backends_) {
        st->backends.push_back(b.get());
        st->backend_sessions.push_back(
            b->open([out](std::string_view frame) { out->frame(frame); }));
    }
    if (health_) {
        st->health = health_;
        st->tracker = std::make_shared<detail::attempt_tracker>();
        // The intercept closure is owned by the emitter, so it captures
        // the emitter raw (same lifetime) and the session state weakly
        // (backend sinks → emitter → closure → state would cycle). The
        // tracker and fleet_health are co-owned: frames that arrive after
        // the session handle died still resolve or drop correctly.
        detail::emitter* self = out.get();
        std::weak_ptr<session::state> w = st;
        std::shared_ptr<detail::attempt_tracker> tracker = st->tracker;
        std::shared_ptr<fleet_health> health = health_;
        out->intercept = [self, w, tracker, health](std::string_view f) -> bool {
            if (f.size() < k_off_corr + 8) return false;  // unaddressable: pass through
            const std::uint16_t tag = rd_u16(f, k_off_tag);
            const std::uint64_t corr = rd_u64(f, k_off_corr);
            if (!(corr & detail::k_attempt_bit)) {
                // Client-correlated. Only forwarded cancels need work: un-
                // translate the response's target from attempt id back to
                // the client's target id, in place.
                if (tag == static_cast<std::uint16_t>(api::message_tag::cancel_result) &&
                    f.size() >= k_off_cancel_target + 8) {
                    std::uint64_t client_target = 0;
                    {
                        const std::lock_guard<std::mutex> lock(tracker->m);
                        const auto it = tracker->cancel_rewrites.find(corr);
                        if (it == tracker->cancel_rewrites.end()) return false;
                        client_target = it->second;
                        tracker->cancel_rewrites.erase(it);
                    }
                    std::string patched(f);
                    patch_u64(patched, k_off_cancel_target, client_target);
                    self->deliver(patched);
                    return true;
                }
                return false;
            }
            // Attempt-correlated: ours. Anything that is not a tracked
            // building result or error — swallow-cancel acks, frames from
            // attempts already resolved or re-keyed (a timed-out try
            // answering late) — is dropped: the client either already has
            // its answer or will get it from the retry in flight.
            std::size_t backend = 0;
            std::uint64_t client = 0;
            bool transient = false;
            {
                const std::lock_guard<std::mutex> lock(tracker->m);
                const auto it = tracker->attempts.find(corr);
                if (it == tracker->attempts.end() || it->second.resolving) return true;
                if (tag != static_cast<std::uint16_t>(api::message_tag::building_result) &&
                    tag != static_cast<std::uint16_t>(api::message_tag::error))
                    return true;
                backend = it->second.backend;
                client = it->second.client_corr;
                if (tag == static_cast<std::uint16_t>(api::message_tag::building_result)) {
                    const api::decode_result<api::response> d = api::decode_response(f);
                    const api::building_response* br =
                        d.value ? std::get_if<api::building_response>(&*d.value) : nullptr;
                    transient =
                        br && !br->report.ok && service::is_transient_fault(br->report.error);
                }
                if (!transient) it->second.resolving = true;  // claim: delivery is final
            }
            if (!transient) {
                // Success — or a genuine, deterministic failure the retry
                // layer must NOT rerun. Patch the correlation id back to
                // the client's in place; every other byte is verbatim, so
                // successful responses match an unprotected run exactly.
                health->on_success(backend);
                std::string patched(f);
                patch_u64(patched, k_off_corr, client);
                self->deliver(patched);
                {
                    const std::lock_guard<std::mutex> lock(tracker->m);
                    tracker->erase(corr);
                }
                tracker->cv.notify_all();
                return true;
            }
            health->on_failure(backend);
            if (const std::shared_ptr<session::state> s = w.lock()) {
                retry_or_fail(s, corr, backend, api::error_code::backend_unavailable,
                              "backend kept failing transiently");
            } else {
                // Session gone: nothing can re-dispatch — fail it now so
                // the tracker drains.
                {
                    const std::lock_guard<std::mutex> lock(tracker->m);
                    tracker->erase(corr);
                }
                health->count_backend_unavailable();
                self->deliver(api::encode(api::response{api::error_response{
                    client, api::error_code::backend_unavailable,
                    "backend failed and the session is gone"}}));
                tracker->cv.notify_all();
            }
            return true;
        };
    }
    return session(std::move(st));
}

void federated_server::serve(std::istream& in, std::ostream& out) {
    session s = open([&out](std::string_view frame) {
        out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        if (!out) throw std::ios_base::failure("federated_server: response stream went bad");
        out.flush();
    });
    try {
        for (;;) {
            const api::decode_result<api::request> r = api::read_request(in);
            if (r.eof) break;
            if (r.error) {
                s.state_->out->respond(
                    api::error_response{0, r.error->code, r.error->message});
                if (r.fatal) break;
                continue;
            }
            s.handle(*r.value);
            if (s.sink_broken()) break;
        }
    } catch (...) {
        // Same contract as api::server::serve: never unwind with jobs in
        // flight (their sinks write to `out`). The in-protocol throw is
        // flush-while-paused, so release every gate, drain, then rethrow.
        resume();
        s.finish();
        throw;
    }
    s.finish();
}

service::service_stats federated_server::stats() const {
    std::vector<api::server*> backends;
    backends.reserve(backends_.size());
    for (const std::unique_ptr<api::server>& b : backends_) backends.push_back(b.get());
    service::service_stats s = gather_merged_stats(backends);
    if (ingest_) {
        s.ingest_appends = static_cast<std::size_t>(ingest_->appends_total());
        s.ingest_dirty_buildings = static_cast<std::size_t>(ingest_->dirty_total());
    }
    if (watches_) s.watch_subscribers = watches_->live_count();
    return s;
}

void federated_server::pause() {
    for (const std::unique_ptr<api::server>& b : backends_) b->backing_service().pause();
}

void federated_server::resume() {
    for (const std::unique_ptr<api::server>& b : backends_) b->backing_service().resume();
}

std::optional<health_snapshot> federated_server::health() const {
    if (!health_) return std::nullopt;
    return health_->snapshot();
}

api::server& federated_server::backend(std::size_t k) {
    if (k >= backends_.size())
        throw std::out_of_range("federated_server: backend " + std::to_string(k) + " of " +
                                std::to_string(backends_.size()));
    return *backends_[k];
}

}  // namespace fisone::federation
