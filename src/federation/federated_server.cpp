#include "federated_server.hpp"

#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "api/codec.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace fisone::federation {

namespace {

/// Stable affinity identity of a shard request: a canonical hash of its
/// path, so resubmitting the same shard lands on the same backend.
std::uint64_t shard_affinity(const service::shard_ref& ref) noexcept {
    util::fnv1a64 h;
    h.str(ref.path);
    return h.digest();
}

/// Snapshot every backend and merge — the one implementation behind both
/// `get_stats` requests and `federated_server::stats()`.
service::service_stats gather_merged_stats(const std::vector<api::server*>& backends) {
    std::vector<service::service_stats> stats;
    std::vector<util::percentile_accumulator> latencies;
    stats.reserve(backends.size());
    latencies.reserve(backends.size());
    for (api::server* b : backends) {
        stats.push_back(b->stats());
        latencies.push_back(b->backing_service().latencies());
    }
    return merge_backend_stats(stats, latencies);
}

}  // namespace

service::service_stats merge_backend_stats(
    const std::vector<service::service_stats>& stats,
    const std::vector<util::percentile_accumulator>& latencies) {
    if (stats.size() != latencies.size())
        throw std::invalid_argument("merge_backend_stats: " + std::to_string(stats.size()) +
                                    " stats snapshots, " + std::to_string(latencies.size()) +
                                    " latency accumulators");
    service::service_stats merged;
    util::percentile_accumulator pooled;
    for (std::size_t k = 0; k < stats.size(); ++k) {
        const service::service_stats& s = stats[k];
        merged.jobs_submitted += s.jobs_submitted;
        merged.jobs_queued += s.jobs_queued;
        merged.jobs_running += s.jobs_running;
        merged.jobs_done += s.jobs_done;
        merged.jobs_cancelled += s.jobs_cancelled;
        merged.buildings_done += s.buildings_done;
        merged.buildings_ok += s.buildings_ok;
        merged.buildings_failed += s.buildings_failed;
        merged.buildings_cancelled += s.buildings_cancelled;
        merged.cache_hits += s.cache_hits;
        merged.cache_misses += s.cache_misses;
        merged.cache_evictions += s.cache_evictions;
        pooled.merge(latencies[k]);
    }
    // Percentiles come from the pooled observations, never from averaging
    // the per-backend percentiles (which answers a different question).
    merged.latency_p50 = pooled.percentile_or_zero(50.0);
    merged.latency_p90 = pooled.percentile_or_zero(90.0);
    merged.latency_p99 = pooled.percentile_or_zero(99.0);
    return merged;
}

/// Shared routing state: one cursor/counter namespace per server, shared by
/// every session (and outliving dropped handles).
struct federated_server::routing {
    routing(routing_policy policy, std::size_t num_backends) : rt(policy, num_backends) {}

    std::mutex m;  ///< guards `rt` and `next_index`
    router rt;
    /// Front-end corpus-index counter — the ONE assignment authority for
    /// auto-indexed buildings, mirroring `floor_service`'s own counter so
    /// a federated campaign assigns exactly the indices (and thus seeds) a
    /// single service would.
    std::size_t next_index = 0;

    std::size_t allocate_index() {
        const std::lock_guard<std::mutex> lock(m);
        return next_index++;
    }

    void advance_index(std::size_t end) {
        const std::lock_guard<std::mutex> lock(m);
        if (end > next_index) next_index = end;
    }

    std::size_t route(std::uint64_t affinity, const std::vector<backend_probe>& probes) {
        const std::lock_guard<std::mutex> lock(m);
        return rt.route(affinity, probes);
    }
};

// Named (not anonymous) so session::state — an external-linkage type — may
// hold it without GCC's -Wsubobject-linkage firing.
namespace detail {

/// The response channel of one federated connection. Kept separate from the
/// session state on purpose: backend sessions hold their sink (and thus
/// this) alive while jobs are in flight, and pointing those sinks at the
/// session state instead would cycle session → backend sessions → sink →
/// session and leak all three.
struct emitter {
    federated_server::frame_sink sink;
    std::mutex m;  ///< serialises sink calls across every backend's workers
    bool broken = false;

    /// Forward one already-encoded frame. A sink that throws marks the
    /// transport broken; later frames are dropped silently.
    void frame(std::string_view f) {
        const std::lock_guard<std::mutex> lock(m);
        if (broken) return;
        try {
            sink(f);
        } catch (...) {
            broken = true;
        }
    }

    /// Encode and forward one front-end-authored response.
    void respond(const api::response& resp) { frame(api::encode(resp)); }
};

}  // namespace detail

/// Per-connection state: one backend session per backend (a correlation-id
/// namespace spanning the fleet) plus the owner map `cancel_job` routes by.
struct federated_server::session::state {
    std::shared_ptr<detail::emitter> out;
    std::shared_ptr<federated_server::routing> routing;
    store_registry* registry = nullptr;
    std::vector<api::server*> backends;
    std::vector<api::server::session> backend_sessions;

    std::mutex owners_m;
    /// Which backend owns each submitted correlation id (the `cancel_job`
    /// namespace). Resubmitting under an id re-points it, exactly as
    /// `api::server` re-points its cancellable target. Cleared at `flush`
    /// (everything is finished then, so cancels answer false either way).
    std::unordered_map<std::uint64_t, std::size_t> owners;

    /// Probe every backend's load for the router.
    [[nodiscard]] std::vector<backend_probe> probe() const {
        std::vector<backend_probe> probes(backends.size());
        for (std::size_t k = 0; k < backends.size(); ++k) {
            const service::floor_service& svc = backends[k]->backing_service();
            probes[k] = backend_probe{svc.pending_jobs(), svc.paused()};
        }
        return probes;
    }

    std::size_t pick(std::uint64_t affinity) { return routing->route(affinity, probe()); }

    void remember(std::uint64_t correlation_id, std::size_t backend_index) {
        const std::lock_guard<std::mutex> lock(owners_m);
        owners[correlation_id] = backend_index;
    }
};

void federated_server::session::handle(const api::request& req) {
    const std::shared_ptr<state> st = state_;
    std::visit(
        [&](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, api::identify_building_request>) {
                obs::scoped_span span("federation.dispatch");
                // Affinity reads the building's content hash only when the
                // policy routes on it (the hash walks every sample).
                const bool affine =
                    st->routing->rt.policy() == routing_policy::content_hash_affinity;
                const std::size_t k = [&] {
                    obs::scoped_span route_span("federation.route");
                    return st->pick(affine ? data::content_hash(m.b) : 0);
                }();
                st->remember(m.correlation_id, k);
                if (m.has_index) {
                    st->routing->advance_index(static_cast<std::size_t>(m.corpus_index) + 1);
                    st->backend_sessions[k].handle(req);
                } else {
                    // The front-end is the one index-assignment authority:
                    // pin the next global index before the hop, so the
                    // backend (and its cache key) sees the same identity a
                    // single service would assign.
                    api::identify_building_request pinned = m;
                    pinned.has_index = true;
                    pinned.corpus_index = st->routing->allocate_index();
                    st->backend_sessions[k].handle(api::request{std::move(pinned)});
                }
            } else if constexpr (std::is_same_v<T, api::identify_shard_request>) {
                obs::scoped_span span("federation.dispatch");
                // Per-store confinement: only paths inside a mounted store
                // are servable — an empty registry serves nothing.
                if (!st->registry->shard_allowed(m.ref.path)) {
                    st->out->respond(api::error_response{
                        m.correlation_id, api::error_code::bad_request,
                        st->registry->num_stores() == 0
                            ? "no corpus stores mounted: " + m.ref.path
                            : "shard path outside every mounted store: " + m.ref.path});
                    return;
                }
                st->routing->advance_index(m.ref.first_index + m.ref.num_buildings);
                const std::size_t k = [&] {
                    obs::scoped_span route_span("federation.route");
                    return st->pick(shard_affinity(m.ref));
                }();
                st->remember(m.correlation_id, k);
                st->backend_sessions[k].handle(req);
            } else if constexpr (std::is_same_v<T, api::get_stats_request>) {
                st->out->respond(
                    api::stats_response{m.correlation_id, gather_merged_stats(st->backends)});
            } else if constexpr (std::is_same_v<T, api::cancel_job_request>) {
                std::size_t owner = st->backends.size();
                {
                    const std::lock_guard<std::mutex> lock(st->owners_m);
                    const auto it = st->owners.find(m.target_correlation_id);
                    if (it != st->owners.end()) owner = it->second;
                }
                if (owner < st->backends.size())
                    st->backend_sessions[owner].handle(req);  // backend answers
                else
                    st->out->respond(api::cancel_response{m.correlation_id,
                                                          m.target_correlation_id, false});
            } else {
                static_assert(std::is_same_v<T, api::flush_request>);
                // Fan-out barrier: every backend drains before the one
                // flush_response. (Flush on a paused fleet throws, exactly
                // as floor_service::wait_all refuses to deadlock.)
                for (api::server::session& bs : st->backend_sessions) bs.finish();
                {
                    const std::lock_guard<std::mutex> lock(st->owners_m);
                    st->owners.clear();
                }
                st->out->respond(api::flush_response{m.correlation_id});
            }
        },
        req);
}

bool federated_server::session::handle_frame(std::string_view frame) {
    const api::decode_result<api::request> decoded = api::decode_request(frame);
    if (decoded.eof) return true;
    if (decoded.error) {
        state_->out->respond(
            api::error_response{0, decoded.error->code, decoded.error->message});
        return !decoded.fatal;
    }
    handle(*decoded.value);
    return true;
}

void federated_server::session::finish() {
    for (api::server::session& bs : state_->backend_sessions) bs.finish();
}

bool federated_server::session::sink_broken() const {
    const std::lock_guard<std::mutex> lock(state_->out->m);
    return state_->out->broken;
}

federated_server::federated_server(federation_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.num_backends == 0)
        throw std::invalid_argument("federated_server: num_backends must be >= 1");
    routing_ = std::make_shared<routing>(cfg_.policy, cfg_.num_backends);
    for (const std::string& dir : cfg_.store_dirs) static_cast<void>(registry_.mount(dir));
    backends_.reserve(cfg_.num_backends);
    for (std::size_t k = 0; k < cfg_.num_backends; ++k) {
        api::server_config bc;
        bc.service = cfg_.service;
        bc.enable_cache = cfg_.enable_cache;
        bc.cache_capacity = cfg_.cache_capacity;
        // Backends trust their paths: the front-end already confined every
        // shard request to the mounted stores.
        bc.shard_root.clear();
        backends_.push_back(std::make_unique<api::server>(std::move(bc)));
    }
}

federated_server::~federated_server() = default;

federated_server::session federated_server::open(frame_sink sink) {
    auto out = std::make_shared<detail::emitter>();
    out->sink = std::move(sink);
    auto st = std::make_shared<session::state>();
    st->out = out;
    st->routing = routing_;
    st->registry = &registry_;
    st->backends.reserve(backends_.size());
    st->backend_sessions.reserve(backends_.size());
    for (const std::unique_ptr<api::server>& b : backends_) {
        st->backends.push_back(b.get());
        st->backend_sessions.push_back(
            b->open([out](std::string_view frame) { out->frame(frame); }));
    }
    return session(std::move(st));
}

void federated_server::serve(std::istream& in, std::ostream& out) {
    session s = open([&out](std::string_view frame) {
        out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        if (!out) throw std::ios_base::failure("federated_server: response stream went bad");
        out.flush();
    });
    try {
        for (;;) {
            const api::decode_result<api::request> r = api::read_request(in);
            if (r.eof) break;
            if (r.error) {
                s.state_->out->respond(
                    api::error_response{0, r.error->code, r.error->message});
                if (r.fatal) break;
                continue;
            }
            s.handle(*r.value);
            if (s.sink_broken()) break;
        }
    } catch (...) {
        // Same contract as api::server::serve: never unwind with jobs in
        // flight (their sinks write to `out`). The in-protocol throw is
        // flush-while-paused, so release every gate, drain, then rethrow.
        resume();
        s.finish();
        throw;
    }
    s.finish();
}

service::service_stats federated_server::stats() const {
    std::vector<api::server*> backends;
    backends.reserve(backends_.size());
    for (const std::unique_ptr<api::server>& b : backends_) backends.push_back(b.get());
    return gather_merged_stats(backends);
}

void federated_server::pause() {
    for (const std::unique_ptr<api::server>& b : backends_) b->backing_service().pause();
}

void federated_server::resume() {
    for (const std::unique_ptr<api::server>& b : backends_) b->backing_service().resume();
}

api::server& federated_server::backend(std::size_t k) {
    if (k >= backends_.size())
        throw std::out_of_range("federated_server: backend " + std::to_string(k) + " of " +
                                std::to_string(backends_.size()));
    return *backends_[k];
}

}  // namespace fisone::federation
