#include "watch_registry.hpp"

#include <utility>

namespace fisone::federation {

void watch_registry::subscribe(const std::string& name, std::uint64_t token,
                               std::uint64_t correlation_id, std::weak_ptr<void> alive,
                               push_sink sink) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<entry>& entries = subscriptions_[name];
    for (entry& e : entries) {
        if (e.token == token) {  // re-subscribe: re-point in place
            e.correlation_id = correlation_id;
            e.alive = std::move(alive);
            e.sink = std::move(sink);
            return;
        }
    }
    entries.push_back(entry{token, correlation_id, std::move(alive), std::move(sink)});
}

bool watch_registry::unsubscribe(const std::string& name, std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = subscriptions_.find(name);
    if (it == subscriptions_.end()) return false;
    std::vector<entry>& entries = it->second;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].token != token) continue;
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        if (entries.empty()) subscriptions_.erase(it);
        return true;
    }
    return false;
}

std::size_t watch_registry::publish(const std::string& name, std::uint64_t version,
                                    const runtime::building_report& report) {
    // Collect live sinks under the lock, deliver outside it: a sink takes
    // the emitter's own lock, and holding both invites ordering trouble.
    std::vector<std::pair<std::uint64_t, push_sink>> live;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = subscriptions_.find(name);
        if (it == subscriptions_.end()) return 0;
        std::vector<entry>& entries = it->second;
        for (std::size_t i = 0; i < entries.size();) {
            if (entries[i].alive.expired()) {
                entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
                continue;
            }
            live.emplace_back(entries[i].correlation_id, entries[i].sink);
            ++i;
        }
        if (entries.empty()) subscriptions_.erase(it);
    }
    for (const auto& [corr, sink] : live) {
        api::push_response push;
        push.correlation_id = corr;
        push.version = version;
        push.report = report;
        sink(api::response{std::move(push)});
    }
    return live.size();
}

std::size_t watch_registry::live_count() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
        std::vector<entry>& entries = it->second;
        for (std::size_t i = 0; i < entries.size();) {
            if (entries[i].alive.expired())
                entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
            else
                ++i;
        }
        count += entries.size();
        if (entries.empty())
            it = subscriptions_.erase(it);
        else
            ++it;
    }
    return count;
}

}  // namespace fisone::federation
