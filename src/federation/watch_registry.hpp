#pragma once

/// \file watch_registry.hpp
/// Server-side registry of standing `watch` subscriptions: building name →
/// the connections that asked to be told when that building is
/// re-identified. The federated front-end registers a subscription when a
/// session handles `api::watch_request`, and the ingest manager publishes
/// through it after every append-triggered re-run — each live subscriber
/// gets an `api::push_response` delivered over its own connection, carrying
/// the correlation id of its original watch request.
///
/// Lifetime is by expiry, not bookkeeping: an entry holds only a weak
/// anchor to the subscribing session's emitter, so a connection that closes
/// (tearing its session down) silently drops out — `publish` and
/// `live_count` prune expired entries as they go. Explicit `unsubscribe`
/// exists for clients that want a clean `watch_ack{active=false}` without
/// closing the connection.
///
/// Thread-safe: sessions subscribe from transport threads while the ingest
/// worker publishes. Sinks are invoked outside the registry lock (they take
/// the emitter's own lock to serialise with regular responses).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/message.hpp"
#include "runtime/batch_runner.hpp"

namespace fisone::federation {

class watch_registry {
public:
    /// Delivery function for one subscriber: hand a push frame to the
    /// session's emitter. Called outside the registry lock.
    using push_sink = std::function<void(const api::response&)>;

    /// Register (or re-point) \p token's subscription on \p name. One
    /// subscription per (name, token): re-subscribing replaces the
    /// correlation id and sink. \p alive is the expiry anchor — when it
    /// expires the entry is pruned on the next publish or count.
    void subscribe(const std::string& name, std::uint64_t token, std::uint64_t correlation_id,
                   std::weak_ptr<void> alive, push_sink sink);

    /// Drop \p token's subscription on \p name. Returns true when an entry
    /// was removed.
    bool unsubscribe(const std::string& name, std::uint64_t token);

    /// Fan a re-identification of \p name out to every live subscriber as
    /// `api::push_response{corr, version, report}`. Expired entries are
    /// pruned. Returns the number of pushes delivered.
    std::size_t publish(const std::string& name, std::uint64_t version,
                        const runtime::building_report& report);

    /// Live subscriptions across all names (prunes expired entries) — the
    /// `fisone_watch_subscribers` gauge.
    [[nodiscard]] std::size_t live_count();

private:
    struct entry {
        std::uint64_t token = 0;
        std::uint64_t correlation_id = 0;
        std::weak_ptr<void> alive;
        push_sink sink;
    };

    std::mutex mutex_;
    std::unordered_map<std::string, std::vector<entry>> subscriptions_;
};

}  // namespace fisone::federation
