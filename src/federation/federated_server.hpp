#pragma once

/// \file federated_server.hpp
/// One API front-end over a fleet: `federated_server` speaks exactly the
/// `api::server` contract — the same request/response messages, the same
/// framed codec, the same transports (`serve(in, out)` streams, `open(sink)`
/// loopback) — but dispatches onto M `api::server` backends (each a
/// `service::floor_service` plus its own warm `api::result_cache`) fed from
/// N corpus stores mounted in a `store_registry`.
///
/// Dispatch per message:
///  - `identify_building` / `identify_shard` — a `router` policy picks the
///    backend (round-robin, least-queue-depth over bounded-queue occupancy,
///    or content-hash affinity so repeat buildings hit the backend whose
///    result cache is warm); the request is forwarded to that backend's
///    session and its response frames are streamed back verbatim, so
///    correlation ids survive the hop and completion order interleaves
///    across backends exactly as jobs finish.
///  - `get_stats` — answered by the front-end: per-backend `service_stats`
///    are merged (counters summed; latency percentiles recomputed from the
///    merged `obs::latency_histogram`s — percentiles cannot be merged
///    from percentiles).
///  - `cancel_job` — routed to the backend that owns the target correlation
///    id; unknown targets answer `accepted = false` without touching any
///    backend.
///  - `flush` — fans out: every backend drains — and the ingest manager
///    goes idle (queued appends durable, dirty re-runs answered) — before
///    the one `flush_response` is emitted.
///  - `append_scans` — handed to the `ingest::ingest_manager` (created when
///    stores are mounted at construction): the append becomes durable in
///    the named store, the `append_response` fires, and the dirty buildings
///    are resubmitted through an internal session — so the re-runs ride the
///    same protected retry/failover/deadline path as client work and leave
///    the backend caches warm. A fleet without stores answers
///    `bad_request`.
///  - `watch` — registered in the server-wide `watch_registry`; every
///    append-triggered re-identification of the watched building is pushed
///    to the subscribed connection as a `push_update`.
///  - `identify_resident` — the request names a building already resident
///    in a mounted store; the front-end resolves the name to its global
///    corpus index through the server-wide resident directory (rebuilt
///    when a store's manifest versions forward), loads the building once
///    into an in-memory cache (span `federation.resident_load`), and
///    dispatches it as a pinned `identify_building` — so resident requests
///    ride the exact routing/protection path client-supplied buildings do,
///    with a few name bytes on the wire instead of the whole building.
///    Unknown names and store-less fleets answer `bad_request`.
///  - `subscribe_stats` — answered `bad_request`: telemetry windows live at
///    the TCP front door (`net::tcp_server`), the only layer that sees
///    sheds and admission.
/// `pause()` / `resume()` fan out to every backend's service.
///
/// Determinism: a building's results depend only on its *global* corpus
/// index (seeds derive from it) and its bits — never on which backend ran
/// it. The registry's mount order fixes global indices to the concatenated
/// corpus, auto-assigned building indices come from one front-end counter,
/// and every backend shares the campaign seed, so the input-order NDJSON
/// re-export of a federated campaign is byte-identical to a single
/// `floor_service` over the concatenated corpus at ANY
/// (stores × backends × threads) combination.
///
/// Shard-path confinement is per store: a path that does not resolve inside
/// a mounted store's directory is refused with `error_code::bad_request`
/// before any filesystem access (backends run with the front-end's
/// already-confined paths).
///
/// **Fault tolerance** (the protected dispatch path; engages when
/// `fault_tolerance.enabled`, a request timeout is set, or any backend has
/// an armed `fault_plan`): building requests are forwarded under minted
/// *attempt* correlation ids (top bit set — protected mode reserves
/// high-bit client correlation ids; `net::tcp_server` remaps client ids to
/// small internal ones, so TCP clients are never affected) and the
/// response channel intercepts backend frames. A success (or a genuine,
/// deterministic pipeline failure — rerunning those would only repeat
/// them) has its correlation id patched back to the client's in place, so
/// successful responses stay byte-identical to an unprotected run. A
/// *transient* failure (`service::is_transient_fault`), a submit-time
/// crash, or a deadline expiry instead feeds the backend's circuit breaker
/// and reschedules the attempt — exponential backoff, rerouted around
/// broken backends (failover), a hung attempt cancelled at its deadline —
/// until it succeeds or `max_attempts` is spent, when the client gets a
/// typed `backend_unavailable` / `deadline_exceeded` error. All deferred
/// work runs on the `fleet_health` watchdog thread, never inline from a
/// completion callback (which must not block or submit). Shard requests
/// fail over only on submit-time crashes (before any response frame
/// exists); mid-shard failures are forwarded as-is — a shard stream has
/// already emitted frames, so resubmission would duplicate them.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/server.hpp"
#include "fault_tolerance.hpp"
#include "obs/telemetry.hpp"
#include "router.hpp"
#include "store_registry.hpp"

namespace fisone::ingest {
class ingest_manager;
}  // namespace fisone::ingest

namespace fisone::federation {

class watch_registry;

/// Fleet configuration.
struct federation_config {
    /// Template for every backend's service (pipeline, campaign seed,
    /// workers-per-backend, backpressure). All backends share the seed —
    /// that, plus global corpus indices, is the determinism contract.
    service::service_config service{};
    std::size_t num_backends = 2;  ///< fleet size; must be >= 1
    routing_policy policy = routing_policy::content_hash_affinity;
    bool enable_cache = true;           ///< per-backend result caches
    std::size_t cache_capacity = 1024;  ///< LRU entries per backend
    /// Corpus-store directories mounted at construction (more may be
    /// mounted later via `registry().mount` — before serving starts).
    std::vector<std::string> store_dirs;
    /// Persistent result-cache directory, shared by the whole fleet; each
    /// backend spills its inserts there and warm-loads **only its affinity
    /// shard** (`content_hash % num_backends == k`) on restart. Empty —
    /// the default — keeps caches purely in-memory.
    std::string cache_dir;
    /// Retry / deadline / circuit-breaker tuning. The protected dispatch
    /// path engages when `enabled` is set, `request_timeout` is non-zero,
    /// or any entry of `fault_plans` is armed; otherwise dispatch is
    /// byte-for-byte the unprotected fast path.
    fault_tolerance_config fault_tolerance{};
    /// Per-backend fault injection (tests and chaos drills). Empty = every
    /// backend healthy; otherwise exactly one plan per backend.
    std::vector<service::fault_plan> fault_plans;
};

/// Merge per-backend stats snapshots into fleet-wide stats: every counter
/// sums; latency percentiles are recomputed from the merged histograms
/// (bucket-wise, so any merge order yields identical fleet percentiles).
/// \p stats and \p latencies run parallel (entry k = backend k).
/// \throws std::invalid_argument on a size mismatch.
[[nodiscard]] service::service_stats merge_backend_stats(
    const std::vector<service::service_stats>& stats,
    const std::vector<obs::latency_histogram>& latencies);

class federated_server {
public:
    using frame_sink = api::server::frame_sink;

    /// One client connection over the fleet: a correlation-id namespace
    /// spanning every backend, plus the response channel. Cheap handle;
    /// copies share state. As with `api::server::session`, jobs keep the
    /// state alive, but sink targets must outlive the jobs — `finish()`
    /// (or server teardown) before tearing them down.
    class session {
    public:
        /// Dispatch one decoded request.
        void handle(const api::request& req);

        /// Decode one frame, then dispatch. Returns false when the failure
        /// was fatal (framing integrity lost — the feeder should stop).
        bool handle_frame(std::string_view frame);

        /// Barrier: every backend drained, every response frame emitted.
        void finish();

        /// True once a sink invocation threw: later frames are dropped.
        [[nodiscard]] bool sink_broken() const;

    private:
        friend class federated_server;
        struct state;
        explicit session(std::shared_ptr<state> s) : state_(std::move(s)) {}
        std::shared_ptr<state> state_;
    };

    /// Spins up every backend (and mounts `store_dirs`) immediately.
    /// \throws std::invalid_argument on a zero `num_backends`, a backend
    ///         config `floor_service` rejects, or a store merge the
    ///         registry rejects.
    explicit federated_server(federation_config cfg);

    /// Waits for every in-flight job on every backend.
    ~federated_server();

    federated_server(const federated_server&) = delete;
    federated_server& operator=(const federated_server&) = delete;

    /// Open an in-process loopback session over the fleet.
    [[nodiscard]] session open(frame_sink sink);

    /// Serve one framed connection (same loop as `api::server::serve`):
    /// read request frames from \p in until EOF or a fatal framing error,
    /// stream response frames to \p out, drain before returning.
    void serve(std::istream& in, std::ostream& out);

    /// Fleet-wide stats — exactly what a `get_stats` request returns:
    /// counters summed over backends, percentiles over merged latencies.
    [[nodiscard]] service::service_stats stats() const;

    /// Hold every backend's queue at the gate / release them all.
    void pause();
    void resume();

    [[nodiscard]] store_registry& registry() noexcept { return registry_; }
    [[nodiscard]] const store_registry& registry() const noexcept { return registry_; }

    [[nodiscard]] std::size_t num_backends() const noexcept { return backends_.size(); }

    /// Backend \p k (its cache stats, backing service, direct sessions).
    /// \throws std::out_of_range on a bad index.
    [[nodiscard]] api::server& backend(std::size_t k);

    /// Fleet-health counters and per-backend breaker states; nullopt when
    /// the protected dispatch path is off.
    [[nodiscard]] std::optional<health_snapshot> health() const;

private:
    struct routing;
    struct resident_directory;

    static void dispatch_attempt(const std::shared_ptr<session::state>& st,
                                 std::uint64_t attempt_id);
    static void expire_attempt(const std::shared_ptr<session::state>& st,
                               std::uint64_t attempt_id);
    static void retry_or_fail(const std::shared_ptr<session::state>& st,
                              std::uint64_t attempt_id, std::size_t failed_backend,
                              api::error_code code, const std::string& message);

    federation_config cfg_;
    store_registry registry_;
    /// Shared with sessions so routing state outlives a dropped handle.
    std::shared_ptr<routing> routing_;
    /// Shared with sessions/emitters (they may outlive the server's own
    /// pointer during teardown); null when protection is off. Destroyed
    /// after `backends_`, so the watchdog outlives draining jobs.
    std::shared_ptr<fleet_health> health_;
    /// Name → global-corpus-index directory over the mounted stores, plus
    /// the in-memory cache of buildings `identify_resident` has served.
    /// Shared with every session; rebuilt lazily when a store's manifest
    /// version moves.
    std::shared_ptr<resident_directory> residents_;
    /// Standing `watch` subscriptions, shared with every session. Entries
    /// expire with their connection's emitter, so no teardown ordering
    /// matters beyond outliving the sessions (shared ownership handles it).
    std::shared_ptr<watch_registry> watches_;
    /// Backend teardown (which waits for in-flight jobs whose sinks may
    /// still consult routing state) must run while everything above is
    /// alive — only `ingest_`, which needs the fleet to answer its
    /// in-flight re-runs, is destroyed earlier.
    std::vector<std::unique_ptr<api::server>> backends_;
    /// The live-ingestion engine; null when no stores are mounted at
    /// construction. Declared after `backends_` so it is destroyed FIRST:
    /// its destructor drains queued appends and waits out every in-flight
    /// re-run while the fleet is still alive to answer them.
    std::shared_ptr<ingest::ingest_manager> ingest_;
};

}  // namespace fisone::federation
