#include "fault_tolerance.hpp"

#include <utility>

namespace fisone::federation {

fleet_health::fleet_health(fault_tolerance_config cfg, std::size_t num_backends)
    : cfg_(cfg), breakers_(num_backends) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

fleet_health::~fleet_health() {
    {
        const std::lock_guard<std::mutex> lock(timer_m_);
        stopping_ = true;
    }
    timer_cv_.notify_all();
    watchdog_.join();
}

std::size_t fleet_health::num_backends() const noexcept { return breakers_.size(); }

// --- circuit breakers -------------------------------------------------------

void fleet_health::on_success(std::size_t backend) {
    const std::lock_guard<std::mutex> lock(m_);
    if (backend >= breakers_.size()) return;
    breaker& b = breakers_[backend];
    b.consecutive_failures = 0;
    b.open_until = clock::time_point{};
    b.probe_inflight = false;
    b.tripped = false;
}

void fleet_health::on_failure(std::size_t backend) {
    const std::lock_guard<std::mutex> lock(m_);
    if (backend >= breakers_.size()) return;
    breaker& b = breakers_[backend];
    ++b.consecutive_failures;
    b.probe_inflight = false;
    if (b.consecutive_failures >= cfg_.breaker_failure_threshold) {
        b.tripped = true;
        b.open_until = clock::now() + cfg_.breaker_cooldown;  // (re)start the cooldown
    }
}

void fleet_health::note_routed(std::size_t backend) {
    const std::lock_guard<std::mutex> lock(m_);
    if (backend >= breakers_.size()) return;
    breaker& b = breakers_[backend];
    // Half-open: cooldown elapsed on a tripped breaker. This routing
    // decision *is* the probe; claim the slot so the mask blocks further
    // traffic until the probe answers.
    if (b.tripped && clock::now() >= b.open_until) b.probe_inflight = true;
}

std::vector<bool> fleet_health::unavailable_mask() const {
    const std::lock_guard<std::mutex> lock(m_);
    const clock::time_point now = clock::now();
    std::vector<bool> mask(breakers_.size(), false);
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
        const breaker& b = breakers_[i];
        if (!b.tripped) continue;
        mask[i] = now < b.open_until || b.probe_inflight;
    }
    return mask;
}

// --- counters ---------------------------------------------------------------

void fleet_health::count_retry() {
    const std::lock_guard<std::mutex> lock(m_);
    ++retries_;
}

void fleet_health::count_failover() {
    const std::lock_guard<std::mutex> lock(m_);
    ++failovers_;
}

void fleet_health::count_deadline_exceeded() {
    const std::lock_guard<std::mutex> lock(m_);
    ++deadline_exceeded_;
}

void fleet_health::count_backend_unavailable() {
    const std::lock_guard<std::mutex> lock(m_);
    ++backend_unavailable_;
}

health_snapshot fleet_health::snapshot() const {
    const std::lock_guard<std::mutex> lock(m_);
    health_snapshot s;
    s.retries = retries_;
    s.failovers = failovers_;
    s.deadline_exceeded = deadline_exceeded_;
    s.backend_unavailable = backend_unavailable_;
    s.backend_up.reserve(breakers_.size());
    for (const breaker& b : breakers_) s.backend_up.push_back(!b.tripped);
    return s;
}

// --- watchdog scheduler -----------------------------------------------------

void fleet_health::schedule(clock::time_point when, std::function<void()> fn) {
    {
        const std::lock_guard<std::mutex> lock(timer_m_);
        if (stopping_) return;
        timers_.push(timer{when, next_seq_++, std::move(fn)});
    }
    timer_cv_.notify_all();
}

void fleet_health::schedule_after(std::chrono::milliseconds delay, std::function<void()> fn) {
    schedule(clock::now() + delay, std::move(fn));
}

std::chrono::milliseconds fleet_health::backoff(std::size_t tries) const {
    std::chrono::milliseconds d = cfg_.backoff_base;
    for (std::size_t t = 1; t < tries && d < cfg_.backoff_cap; ++t) d *= 2;
    return d < cfg_.backoff_cap ? d : cfg_.backoff_cap;
}

void fleet_health::watchdog_loop() {
    std::unique_lock<std::mutex> lock(timer_m_);
    while (true) {
        if (stopping_) return;
        if (timers_.empty()) {
            timer_cv_.wait(lock, [&] { return stopping_ || !timers_.empty(); });
            continue;
        }
        const clock::time_point due = timers_.top().when;
        if (clock::now() < due) {
            // A new earlier timer or stop request interrupts the sleep.
            timer_cv_.wait_until(lock, due);
            continue;
        }
        std::function<void()> fn = std::move(const_cast<timer&>(timers_.top()).fn);
        timers_.pop();
        lock.unlock();  // actions run lock-free: they may reschedule
        fn();
        lock.lock();
    }
}

}  // namespace fisone::federation
