#include "router.hpp"

#include <stdexcept>
#include <string>

namespace fisone::federation {

const char* routing_policy_name(routing_policy p) noexcept {
    switch (p) {
        case routing_policy::round_robin: return "round_robin";
        case routing_policy::least_queue_depth: return "least_queue_depth";
        case routing_policy::content_hash_affinity: return "content_hash_affinity";
    }
    return "unknown";
}

router::router(routing_policy policy, std::size_t num_backends)
    : policy_(policy), num_backends_(num_backends) {
    if (num_backends == 0) throw std::invalid_argument("router: num_backends must be >= 1");
}

std::size_t router::skip_paused(std::size_t start, const std::vector<backend_probe>& probes) {
    const std::size_t n = probes.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t k = (start + step) % n;
        if (!probes[k].paused && !probes[k].broken) return k;
    }
    return start;  // nothing available: park at the natural choice
}

std::size_t router::route(std::uint64_t affinity_hash,
                          const std::vector<backend_probe>& probes) {
    if (probes.size() != num_backends_)
        throw std::invalid_argument("router: " + std::to_string(probes.size()) +
                                    " probes for " + std::to_string(num_backends_) +
                                    " backends");
    switch (policy_) {
        case routing_policy::round_robin: {
            const std::size_t k = skip_paused(next_ % num_backends_, probes);
            next_ = (k + 1) % num_backends_;
            return k;
        }
        case routing_policy::least_queue_depth: {
            // Fewest submitted-but-unfinished jobs among available backends;
            // lowest index wins ties so equal fleets route deterministically.
            std::size_t best = num_backends_;
            for (std::size_t k = 0; k < num_backends_; ++k) {
                if (probes[k].paused || probes[k].broken) continue;
                if (best == num_backends_ || probes[k].queue_depth < probes[best].queue_depth)
                    best = k;
            }
            return best != num_backends_ ? best : skip_paused(0, probes);
        }
        case routing_policy::content_hash_affinity:
            return skip_paused(static_cast<std::size_t>(affinity_hash % num_backends_), probes);
    }
    throw std::logic_error("router: unknown policy");
}

}  // namespace fisone::federation
