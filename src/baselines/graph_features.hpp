#pragma once

/// \file graph_features.hpp
/// Shared machinery for the deep-clustering baselines (SDCN, DAEGC). Both
/// consume (a) a node feature matrix and (b) a normalised adjacency of the
/// bipartite RF graph, per the paper's protocol of feeding the baselines
/// the same bipartite graph FIS-ONE uses (§V-A).
///
/// Features (dimension = num_macs):
///  - a sample node's features are its RSS readings mapped to [0, 1]
///    ((RSS + 120)/120, missing = 0) — Fig. 3's matrix row;
///  - a MAC node's features are the one-hot indicator of itself.
///
/// The adjacency is the symmetrically normalised Â = D^{−1/2}(A+I)D^{−1/2}
/// (GCN convention), kept sparse as per-row (index, weight) lists so the
/// autodiff `weighted_sum_rows` op can apply it in O(nnz · dim).

#include <cstddef>
#include <utility>
#include <vector>

#include "data/rf_sample.hpp"
#include "graph/bipartite_graph.hpp"
#include "linalg/matrix.hpp"

namespace fisone::baselines {

/// Sparse row-major operator usable with tape::weighted_sum_rows.
using sparse_rows = std::vector<std::vector<std::pair<std::size_t, double>>>;

/// Node features for the full bipartite node set (num_nodes × num_macs).
[[nodiscard]] linalg::matrix node_features(const data::building& b,
                                           const graph::bipartite_graph& g);

/// Symmetrically normalised adjacency with self-loops over all nodes.
/// Edge strength is the binary adjacency (GCN convention); the RSS weights
/// affect only FIS-ONE's own model, keeping the baselines faithful to
/// their published formulations.
[[nodiscard]] sparse_rows normalized_adjacency(const graph::bipartite_graph& g);

/// Student-t soft assignment Q between embedding rows and centroids, and
/// the sharpened target distribution P — the self-supervision pair shared
/// by SDCN and DAEGC. Provided here in plain (non-autodiff) form for
/// target computation; the differentiable Q is built on the tape.
[[nodiscard]] linalg::matrix student_t_assignment(const linalg::matrix& z,
                                                  const linalg::matrix& centroids);
[[nodiscard]] linalg::matrix target_distribution(const linalg::matrix& q);

/// Extract per-sample labels from a full-node assignment produced by a
/// baseline (drops the MAC-node entries).
[[nodiscard]] std::vector<int> sample_labels(const graph::bipartite_graph& g,
                                             const std::vector<int>& node_labels);

}  // namespace fisone::baselines
