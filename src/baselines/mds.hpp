#pragma once

/// \file mds.hpp
/// MDS baseline (paper §V-A): represent each scan as the dense vector over
/// the superset of MACs with missing entries filled at −120 dBm (Fig. 3's
/// matrix modelling), embed with classical multidimensional scaling under
/// the 1 − cosine-similarity distance, then cluster hierarchically. The
/// missing-value pathology of the matrix representation is exactly what
/// the paper blames for this baseline's weakness.

#include <cstddef>
#include <vector>

#include "data/rf_sample.hpp"
#include "linalg/matrix.hpp"

namespace fisone::baselines {

/// Configuration for the MDS baseline.
struct mds_config {
    std::size_t embedding_dim = 32;
    double fill_dbm = -120.0;  ///< value for missing matrix entries
};

/// Embed scans with classical MDS. Returns (num_samples × embedding_dim).
[[nodiscard]] linalg::matrix mds_embed(const data::building& b, const mds_config& cfg = {});

/// Full baseline: MDS embedding + UPGMA into `b.num_floors` clusters.
[[nodiscard]] std::vector<int> mds_cluster(const data::building& b, const mds_config& cfg = {});

}  // namespace fisone::baselines
