#include "metis_partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "graph_features.hpp"

namespace fisone::baselines {

namespace {

/// Working graph representation across coarsening levels.
struct level_graph {
    // adjacency[v] = (neighbor, edge weight); symmetric, no self-loops.
    std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
    std::vector<double> vertex_weight;  // coarse vertices carry merged mass

    [[nodiscard]] std::size_t size() const noexcept { return adjacency.size(); }
};

/// Heavy-edge matching: visit vertices in random order, match each
/// unmatched vertex with its heaviest unmatched neighbour.
/// Returns coarse-vertex id per fine vertex and the number of coarse nodes.
std::pair<std::vector<std::uint32_t>, std::size_t> heavy_edge_matching(const level_graph& g,
                                                                       util::rng& gen) {
    const std::size_t n = g.size();
    std::vector<std::uint32_t> coarse_id(n, std::numeric_limits<std::uint32_t>::max());
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    gen.shuffle(order);

    std::uint32_t next = 0;
    for (const std::size_t v : order) {
        if (coarse_id[v] != std::numeric_limits<std::uint32_t>::max()) continue;
        std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
        double best_w = -1.0;
        for (const auto& [u, w] : g.adjacency[v]) {
            if (coarse_id[u] != std::numeric_limits<std::uint32_t>::max()) continue;
            if (w > best_w) {
                best_w = w;
                best = u;
            }
        }
        coarse_id[v] = next;
        if (best != std::numeric_limits<std::uint32_t>::max()) coarse_id[best] = next;
        ++next;
    }
    return {std::move(coarse_id), next};
}

/// Build the coarse graph induced by a matching.
level_graph coarsen(const level_graph& g, const std::vector<std::uint32_t>& coarse_id,
                    std::size_t coarse_n) {
    level_graph cg;
    cg.adjacency.resize(coarse_n);
    cg.vertex_weight.assign(coarse_n, 0.0);
    for (std::size_t v = 0; v < g.size(); ++v) cg.vertex_weight[coarse_id[v]] += g.vertex_weight[v];

    // Accumulate parallel edges with a scratch map per vertex.
    std::vector<double> scratch(coarse_n, 0.0);
    std::vector<std::uint32_t> touched;
    std::vector<std::vector<std::uint32_t>> members(coarse_n);
    for (std::uint32_t v = 0; v < g.size(); ++v)
        members[coarse_id[v]].push_back(v);

    for (std::uint32_t cv = 0; cv < coarse_n; ++cv) {
        touched.clear();
        for (const std::uint32_t v : members[cv]) {
            for (const auto& [u, w] : g.adjacency[v]) {
                const std::uint32_t cu = coarse_id[u];
                if (cu == cv) continue;  // internal edge disappears
                if (scratch[cu] == 0.0) touched.push_back(cu);
                scratch[cu] += w;
            }
        }
        auto& row = cg.adjacency[cv];
        row.reserve(touched.size());
        for (const std::uint32_t cu : touched) {
            row.emplace_back(cu, scratch[cu]);
            scratch[cu] = 0.0;
        }
    }
    return cg;
}

/// Greedy region growing: k seeds, repeatedly attach the unassigned vertex
/// with the strongest connection to a non-full part.
std::vector<int> initial_partition(const level_graph& g, std::size_t k, double max_part,
                                   util::rng& gen) {
    const std::size_t n = g.size();
    std::vector<int> part(n, -1);
    std::vector<double> part_load(k, 0.0);

    // Seeds: random distinct vertices.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    gen.shuffle(order);
    for (std::size_t c = 0; c < k && c < n; ++c) {
        part[order[c]] = static_cast<int>(c);
        part_load[c] += g.vertex_weight[order[c]];
    }

    // Grow: each round, assign every unassigned vertex to the part with the
    // heaviest adjacent connection (ties/no-connection: lightest part).
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t v = 0; v < n; ++v) {
            if (part[v] != -1) continue;
            std::vector<double> gain(k, 0.0);
            bool any = false;
            for (const auto& [u, w] : g.adjacency[v]) {
                if (part[u] != -1) {
                    gain[static_cast<std::size_t>(part[u])] += w;
                    any = true;
                }
            }
            if (!any) continue;
            std::size_t best = 0;
            double best_gain = -1.0;
            for (std::size_t c = 0; c < k; ++c) {
                if (part_load[c] + g.vertex_weight[v] > max_part) continue;
                if (gain[c] > best_gain) {
                    best_gain = gain[c];
                    best = c;
                }
            }
            if (best_gain < 0.0) {
                // Everything adjacent is full; drop into the lightest part.
                best = static_cast<std::size_t>(
                    std::min_element(part_load.begin(), part_load.end()) - part_load.begin());
            }
            part[v] = static_cast<int>(best);
            part_load[best] += g.vertex_weight[v];
            progress = true;
        }
        // Isolated leftovers: round-robin into the lightest part.
        if (!progress) {
            for (std::size_t v = 0; v < n; ++v) {
                if (part[v] != -1) continue;
                const std::size_t best = static_cast<std::size_t>(
                    std::min_element(part_load.begin(), part_load.end()) - part_load.begin());
                part[v] = static_cast<int>(best);
                part_load[best] += g.vertex_weight[v];
                progress = true;
            }
            if (progress) break;
        }
    }
    return part;
}

/// Boundary Kernighan–Lin refinement: greedy best-gain single-vertex moves
/// subject to the balance constraint, until a pass makes no improvement.
void refine(const level_graph& g, std::vector<int>& part, std::size_t k, double max_part,
            std::size_t max_passes) {
    std::vector<double> part_load(k, 0.0);
    for (std::size_t v = 0; v < g.size(); ++v)
        part_load[static_cast<std::size_t>(part[v])] += g.vertex_weight[v];

    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        bool moved = false;
        for (std::size_t v = 0; v < g.size(); ++v) {
            const auto cur = static_cast<std::size_t>(part[v]);
            // Connection strength to each part.
            std::vector<double> link(k, 0.0);
            for (const auto& [u, w] : g.adjacency[v])
                link[static_cast<std::size_t>(part[u])] += w;
            std::size_t best = cur;
            double best_gain = 0.0;
            for (std::size_t c = 0; c < k; ++c) {
                if (c == cur) continue;
                if (part_load[c] + g.vertex_weight[v] > max_part) continue;
                // Keep the source part non-empty.
                if (part_load[cur] - g.vertex_weight[v] <= 0.0) continue;
                const double gain = link[c] - link[cur];
                if (gain > best_gain + 1e-12) {
                    best_gain = gain;
                    best = c;
                }
            }
            if (best != cur) {
                part_load[cur] -= g.vertex_weight[v];
                part_load[best] += g.vertex_weight[v];
                part[v] = static_cast<int>(best);
                moved = true;
            }
        }
        if (!moved) break;
    }
}

}  // namespace

std::vector<int> metis_partition(
    const std::vector<std::vector<std::pair<std::uint32_t, double>>>& adjacency, std::size_t k,
    const metis_config& cfg) {
    const std::size_t n = adjacency.size();
    if (k == 0) throw std::invalid_argument("metis_partition: k must be > 0");
    if (n == 0) return {};
    if (k >= n) {
        std::vector<int> trivial(n);
        for (std::size_t v = 0; v < n; ++v) trivial[v] = static_cast<int>(v % k);
        return trivial;
    }

    util::rng gen(cfg.seed);

    // --- phase 1: coarsen ---
    std::vector<level_graph> levels;
    std::vector<std::vector<std::uint32_t>> mappings;  // fine → coarse per level
    level_graph g0;
    g0.adjacency = adjacency;
    g0.vertex_weight.assign(n, 1.0);
    levels.push_back(std::move(g0));

    while (levels.back().size() > cfg.coarsen_until) {
        auto [coarse_id, coarse_n] = heavy_edge_matching(levels.back(), gen);
        if (coarse_n >= levels.back().size() * 95 / 100) break;  // matching stalled
        level_graph next = coarsen(levels.back(), coarse_id, coarse_n);
        mappings.push_back(std::move(coarse_id));
        levels.push_back(std::move(next));
    }

    // --- phase 2: initial partition on the coarsest graph ---
    double total_weight = 0.0;
    for (const double w : levels.back().vertex_weight) total_weight += w;
    const double max_part =
        total_weight / static_cast<double>(k) * (1.0 + cfg.balance_tolerance);
    std::vector<int> part = initial_partition(levels.back(), k, max_part, gen);
    refine(levels.back(), part, k, max_part, cfg.refine_passes);

    // --- phase 3: uncoarsen + refine each level ---
    for (std::size_t level = levels.size() - 1; level-- > 0;) {
        const auto& mapping = mappings[level];
        std::vector<int> fine_part(levels[level].size());
        for (std::size_t v = 0; v < fine_part.size(); ++v)
            fine_part[v] = part[mapping[v]];
        part = std::move(fine_part);
        refine(levels[level], part, k, max_part, cfg.refine_passes);
    }
    return part;
}

std::vector<int> metis_cluster(const data::building& b, const metis_config& cfg) {
    const graph::bipartite_graph g = graph::bipartite_graph::from_building(b);
    std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency(g.num_nodes());
    for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
        adjacency[v].reserve(g.degree(v));
        for (const graph::edge& e : g.neighbors(v)) adjacency[v].emplace_back(e.neighbor, e.weight);
    }
    const std::vector<int> parts = metis_partition(adjacency, b.num_floors, cfg);
    return sample_labels(g, parts);
}

}  // namespace fisone::baselines
