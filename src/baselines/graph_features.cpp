#include "graph_features.hpp"

#include <cmath>
#include <stdexcept>

namespace fisone::baselines {

linalg::matrix node_features(const data::building& b, const graph::bipartite_graph& g) {
    const std::size_t m = g.num_macs();
    linalg::matrix x(g.num_nodes(), m, 0.0);

    // MAC nodes: one-hot of their own id.
    for (std::size_t k = 0; k < m; ++k) x(k, k) = 1.0;

    // Sample nodes: RSS readings scaled to (0, 1].
    for (std::size_t i = 0; i < b.samples.size(); ++i) {
        const std::size_t row = g.sample_node(i);
        for (const data::rf_observation& o : b.samples[i].observations) {
            const double scaled = (o.rss_dbm + 120.0) / 120.0;
            if (scaled > x(row, o.mac_id)) x(row, o.mac_id) = scaled;
        }
    }
    return x;
}

sparse_rows normalized_adjacency(const graph::bipartite_graph& g) {
    const std::size_t n = g.num_nodes();
    std::vector<double> degree(n, 1.0);  // +1 for the self-loop
    for (std::uint32_t v = 0; v < n; ++v) degree[v] += static_cast<double>(g.degree(v));

    sparse_rows rows(n);
    for (std::uint32_t v = 0; v < n; ++v) {
        auto& row = rows[v];
        row.reserve(g.degree(v) + 1);
        const double dv = std::sqrt(degree[v]);
        row.emplace_back(v, 1.0 / (dv * dv));  // self-loop
        for (const graph::edge& e : g.neighbors(v))
            row.emplace_back(e.neighbor, 1.0 / (dv * std::sqrt(degree[e.neighbor])));
    }
    return rows;
}

linalg::matrix student_t_assignment(const linalg::matrix& z, const linalg::matrix& centroids) {
    if (z.cols() != centroids.cols())
        throw std::invalid_argument("student_t_assignment: dimension mismatch");
    const std::size_t n = z.rows();
    const std::size_t k = centroids.rows();
    linalg::matrix q(n, k);
    for (std::size_t i = 0; i < n; ++i) {
        double total = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            const double sq = linalg::squared_distance(z.row(i), centroids.row(c));
            q(i, c) = 1.0 / (1.0 + sq);
            total += q(i, c);
        }
        for (std::size_t c = 0; c < k; ++c) q(i, c) /= total;
    }
    return q;
}

linalg::matrix target_distribution(const linalg::matrix& q) {
    const std::size_t n = q.rows();
    const std::size_t k = q.cols();
    std::vector<double> freq(k, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < k; ++c) freq[c] += q(i, c);

    linalg::matrix p(n, k);
    for (std::size_t i = 0; i < n; ++i) {
        double total = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            p(i, c) = q(i, c) * q(i, c) / (freq[c] > 0.0 ? freq[c] : 1.0);
            total += p(i, c);
        }
        for (std::size_t c = 0; c < k; ++c) p(i, c) /= total > 0.0 ? total : 1.0;
    }
    return p;
}

std::vector<int> sample_labels(const graph::bipartite_graph& g,
                               const std::vector<int>& node_labels) {
    if (node_labels.size() != g.num_nodes())
        throw std::invalid_argument("sample_labels: node_labels size mismatch");
    std::vector<int> out(g.num_samples());
    for (std::size_t i = 0; i < g.num_samples(); ++i) out[i] = node_labels[g.sample_node(i)];
    return out;
}

}  // namespace fisone::baselines
