#include "mds.hpp"

#include "cluster/hierarchical.hpp"
#include "data/dataset_io.hpp"
#include "linalg/eigen.hpp"

namespace fisone::baselines {

linalg::matrix mds_embed(const data::building& b, const mds_config& cfg) {
    const linalg::matrix rss = data::to_rss_matrix(b, cfg.fill_dbm);
    const std::size_t n = rss.rows();

    // Pairwise 1 − cosine distances on the filled matrix.
    linalg::matrix dist(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = 1.0 - linalg::cosine_similarity(rss.row(i), rss.row(j));
            dist(i, j) = d;
            dist(j, i) = d;
        }
    return linalg::classical_mds(dist, cfg.embedding_dim);
}

std::vector<int> mds_cluster(const data::building& b, const mds_config& cfg) {
    return cluster::upgma_cluster(mds_embed(b, cfg), b.num_floors);
}

}  // namespace fisone::baselines
