#include "daegc.hpp"

#include <cmath>
#include <stdexcept>

#include "autodiff/optimizer.hpp"
#include "autodiff/tape.hpp"
#include "cluster/kmeans.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph_features.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace fisone::baselines {

namespace {

using autodiff::tape;
using autodiff::var;
using linalg::matrix;

matrix glorot(std::size_t rows, std::size_t cols, util::rng& gen) {
    matrix w(rows, cols);
    const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
    for (double& x : w.flat()) x = gen.uniform(-bound, bound);
    return w;
}

/// RSS-derived attention operator: row-normalised f(RSS) transition with a
/// self-loop of weight equal to the node's mean incident weight.
sparse_rows attention_adjacency(const graph::bipartite_graph& g) {
    sparse_rows rows(g.num_nodes());
    for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
        const auto nbrs = g.neighbors(v);
        double total = 0.0;
        for (const graph::edge& e : nbrs) total += e.weight;
        const double self_w = nbrs.empty() ? 1.0 : total / static_cast<double>(nbrs.size());
        const double denom = total + self_w;
        auto& row = rows[v];
        row.reserve(nbrs.size() + 1);
        row.emplace_back(v, self_w / denom);
        for (const graph::edge& e : nbrs) row.emplace_back(e.neighbor, e.weight / denom);
    }
    return rows;
}

struct daegc_params {
    matrix w1, w2;      // attention-encoder layers
    matrix centroids;   // trainable cluster centres
};

/// Encoder forward: z = Â_att · relu(Â_att · X · W1) · W2 (linear output).
var encode(tape& t, const var x, const sparse_rows& att, const var w1, const var w2) {
    const var h1 = t.relu(t.matmul(t.weighted_sum_rows(x, att), w1));
    return t.matmul(t.weighted_sum_rows(h1, att), w2);
}

}  // namespace

std::vector<int> daegc_cluster(const data::building& b, const daegc_config& cfg) {
    if (cfg.embedding_dim == 0 || cfg.hidden_dim == 0)
        throw std::invalid_argument("daegc_cluster: zero dimension");

    const graph::bipartite_graph g = graph::bipartite_graph::from_building(b);
    const matrix x_data = node_features(b, g);
    const sparse_rows att = attention_adjacency(g);
    const std::size_t m = x_data.cols();
    const std::size_t n = g.num_nodes();
    const std::size_t k = b.num_floors;
    util::rng gen(cfg.seed);

    // Flat edge list for reconstruction sampling.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t v = 0; v < n; ++v)
        for (const graph::edge& e : g.neighbors(v))
            if (v < e.neighbor) edges.emplace_back(v, e.neighbor);
    if (edges.empty()) throw std::invalid_argument("daegc_cluster: graph has no edges");

    daegc_params p;
    p.w1 = glorot(m, cfg.hidden_dim, gen);
    p.w2 = glorot(cfg.hidden_dim, cfg.embedding_dim, gen);
    p.centroids = matrix(k, cfg.embedding_dim, 0.0);

    autodiff::adam opt(autodiff::adam::config{cfg.learning_rate, 0.9, 0.999, 1e-8, 5.0});

    // Reconstruction loss over sampled edges + equally many negatives.
    auto reconstruction_loss = [&](tape& t, const var z) {
        const std::size_t batch = std::min(cfg.edge_batch, edges.size());
        std::vector<std::size_t> pos_a(batch), pos_b(batch), neg_a(batch), neg_b(batch);
        for (std::size_t i = 0; i < batch; ++i) {
            const auto& [u, v] = edges[gen.uniform_index(edges.size())];
            pos_a[i] = u;
            pos_b[i] = v;
            neg_a[i] = gen.uniform_index(n);
            neg_b[i] = gen.uniform_index(n);
        }
        const var pos =
            t.row_dot(t.gather_rows(z, std::move(pos_a)), t.gather_rows(z, std::move(pos_b)));
        const var neg =
            t.row_dot(t.gather_rows(z, std::move(neg_a)), t.gather_rows(z, std::move(neg_b)));
        const var loss_pos = t.negate(t.mean_all(t.log_sigmoid(pos)));
        const var loss_neg = t.negate(t.mean_all(t.log_sigmoid(t.negate(neg))));
        return t.add(loss_pos, loss_neg);
    };

    // --- phase 1: reconstruction-only pretraining ---
    for (std::size_t epoch = 0; epoch < cfg.pretrain_epochs; ++epoch) {
        tape t;
        const var x = t.constant(x_data);
        const var w1 = t.parameter(p.w1);
        const var w2 = t.parameter(p.w2);
        const var z = encode(t, x, att, w1, w2);
        const var loss = reconstruction_loss(t, z);
        t.backward(loss);
        opt.step(p.w1, t.grad(w1));
        opt.step(p.w2, t.grad(w2));
        opt.end_step();
    }

    // --- centroid init: k-means on the pretrained embeddings ---
    {
        tape t;
        const var x = t.constant(x_data);
        const var z = encode(t, x, att, t.constant(p.w1), t.constant(p.w2));
        p.centroids = cluster::kmeans(t.value(z), k, gen).centroids;
    }

    // --- phase 2: joint self-training ---
    matrix p_target;
    matrix last_q;
    for (std::size_t epoch = 0; epoch < cfg.train_epochs; ++epoch) {
        if (epoch % cfg.target_refresh == 0) {
            tape t;
            const var x = t.constant(x_data);
            const var z = encode(t, x, att, t.constant(p.w1), t.constant(p.w2));
            p_target = target_distribution(student_t_assignment(t.value(z), p.centroids));
        }
        tape t;
        const var x = t.constant(x_data);
        const var w1 = t.parameter(p.w1);
        const var w2 = t.parameter(p.w2);
        const var mu = t.parameter(p.centroids);
        const var z = encode(t, x, att, w1, w2);

        const var sq = t.pairwise_sqdist(z, mu);
        const var q = t.row_normalize(t.reciprocal(t.add_scalar(sq, 1.0)));
        const var p_const = t.constant(p_target);
        const var ce = t.sum_all(t.hadamard(p_const, t.log_op(t.add_scalar(q, 1e-12))));
        const var kl = t.scale(ce, -1.0 / static_cast<double>(n));

        const var loss = t.add(reconstruction_loss(t, z), t.scale(kl, cfg.cluster_weight));
        t.backward(loss);
        opt.step(p.w1, t.grad(w1));
        opt.step(p.w2, t.grad(w2));
        opt.step(p.centroids, t.grad(mu));
        opt.end_step();
        last_q = t.value(q);
    }

    if (last_q.empty()) {
        tape t;
        const var x = t.constant(x_data);
        const var z = encode(t, x, att, t.constant(p.w1), t.constant(p.w2));
        const std::vector<int> km = cluster::kmeans(t.value(z), k, gen).assignment;
        return sample_labels(g, km);
    }

    // --- labels: argmax of Q on sample nodes ---
    std::vector<int> node_labels(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        int best = 0;
        for (std::size_t c = 1; c < k; ++c)
            if (last_q(i, c) > last_q(i, static_cast<std::size_t>(best)))
                best = static_cast<int>(c);
        node_labels[i] = best;
    }
    return sample_labels(g, node_labels);
}

}  // namespace fisone::baselines
