#pragma once

/// \file sdcn.hpp
/// Structural Deep Clustering Network (Bo et al., WWW 2020) — the paper's
/// strongest deep baseline. A scaled-down but structurally faithful
/// reimplementation on the in-repo autodiff engine:
///  - an MLP autoencoder over node features (reconstruction loss);
///  - a GCN module that interpolates each layer's input with the
///    corresponding autoencoder activation ((1−ε)H + ε·AE, ε = 0.5) and
///    applies the normalised adjacency;
///  - dual self-supervision: Student-t soft assignments Q (from the AE
///    latent vs trainable centroids, k-means-initialised) sharpened into a
///    target P, with KL(P‖Q) and KL(P‖Z) losses, Z being the GCN's softmax
///    output.
/// Final labels are argmax of Z. The known failure mode the paper leans on
/// (centroid-based self-supervision vs multi-modal per-floor RF signal
/// distributions) is preserved.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/rf_sample.hpp"

namespace fisone::baselines {

/// SDCN hyperparameters (defaults tuned for the bench scale).
struct sdcn_config {
    std::size_t hidden_dim = 128;
    std::size_t embedding_dim = 32;   ///< AE latent / GCN penultimate width
    std::size_t pretrain_epochs = 25; ///< AE-only warmup
    std::size_t train_epochs = 40;    ///< joint training
    double learning_rate = 2e-3;
    double kl_q_weight = 0.1;         ///< α: KL(P‖Q)
    double kl_z_weight = 0.05;        ///< β: KL(P‖Z)
    std::size_t target_refresh = 5;   ///< epochs between target-P updates
    std::uint64_t seed = 17;
};

/// Run SDCN on the building's bipartite graph; returns per-sample cluster
/// labels in [0, b.num_floors).
[[nodiscard]] std::vector<int> sdcn_cluster(const data::building& b, const sdcn_config& cfg = {});

}  // namespace fisone::baselines
