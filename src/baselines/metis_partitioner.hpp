#pragma once

/// \file metis_partitioner.hpp
/// METIS-style multilevel k-way graph partitioner (Karypis–Kumar scheme),
/// the paper's third baseline. Three phases:
///  1. *Coarsening*: heavy-edge matching collapses matched vertex pairs
///     until the graph is small;
///  2. *Initial partitioning*: greedy region growing from k seeds on the
///     coarsest graph, balanced by vertex count;
///  3. *Uncoarsening*: the partition is projected back level by level and
///     refined with boundary Kernighan–Lin moves (best-gain vertex moves
///     under a balance constraint).
/// As the paper observes, cut-based partitioning struggles on RF graphs
/// because spillover blurs the boundaries between floor clusters.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/rf_sample.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/rng.hpp"

namespace fisone::baselines {

/// Tuning knobs of the multilevel scheme.
struct metis_config {
    std::size_t coarsen_until = 120;    ///< stop coarsening below ~this many vertices
    double balance_tolerance = 0.25;    ///< parts may exceed ideal size by this fraction
    std::size_t refine_passes = 8;      ///< max KL passes per level
    std::uint64_t seed = 99;
};

/// Partition an arbitrary weighted undirected graph (CSR-ish input) into k
/// parts. Exposed for direct testing.
/// \param adjacency per-vertex list of (neighbor, weight); must be symmetric.
/// \returns per-vertex part id in [0, k).
[[nodiscard]] std::vector<int> metis_partition(
    const std::vector<std::vector<std::pair<std::uint32_t, double>>>& adjacency, std::size_t k,
    const metis_config& cfg = {});

/// The baseline as the paper uses it: partition the bipartite RF graph
/// into `b.num_floors` parts and return the sample-node part labels.
[[nodiscard]] std::vector<int> metis_cluster(const data::building& b,
                                             const metis_config& cfg = {});

}  // namespace fisone::baselines
