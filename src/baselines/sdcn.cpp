#include "sdcn.hpp"

#include <stdexcept>

#include "autodiff/optimizer.hpp"
#include "autodiff/tape.hpp"
#include "cluster/kmeans.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph_features.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace fisone::baselines {

namespace {

using autodiff::tape;
using autodiff::var;
using linalg::matrix;

matrix glorot(std::size_t rows, std::size_t cols, util::rng& gen) {
    matrix w(rows, cols);
    const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
    for (double& x : w.flat()) x = gen.uniform(-bound, bound);
    return w;
}

/// All trainable state of the model.
struct sdcn_params {
    // autoencoder
    matrix enc_w1, enc_b1, enc_w2, enc_b2;
    matrix dec_w1, dec_b1, dec_w2, dec_b2;
    // GCN module
    matrix gcn_w1, gcn_w2, gcn_w3;
    // cluster centroids
    matrix centroids;
};

/// Tape handles of one forward pass.
struct sdcn_forward {
    var h1, z, xhat;     // autoencoder
    var gz;              // GCN softmax output (n × k)
    var q;               // Student-t assignment (n × k)
};

sdcn_forward forward(tape& t, const var x, const sparse_rows& adj, bool with_gcn, bool with_q,
                     std::vector<var>* out_param_vars, std::vector<matrix*>* out_params,
                     sdcn_params& owner) {
    auto param = [&](matrix& m) {
        const var v = t.parameter(m);
        if (out_param_vars != nullptr) {
            out_param_vars->push_back(v);
            out_params->push_back(&m);
        }
        return v;
    };

    sdcn_forward f{};

    // --- autoencoder ---
    const var ew1 = param(owner.enc_w1);
    const var eb1 = param(owner.enc_b1);
    const var ew2 = param(owner.enc_w2);
    const var eb2 = param(owner.enc_b2);
    f.h1 = t.relu(t.add_broadcast_row(t.matmul(x, ew1), eb1));
    f.z = t.add_broadcast_row(t.matmul(f.h1, ew2), eb2);  // linear latent

    const var dw1 = param(owner.dec_w1);
    const var db1 = param(owner.dec_b1);
    const var dw2 = param(owner.dec_w2);
    const var db2 = param(owner.dec_b2);
    const var dh = t.relu(t.add_broadcast_row(t.matmul(f.z, dw1), db1));
    f.xhat = t.add_broadcast_row(t.matmul(dh, dw2), db2);

    if (with_gcn) {
        // --- GCN with per-layer AE interpolation (ε = 0.5) ---
        const var g1 = param(owner.gcn_w1);
        const var g2 = param(owner.gcn_w2);
        const var g3 = param(owner.gcn_w3);
        const var hg1 = t.relu(t.matmul(t.weighted_sum_rows(x, adj), g1));
        const var mix1 = t.scale(t.add(hg1, f.h1), 0.5);
        const var hg2 = t.relu(t.matmul(t.weighted_sum_rows(mix1, adj), g2));
        const var mix2 = t.scale(t.add(hg2, f.z), 0.5);
        const var logits = t.matmul(t.weighted_sum_rows(mix2, adj), g3);
        f.gz = t.softmax_rows(logits);
    }
    if (with_q) {
        const var mu = param(owner.centroids);
        const var sq = t.pairwise_sqdist(f.z, mu);
        const var kern = t.reciprocal(t.add_scalar(sq, 1.0));
        f.q = t.row_normalize(kern);
    }
    return f;
}

/// −(1/n)·Σ P ⊙ log Q — cross-entropy with constant targets (same gradient
/// as KL(P‖Q) in the trainable quantities).
var kl_to_target(tape& t, const matrix& p_target, const var q) {
    const var p_const = t.constant(p_target);
    const var ce = t.sum_all(t.hadamard(p_const, t.log_op(t.add_scalar(q, 1e-12))));
    return t.scale(ce, -1.0 / static_cast<double>(p_target.rows()));
}

}  // namespace

std::vector<int> sdcn_cluster(const data::building& b, const sdcn_config& cfg) {
    if (cfg.embedding_dim == 0 || cfg.hidden_dim == 0)
        throw std::invalid_argument("sdcn_cluster: zero dimension");

    const graph::bipartite_graph g = graph::bipartite_graph::from_building(b);
    const matrix x_data = node_features(b, g);
    const sparse_rows adj = normalized_adjacency(g);
    const std::size_t m = x_data.cols();
    const std::size_t k = b.num_floors;
    util::rng gen(cfg.seed);

    sdcn_params p;
    p.enc_w1 = glorot(m, cfg.hidden_dim, gen);
    p.enc_b1 = matrix(1, cfg.hidden_dim, 0.0);
    p.enc_w2 = glorot(cfg.hidden_dim, cfg.embedding_dim, gen);
    p.enc_b2 = matrix(1, cfg.embedding_dim, 0.0);
    p.dec_w1 = glorot(cfg.embedding_dim, cfg.hidden_dim, gen);
    p.dec_b1 = matrix(1, cfg.hidden_dim, 0.0);
    p.dec_w2 = glorot(cfg.hidden_dim, m, gen);
    p.dec_b2 = matrix(1, m, 0.0);
    p.gcn_w1 = glorot(m, cfg.hidden_dim, gen);
    p.gcn_w2 = glorot(cfg.hidden_dim, cfg.embedding_dim, gen);
    p.gcn_w3 = glorot(cfg.embedding_dim, k, gen);
    p.centroids = matrix(k, cfg.embedding_dim, 0.0);

    autodiff::adam opt(autodiff::adam::config{cfg.learning_rate, 0.9, 0.999, 1e-8, 5.0});

    // --- phase 1: autoencoder pretraining ---
    for (std::size_t epoch = 0; epoch < cfg.pretrain_epochs; ++epoch) {
        tape t;
        const var x = t.constant(x_data);
        std::vector<var> vars;
        std::vector<matrix*> params;
        const sdcn_forward f = forward(t, x, adj, false, false, &vars, &params, p);
        const var diff = t.sub(f.xhat, x);
        const var loss = t.mean_all(t.hadamard(diff, diff));
        t.backward(loss);
        for (std::size_t i = 0; i < vars.size(); ++i) opt.step(*params[i], t.grad(vars[i]));
        opt.end_step();
    }

    // --- centroid initialisation: k-means on the pretrained latent ---
    {
        tape t;
        const var x = t.constant(x_data);
        const sdcn_forward f = forward(t, x, adj, false, false, nullptr, nullptr, p);
        const matrix z = t.value(f.z);
        const cluster::kmeans_result km = cluster::kmeans(z, k, gen);
        p.centroids = km.centroids;
    }

    // --- phase 2: joint training with dual self-supervision ---
    matrix p_target;
    matrix last_gz;
    for (std::size_t epoch = 0; epoch < cfg.train_epochs; ++epoch) {
        if (epoch % cfg.target_refresh == 0) {
            tape t;
            const var x = t.constant(x_data);
            const sdcn_forward f = forward(t, x, adj, false, true, nullptr, nullptr, p);
            p_target = target_distribution(t.value(f.q));
        }
        tape t;
        const var x = t.constant(x_data);
        std::vector<var> vars;
        std::vector<matrix*> params;
        const sdcn_forward f = forward(t, x, adj, true, true, &vars, &params, p);
        const var diff = t.sub(f.xhat, x);
        var loss = t.mean_all(t.hadamard(diff, diff));
        loss = t.add(loss, t.scale(kl_to_target(t, p_target, f.q), cfg.kl_q_weight));
        loss = t.add(loss, t.scale(kl_to_target(t, p_target, f.gz), cfg.kl_z_weight));
        t.backward(loss);
        for (std::size_t i = 0; i < vars.size(); ++i) opt.step(*params[i], t.grad(vars[i]));
        opt.end_step();
        last_gz = t.value(f.gz);
    }

    if (last_gz.empty()) {
        // Degenerate config (no joint epochs): fall back to k-means labels.
        tape t;
        const var x = t.constant(x_data);
        const sdcn_forward f = forward(t, x, adj, false, false, nullptr, nullptr, p);
        const cluster::kmeans_result km = cluster::kmeans(t.value(f.z), k, gen);
        std::vector<int> node_labels_km(km.assignment);
        return sample_labels(g, node_labels_km);
    }

    // --- labels: argmax of the GCN distribution on sample nodes ---
    std::vector<int> node_labels(g.num_nodes(), 0);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        int best = 0;
        for (std::size_t c = 1; c < k; ++c)
            if (last_gz(i, c) > last_gz(i, static_cast<std::size_t>(best)))
                best = static_cast<int>(c);
        node_labels[i] = best;
    }
    return sample_labels(g, node_labels);
}

}  // namespace fisone::baselines
