#pragma once

/// \file daegc.hpp
/// DAEGC (Wang et al., IJCAI 2019) — attributed-graph clustering with a
/// graph-attentional autoencoder and a centroid-based clustering loss.
/// Reimplemented on the in-repo autodiff engine at bench scale:
///  - a two-layer graph-attention encoder produces embeddings z. As in the
///    paper's own adaptation of DAEGC to RF bipartite graphs, the attention
///    coefficients are the RSS-derived transition weights of the graph
///    (row-normalised f(RSS), self-loop included) rather than a learned
///    sub-network — the rest of the architecture is unchanged;
///  - an inner-product decoder reconstructs edges, trained with sampled
///    edges and negative pairs (log-σ loss);
///  - self-training: Student-t soft assignment Q vs trainable centroids
///    (k-means initialised), sharpened target P, KL(P‖Q) loss.
/// Final labels are argmax of Q. Shares SDCN's centroid-based failure mode
/// on multi-modal RF distributions, as the paper reports.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/rf_sample.hpp"

namespace fisone::baselines {

/// DAEGC hyperparameters (defaults tuned for the bench scale).
struct daegc_config {
    std::size_t hidden_dim = 128;
    std::size_t embedding_dim = 32;
    std::size_t pretrain_epochs = 15;   ///< reconstruction-only warmup
    std::size_t train_epochs = 30;      ///< joint training
    std::size_t edge_batch = 4096;      ///< sampled edges (and negatives) per epoch
    double learning_rate = 1e-3;
    double cluster_weight = 1.0;        ///< γ on KL(P‖Q)
    std::size_t target_refresh = 5;
    std::uint64_t seed = 23;
};

/// Run DAEGC on the building's bipartite graph; returns per-sample cluster
/// labels in [0, b.num_floors).
[[nodiscard]] std::vector<int> daegc_cluster(const data::building& b,
                                             const daegc_config& cfg = {});

}  // namespace fisone::baselines
