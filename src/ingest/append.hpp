#pragma once

/// \file append.hpp
/// `ingest::append_scans` — the durable append primitive of the live
/// ingestion path. One call lands one batch of crowdsourced scan records in
/// an existing `data::corpus_store` directory and versions its manifest
/// forward atomically:
///
///   1. sweep delta files no manifest row references (debris of a crash
///      that died between steps 2 and 4 of an earlier append);
///   2. write the batch to a fresh delta shard `delta-NNNN.csv`
///      (NNNN = the new manifest version, zero-padded) and flush it;
///   3. write the advanced manifest — `version` bumped by one, a `delta`
///      row appended — to `manifest.csv.tmp` and flush it;
///   4. rename the temp over `manifest.csv`.
///
/// The rename in step 4 is the commit point: a crash anywhere before it
/// leaves `manifest.csv` untouched (the old version keeps serving, the
/// orphan delta file and/or `.tmp` are swept on the next mount or append);
/// a crash after it leaves the append fully visible. There is no state in
/// between — the same write-then-rename, durable-before-visible discipline
/// the result cache's disk spill uses.
///
/// Crash drills hook the gap between the steps via `append_hooks::
/// checkpoint`: the serving path arms it from `service::fault_plan::
/// crash_on_append` (`std::abort()`, indistinguishable from kill -9), the
/// data-layer tests throw through it and then remount to prove the store
/// never tears.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/rf_sample.hpp"

namespace fisone::ingest {

/// Hooks into the append's durability sequence (tests and chaos drills
/// only; default-constructed hooks are inert).
struct append_hooks {
    /// Called twice per append when set: `checkpoint(1)` after the delta
    /// shard is durable but before the manifest temp exists, and
    /// `checkpoint(2)` after the temp is written but before the rename.
    /// Aborting (or throwing) at either point simulates a crash mid-append;
    /// the store must remount to the pre-append manifest either way.
    std::function<void(int step)> checkpoint;
};

/// Outcome of one durable append.
struct append_outcome {
    std::uint64_t version = 0;         ///< manifest version after the append
    std::uint64_t accepted = 0;        ///< records written to the delta shard
    std::vector<std::string> touched;  ///< building names the batch carries, deduplicated,
                                       ///< in first-appearance order
};

/// Durably append \p records (building blocks carrying new scans,
/// `data::apply_delta_record` semantics) to the store at \p store_dir.
/// Returns only after the advanced manifest has been renamed into place.
/// Serialise calls per store yourself (the ingest manager runs one append
/// worker); concurrent appends to one directory race on the version number.
/// \throws std::invalid_argument when the batch is empty or a record has no
///         name; std::ios_base::failure on I/O errors. On throw the store
///         is unchanged (the old manifest still serves).
append_outcome append_scans(const std::string& store_dir,
                            const std::vector<data::building>& records,
                            const append_hooks& hooks = {});

}  // namespace fisone::ingest
