#pragma once

/// \file ingest_manager.hpp
/// The live-ingestion engine behind the federated front-end's
/// `append_scans` verb. One worker thread serialises every append (two
/// appends to one store must never race on the manifest version), and for
/// each batch:
///
///   1. **Durable append** — `ingest::append_scans` lands the delta shard
///      and versions the manifest forward atomically (`ingest.append`
///      span). The store owner's `service::fault_plan::crash_on_append`
///      is armed here: the process `std::abort()`s at the configured
///      checkpoint, exactly as kill -9 mid-append would.
///   2. **Dirty detection** — the store's effective (delta-applied) view is
///      re-streamed and `data::content_hash`ed against the pre-append
///      snapshot; only buildings whose bits changed (or that are new) are
///      dirty. The stream honors the owner's `slow_read_ms`.
///   3. **Ack** — the caller's `append_response` fires now: the append is
///      durable and the dirty count known, while the re-runs follow
///      asynchronously (barrier: `flush`).
///   4. **Re-serve** (`ingest.reindex` span) — each dirty building is
///      resubmitted as a pinned `identify_building` at its unchanged global
///      corpus index through the owning server's internal session, so the
///      re-runs ride the same retry/failover/deadline machinery as client
///      work and leave the backend result caches warm with the post-append
///      bits. Clean buildings are untouched — they keep serving from cache.
///   5. **Push** — every completed re-run is handed to the publish hook
///      (the federation `watch_registry`), which fans it out to standing
///      `watch` subscriptions.
///
/// Index identity: a base building keeps the global index it mounted at; a
/// record whose name no base building holds becomes a new building at the
/// store's local tail (`base_offset + local effective index`), which for
/// the last-mounted store is the tail of the merged namespace. Appending
/// new buildings to a store that is *not* last gives them indices the next
/// store's base already occupies — deterministic (seeds derive from index,
/// and sharing one is harmless to per-building results) but a single
/// NDJSON export mixing both will refuse the duplicate index; mount the
/// growing store last.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/rf_sample.hpp"
#include "runtime/batch_runner.hpp"
#include "service/fault_plan.hpp"

namespace fisone::ingest {

/// One appendable store, as the manager sees it: where it lives, what its
/// corpus is called (the `append_scans` routing key), where its buildings
/// start in the global corpus order, and the fault plan of the backend
/// that owns it (store k → backend k mod fleet size).
struct store_binding {
    std::string dir;
    std::string corpus_name;
    std::size_t base_offset = 0;
    service::fault_plan faults{};
};

/// What an append's ack callback receives. `error` empty = success (the
/// append is durable); non-empty = nothing changed on disk.
struct append_ack {
    std::uint64_t version = 0;
    std::uint64_t accepted = 0;
    std::uint64_t dirty = 0;
    std::string error;
};

class ingest_manager {
public:
    /// Resubmit one dirty building: a pinned `identify_building` at global
    /// index \p index under correlation id \p corr; the eventual
    /// `building_response` (or typed error) must come back through
    /// `on_reindex_result`.
    using reindex_submit =
        std::function<void(std::uint64_t corr, std::size_t index, data::building b)>;

    /// Fan one completed re-identification out to subscribers.
    using publish_fn = std::function<void(const std::string& name, std::uint64_t version,
                                          const runtime::building_report& report)>;

    /// Spins up the append worker. \p submit and \p publish are called from
    /// worker / completion threads — they must be thread-safe and must not
    /// call back into this manager (other than `on_reindex_result`).
    ingest_manager(std::vector<store_binding> stores, reindex_submit submit,
                   publish_fn publish);

    /// Drains the queue (enqueued appends still become durable), then
    /// waits for every outstanding re-run's completion to arrive. The
    /// submit targets (the fleet) must outlive the manager.
    ~ingest_manager();

    ingest_manager(const ingest_manager&) = delete;
    ingest_manager& operator=(const ingest_manager&) = delete;

    /// Queue one append batch. \p ack fires exactly once, on the worker
    /// thread, after the append is durable (or refused); it must not block
    /// or call back into the manager.
    void enqueue_append(std::string corpus_name, std::vector<data::building> records,
                        std::function<void(const append_ack&)> ack);

    /// Completion of re-run \p corr: \p report is the finished building, or
    /// nullptr when the fleet answered a typed error (retries exhausted) —
    /// nothing is pushed then. Unknown ids are ignored.
    void on_reindex_result(std::uint64_t corr, const runtime::building_report* report);

    /// Block until every queued append has processed and every submitted
    /// re-run has resolved — the ingest half of the `flush` barrier.
    void wait_idle();

    [[nodiscard]] std::uint64_t appends_total() const noexcept {
        return appends_total_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t dirty_total() const noexcept {
        return dirty_total_.load(std::memory_order_relaxed);
    }

private:
    struct op {
        std::string corpus_name;
        std::vector<data::building> records;
        std::function<void(const append_ack&)> ack;
    };

    /// Pre-append identity snapshot of one store: building name → content
    /// hash and global index, over the *effective* (delta-applied) view.
    struct store_state {
        bool snapshotted = false;
        std::unordered_map<std::string, std::uint64_t> hashes;
        std::unordered_map<std::string, std::size_t> indices;
    };

    struct dirty_item {
        std::string name;
        std::size_t index = 0;
        data::building b;
    };

    struct pending_run {
        std::string name;
        std::uint64_t version = 0;
    };

    void worker_loop();
    void process(op& item);

    /// Stream \p binding's effective view, updating \p ss; with \p dirty
    /// set, also collect buildings whose hash changed (or are new).
    static void scan_store(const store_binding& binding, store_state& ss,
                           std::vector<dirty_item>* dirty);

    std::vector<store_binding> stores_;
    std::vector<store_state> states_;  ///< worker-thread-only after construction
    reindex_submit submit_;
    publish_fn publish_;

    std::mutex mutex_;
    std::condition_variable cv_;       ///< wakes the worker
    std::condition_variable idle_cv_;  ///< wakes wait_idle / completion waiters
    std::deque<op> queue_;
    std::unordered_map<std::uint64_t, pending_run> pending_;
    std::uint64_t next_corr_ = 1;
    /// Pushes in flight: resolved correlation ids whose publish call hasn't
    /// returned. Idleness (flush) waits for these too — a subscriber's push
    /// must be buffered by the time flush answers.
    std::size_t publishing_ = 0;
    bool busy_ = false;
    bool stop_ = false;

    std::atomic<std::uint64_t> appends_total_{0};
    std::atomic<std::uint64_t> dirty_total_{0};

    std::thread worker_;
};

}  // namespace fisone::ingest
