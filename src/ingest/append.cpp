#include "append.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <system_error>

#include "data/corpus_store.hpp"
#include "obs/trace.hpp"

namespace fisone::ingest {

namespace {

std::string join(const std::string& dir, const std::string& name) {
    return (std::filesystem::path(dir) / name).string();
}

std::string delta_filename(std::uint64_t version) {
    std::string digits = std::to_string(version);
    while (digits.size() < 4) digits.insert(digits.begin(), '0');
    return "delta-" + digits + ".csv";
}

/// Delete delta files in \p dir that no manifest row references — the
/// debris of an append that crashed after writing its shard but before the
/// manifest rename. Base shards and everything else are left alone.
void sweep_orphan_deltas(const std::string& dir, const data::corpus_manifest& m) {
    std::set<std::string> referenced;
    for (const data::delta_entry& d : m.deltas) referenced.insert(d.filename);
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("delta-", 0) != 0) continue;
        if (name.size() < 4 || name.substr(name.size() - 4) != ".csv") continue;
        if (referenced.count(name) != 0) continue;
        std::error_code rm_ec;
        std::filesystem::remove(entry.path(), rm_ec);  // best-effort debris sweep
    }
}

}  // namespace

append_outcome append_scans(const std::string& store_dir,
                            const std::vector<data::building>& records,
                            const append_hooks& hooks) {
    obs::scoped_span span("ingest.append");

    if (records.empty())
        throw std::invalid_argument("append_scans: empty batch (a durable append must carry "
                                    "at least one record)");
    for (const data::building& r : records)
        if (r.name.empty())
            throw std::invalid_argument("append_scans: record without a building name");

    const data::corpus_store store = data::corpus_store::open(store_dir);  // sweeps .tmp
    data::corpus_manifest manifest = store.manifest();
    sweep_orphan_deltas(store_dir, manifest);

    const std::uint64_t version = manifest.version + 1;
    const std::string filename = delta_filename(version);

    // Step 1: the delta shard, durable before any manifest mentions it.
    {
        data::shard_writer writer(join(store_dir, filename));
        for (const data::building& r : records) writer.append(r);
        writer.close();
    }
    if (hooks.checkpoint) hooks.checkpoint(1);

    // Step 2: the advanced manifest, through the temp.
    manifest.version = version;
    manifest.deltas.push_back(data::delta_entry{filename, records.size()});
    const std::string temp = data::manifest_temp_path(store_dir);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::ios_base::failure("append_scans: cannot create " + temp);
        data::save_manifest(manifest, out);
        out.flush();
        if (!out) throw std::ios_base::failure("append_scans: write failed on " + temp);
    }
    if (hooks.checkpoint) hooks.checkpoint(2);

    // Step 3: the commit point. Before this rename the old manifest serves;
    // after it the append is fully visible. Nothing in between.
    std::error_code ec;
    std::filesystem::rename(temp, data::manifest_path(store_dir), ec);
    if (ec)
        throw std::ios_base::failure("append_scans: rename of " + temp +
                                     " failed: " + ec.message());

    append_outcome out;
    out.version = version;
    out.accepted = records.size();
    std::set<std::string> seen;
    for (const data::building& r : records)
        if (seen.insert(r.name).second) out.touched.push_back(r.name);
    return out;
}

}  // namespace fisone::ingest
