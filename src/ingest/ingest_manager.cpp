#include "ingest_manager.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "append.hpp"
#include "data/corpus_store.hpp"
#include "obs/trace.hpp"

namespace fisone::ingest {

ingest_manager::ingest_manager(std::vector<store_binding> stores, reindex_submit submit,
                               publish_fn publish)
    : stores_(std::move(stores)),
      states_(stores_.size()),
      submit_(std::move(submit)),
      publish_(std::move(publish)) {
    worker_ = std::thread([this] { worker_loop(); });
}

ingest_manager::~ingest_manager() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();  // drains the queue first
    // Outstanding re-runs were already submitted; their completions are
    // guaranteed (one response per submission, success or typed error), and
    // the fleet outlives this manager by construction — wait them out so no
    // completion callback ever touches a dead manager.
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_.empty() && publishing_ == 0; });
}

void ingest_manager::enqueue_append(std::string corpus_name,
                                    std::vector<data::building> records,
                                    std::function<void(const append_ack&)> ack) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) return;  // tearing down: the connection is going away too
        queue_.push_back(op{std::move(corpus_name), std::move(records), std::move(ack)});
    }
    cv_.notify_one();
}

void ingest_manager::on_reindex_result(std::uint64_t corr,
                                       const runtime::building_report* report) {
    std::string name;
    std::uint64_t version = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = pending_.find(corr);
        if (it == pending_.end()) return;  // stale / unknown: already resolved
        name = std::move(it->second.name);
        version = it->second.version;
        pending_.erase(it);
        // Erasing resolves the correlation id (a racing duplicate response
        // finds nothing), but idleness must not be observable until the
        // push is delivered: `flush` promises subscribers their updates are
        // buffered by the time it answers.
        ++publishing_;
    }
    if (report != nullptr && publish_) publish_(name, version, *report);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        --publishing_;
    }
    idle_cv_.notify_all();
}

void ingest_manager::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] {
        return queue_.empty() && !busy_ && pending_.empty() && publishing_ == 0;
    });
}

void ingest_manager::worker_loop() {
    for (;;) {
        op item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop requested and nothing left
            item = std::move(queue_.front());
            queue_.pop_front();
            busy_ = true;
        }
        process(item);
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            busy_ = false;
        }
        idle_cv_.notify_all();
    }
}

void ingest_manager::scan_store(const store_binding& binding, store_state& ss,
                                std::vector<dirty_item>* dirty) {
    const data::corpus_store store = data::corpus_store::open(binding.dir);
    store.for_each_building_effective([&](std::size_t local_index, data::building&& b) {
        if (binding.faults.slow_read_ms != 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(binding.faults.slow_read_ms));
        const std::uint64_t hash = data::content_hash(b);
        const std::size_t global_index = binding.base_offset + local_index;
        const auto it = ss.hashes.find(b.name);
        const bool changed = it == ss.hashes.end() || it->second != hash;
        ss.hashes[b.name] = hash;
        ss.indices[b.name] = global_index;
        if (dirty != nullptr && changed)
            dirty->push_back(dirty_item{b.name, global_index, std::move(b)});
    });
}

void ingest_manager::process(op& item) {
    const store_binding* binding = nullptr;
    store_state* ss = nullptr;
    for (std::size_t i = 0; i < stores_.size(); ++i) {
        if (stores_[i].corpus_name == item.corpus_name) {
            binding = &stores_[i];
            ss = &states_[i];
            break;
        }
    }
    if (binding == nullptr) {
        if (item.ack)
            item.ack(append_ack{0, 0, 0,
                                "no mounted store serves corpus \"" + item.corpus_name + "\""});
        return;
    }
    try {
        // The pre-append baseline: hashes of the effective view as it
        // stands, so only this batch's actual changes count as dirty.
        // Built once per store (deltas already on disk at mount are part
        // of the baseline — a warm restart does not re-run them).
        if (!ss->snapshotted) {
            scan_store(*binding, *ss, nullptr);
            ss->snapshotted = true;
        }

        append_hooks hooks;
        if (binding->faults.crash_on_append != 0) {
            const std::uint32_t step = binding->faults.crash_on_append;
            // std::abort, not an exception: the drill is kill -9 mid-append,
            // and nothing may get the chance to clean up.
            hooks.checkpoint = [step](int s) {
                if (static_cast<std::uint32_t>(s) == step) std::abort();
            };
        }
        const append_outcome outcome = append_scans(binding->dir, item.records, hooks);
        appends_total_.fetch_add(1, std::memory_order_relaxed);

        obs::scoped_span span("ingest.reindex");
        std::vector<dirty_item> dirty;
        scan_store(*binding, *ss, &dirty);
        dirty_total_.fetch_add(dirty.size(), std::memory_order_relaxed);

        // Ack now: durable on disk, dirty set known. The re-runs below are
        // asynchronous — `flush` is the barrier that waits for them.
        if (item.ack)
            item.ack(append_ack{outcome.version, outcome.accepted, dirty.size(), ""});

        for (dirty_item& d : dirty) {
            std::uint64_t corr = 0;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                corr = next_corr_++;
                pending_.emplace(corr, pending_run{d.name, outcome.version});
            }
            try {
                submit_(corr, d.index, std::move(d.b));
            } catch (...) {
                // Submission never left the front-end; nothing will answer.
                const std::lock_guard<std::mutex> lock(mutex_);
                pending_.erase(corr);
            }
        }
    } catch (const std::exception& e) {
        if (item.ack) item.ack(append_ack{0, 0, 0, e.what()});
    }
}

}  // namespace fisone::ingest
