#pragma once

/// \file rf_gnn.hpp
/// RF-GNN — the paper's attention-based graph neural network for RF
/// signals (§III). A GraphSAGE-style K-hop model where:
///  - neighbours are *sampled* proportionally to the edge weight
///    f(RSS) = RSS + c (the "attention" sampling, Pr(u) ∝ f(RSS_uv));
///  - sampled neighbours are *aggregated* with normalised f(RSS) weights
///    (AGGREGATE_w), i.e. the edge weights act as fixed attention scores;
///  - each hop concatenates the node's previous representation with the
///    aggregate, applies a dense layer + nonlinearity, and L2-normalises;
///  - training is unsupervised: skip-gram loss over 5-step random-walk
///    co-occurrences with τ = 4 negatives drawn ∝ degree^(3/4).
///
/// The "without attention" ablation (paper Fig. 8(a,b)) switches both the
/// sampling and the aggregation to uniform.

#include <cstdint>
#include <vector>

#include "autodiff/optimizer.hpp"
#include "autodiff/tape.hpp"
#include "graph/bipartite_graph.hpp"
#include "graph/sampling.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::gnn {

/// Nonlinearity σ(·) applied after each hop's dense layer.
enum class activation { tanh, relu, sigmoid };

/// All RF-GNN hyperparameters. Defaults follow the paper where it is
/// specific (walk length 5, τ = 4, degree^(3/4) negatives) and common
/// GraphSAGE practice elsewhere.
struct rf_gnn_config {
    std::size_t embedding_dim = 32;    ///< output dimension (paper sweeps 8–64)
    std::size_t num_hops = 2;          ///< K
    std::size_t neighbor_samples = 8;  ///< |N'(v)| sampled per hop during training
    bool use_attention = true;         ///< false → uniform sampling + mean aggregation
    bool train_base_embeddings = true; ///< r⁰ trainable (see DESIGN.md)
    activation act = activation::tanh;

    graph::walk_config walks{};        ///< 5-step walks by default
    std::size_t negatives = 4;         ///< τ
    double negative_exponent = 0.75;   ///< Pr(z) ∝ degree^exponent

    std::size_t epochs = 10;
    std::size_t batch_pairs = 512;
    double learning_rate = 0.01;
    double grad_clip = 5.0;
    std::uint64_t seed = 42;
};

/// The trained model. Owns its parameters; the graph must outlive it.
class rf_gnn {
public:
    /// \throws std::invalid_argument on nonsensical config (zero dims/hops).
    /// \param pool optional worker pool for the minibatch forward/backward
    ///        products and full-graph propagation. Pooled runs are
    ///        bit-identical to serial ones: the work splits over output
    ///        rows, whose accumulation order never changes, and all
    ///        stochastic sampling stays on the calling thread.
    rf_gnn(const graph::bipartite_graph& g, rf_gnn_config cfg,
           util::thread_pool* pool = nullptr);

    /// Run the full unsupervised training schedule (`cfg.epochs` epochs,
    /// walks regenerated every epoch).
    void train();

    /// Run one epoch; returns the mean batch loss (useful for tests and
    /// convergence monitoring).
    double train_epoch();

    /// Deterministic full-neighbourhood inference for every node.
    /// Returns (num_nodes × embedding_dim); invalidated caches are rebuilt.
    [[nodiscard]] const linalg::matrix& embed_all_nodes();

    /// Rows of `embed_all_nodes()` restricted to signal-sample nodes, in
    /// sample order: (num_samples × embedding_dim).
    [[nodiscard]] linalg::matrix embed_samples();

    /// Inductive embedding of a *new* scan that is not a node of the graph
    /// (paper §I: "new incoming RF signals"). The scan's base representation
    /// is the attention-weighted mean of its detected MACs' base embeddings;
    /// the K-hop transform then runs against the cached full-graph layers.
    /// MACs never seen in the graph are ignored.
    /// \throws std::invalid_argument if no observation matches a known MAC.
    [[nodiscard]] std::vector<double> embed_new_sample(
        const std::vector<data::rf_observation>& observations);

    [[nodiscard]] const rf_gnn_config& config() const noexcept { return cfg_; }

    /// Trainable parameters, exposed for tests.
    [[nodiscard]] const linalg::matrix& base_embeddings() const noexcept { return base_; }
    [[nodiscard]] const std::vector<linalg::matrix>& hop_weights() const noexcept {
        return weights_;
    }

private:
    /// Apply σ in place.
    void apply_activation(linalg::matrix& m) const noexcept;

    /// One full-neighbourhood propagation hop: H_k from H_{k-1}.
    [[nodiscard]] linalg::matrix propagate_full(const linalg::matrix& prev, std::size_t hop) const;

    /// Train on one batch of positive pairs; returns batch loss.
    double train_batch(const std::vector<graph::walk_pair>& pairs, std::size_t begin,
                       std::size_t end);

    const graph::bipartite_graph* graph_;
    rf_gnn_config cfg_;
    util::thread_pool* pool_ = nullptr;
    util::rng rng_;
    graph::neighbor_sampler sampler_;
    graph::negative_table negatives_;
    autodiff::adam optimizer_;

    /// Training tape, reused across batches: `reset()` recycles every
    /// node's storage through the tape's workspace, so steady-state
    /// forward+backward passes allocate no matrix temporaries.
    autodiff::tape tape_;
    /// Scratch arena for full-graph propagation; mutable because
    /// propagation is logically const but reuses these buffers. Only
    /// touched on the (already mutating) cache-rebuild path —
    /// `embed_new_sample` deliberately uses locals so warm-cache
    /// inference never mutates shared model state.
    mutable linalg::workspace ws_;

    linalg::matrix base_;                  // (num_nodes × d)
    std::vector<linalg::matrix> weights_;  // per hop, (2d × d)

    // Full-propagation cache for inference / inductive embedding.
    std::vector<linalg::matrix> layer_cache_;  // H_0 .. H_K
    bool cache_valid_ = false;
};

}  // namespace fisone::gnn
