#include "rf_gnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "linalg/parallel_policy.hpp"
#include "util/thread_pool.hpp"

namespace fisone::gnn {

using autodiff::var;
using linalg::matrix;

rf_gnn::rf_gnn(const graph::bipartite_graph& g, rf_gnn_config cfg, util::thread_pool* pool)
    : graph_(&g),
      cfg_(cfg),
      pool_(pool),
      rng_(cfg.seed),
      sampler_(g, cfg.use_attention),
      negatives_(g, cfg.negative_exponent),
      optimizer_(autodiff::adam::config{cfg.learning_rate, 0.9, 0.999, 1e-8, cfg.grad_clip}),
      tape_(pool) {
    if (cfg.embedding_dim == 0) throw std::invalid_argument("rf_gnn: embedding_dim must be > 0");
    if (cfg.num_hops == 0) throw std::invalid_argument("rf_gnn: num_hops must be > 0");
    if (cfg.neighbor_samples == 0)
        throw std::invalid_argument("rf_gnn: neighbor_samples must be > 0");

    const std::size_t d = cfg.embedding_dim;
    base_ = matrix(g.num_nodes(), d);
    for (double& x : base_.flat()) x = rng_.normal(0.0, 0.1);

    weights_.reserve(cfg.num_hops);
    for (std::size_t k = 0; k < cfg.num_hops; ++k) {
        matrix w(2 * d, d);
        const double bound = std::sqrt(6.0 / static_cast<double>(2 * d + d));
        for (double& x : w.flat()) x = rng_.uniform(-bound, bound);
        weights_.push_back(std::move(w));
    }
}

void rf_gnn::apply_activation(matrix& m) const noexcept {
    switch (cfg_.act) {
        case activation::tanh:
            for (double& x : m.flat()) x = std::tanh(x);
            break;
        case activation::relu:
            for (double& x : m.flat()) x = x > 0.0 ? x : 0.0;
            break;
        case activation::sigmoid:
            for (double& x : m.flat()) x = 1.0 / (1.0 + std::exp(-x));
            break;
    }
}

void rf_gnn::train() {
    for (std::size_t e = 0; e < cfg_.epochs; ++e) train_epoch();
}

double rf_gnn::train_epoch() {
    cache_valid_ = false;
    auto pairs = graph::generate_walk_pairs(*graph_, sampler_, cfg_.walks, rng_);
    rng_.shuffle(pairs);

    double total_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < pairs.size(); begin += cfg_.batch_pairs) {
        const std::size_t end = std::min(begin + cfg_.batch_pairs, pairs.size());
        total_loss += train_batch(pairs, begin, end);
        ++batches;
    }
    return batches == 0 ? 0.0 : total_loss / static_cast<double>(batches);
}

double rf_gnn::train_batch(const std::vector<graph::walk_pair>& pairs, std::size_t begin,
                           std::size_t end) {
    const std::size_t batch = end - begin;
    const std::size_t tau = cfg_.negatives;

    // --- assemble the target node set: lefts, rights, negatives ---
    std::vector<std::uint32_t> lefts(batch), rights(batch);
    std::vector<std::uint32_t> negs(batch * tau);
    for (std::size_t i = 0; i < batch; ++i) {
        lefts[i] = pairs[begin + i].first;
        rights[i] = pairs[begin + i].second;
        for (std::size_t z = 0; z < tau; ++z) negs[i * tau + z] = negatives_.sample(rng_);
    }

    // Deduplicated target list; `slot_of` maps node id → row in the final
    // representation matrix.
    std::unordered_map<std::uint32_t, std::size_t> slot_of;
    std::vector<std::uint32_t> targets;
    auto intern = [&](std::uint32_t node) {
        const auto [it, inserted] = slot_of.emplace(node, targets.size());
        if (inserted) targets.push_back(node);
        return it->second;
    };
    std::vector<std::size_t> left_slots(batch), right_slots(batch), neg_slots(batch * tau),
        left_rep_slots(batch * tau);
    for (std::size_t i = 0; i < batch; ++i) {
        left_slots[i] = intern(lefts[i]);
        right_slots[i] = intern(rights[i]);
    }
    for (std::size_t i = 0; i < batch; ++i)
        for (std::size_t z = 0; z < tau; ++z) {
            neg_slots[i * tau + z] = intern(negs[i * tau + z]);
            left_rep_slots[i * tau + z] = left_slots[i];
        }

    // --- build the layered computation: layers[K] = targets,
    //     layers[k-1] ⊇ layers[k] ∪ sampled neighbours of layers[k] ---
    const std::size_t K = cfg_.num_hops;
    std::vector<std::vector<std::uint32_t>> layers(K + 1);
    std::vector<std::unordered_map<std::uint32_t, std::size_t>> layer_index(K + 1);
    // groups[k][i]: sampled (position in layer k-1, aggregation weight) of
    // the i-th node of layer k.
    std::vector<std::vector<std::vector<std::pair<std::size_t, double>>>> groups(K + 1);

    layers[K] = targets;
    for (std::size_t i = 0; i < targets.size(); ++i) layer_index[K].emplace(targets[i], i);

    // Sampled neighbourhoods are drawn once per batch, reused when building
    // both the lower layer membership and the aggregation groups.
    std::vector<std::vector<std::vector<graph::edge>>> sampled(K + 1);
    for (std::size_t k = K; k >= 1; --k) {
        auto& lower = layers[k - 1];
        auto& lower_idx = layer_index[k - 1];
        auto intern_lower = [&](std::uint32_t node) {
            const auto [it, inserted] = lower_idx.emplace(node, lower.size());
            if (inserted) lower.push_back(node);
            return it->second;
        };
        sampled[k].resize(layers[k].size());
        for (std::size_t i = 0; i < layers[k].size(); ++i) {
            const std::uint32_t node = layers[k][i];
            intern_lower(node);  // the node itself needs its previous rep
            auto& edges = sampled[k][i];
            edges.reserve(cfg_.neighbor_samples);
            for (std::size_t s = 0; s < cfg_.neighbor_samples; ++s) {
                const graph::edge& e = sampler_.sample_edge(node, rng_);
                edges.push_back(e);
                intern_lower(e.neighbor);
            }
        }
        // Aggregation groups with normalised weights.
        groups[k].resize(layers[k].size());
        for (std::size_t i = 0; i < layers[k].size(); ++i) {
            const auto& edges = sampled[k][i];
            double total = 0.0;
            if (cfg_.use_attention)
                for (const graph::edge& e : edges) total += e.weight;
            else
                total = static_cast<double>(edges.size());
            auto& grp = groups[k][i];
            grp.reserve(edges.size());
            for (const graph::edge& e : edges) {
                const double w = cfg_.use_attention ? e.weight / total : 1.0 / total;
                grp.emplace_back(lower_idx.at(e.neighbor), w);
            }
        }
    }

    // --- forward pass on the reused tape (reset recycles node storage
    //     into the tape's workspace, making the step allocation-free) ---
    tape_.reset();
    autodiff::tape& t = tape_;
    const var base_var = cfg_.train_base_embeddings ? t.parameter(base_) : t.constant(base_);
    std::vector<var> weight_vars;
    weight_vars.reserve(K);
    for (const matrix& w : weights_) weight_vars.push_back(t.parameter(w));

    std::vector<std::size_t> layer0_rows(layers[0].size());
    for (std::size_t i = 0; i < layers[0].size(); ++i) layer0_rows[i] = layers[0][i];
    var h = t.gather_rows(base_var, layer0_rows);

    for (std::size_t k = 1; k <= K; ++k) {
        // self representations: positions of layer k nodes inside layer k-1
        std::vector<std::size_t> self_pos(layers[k].size());
        for (std::size_t i = 0; i < layers[k].size(); ++i)
            self_pos[i] = layer_index[k - 1].at(layers[k][i]);
        const var self_prev = t.gather_rows(h, std::move(self_pos));
        const var agg = t.weighted_sum_rows(h, groups[k]);
        const var cat = t.concat_cols(self_prev, agg);
        var z = t.matmul(cat, weight_vars[k - 1]);
        switch (cfg_.act) {
            case activation::tanh: z = t.tanh_act(z); break;
            case activation::relu: z = t.relu(z); break;
            case activation::sigmoid: z = t.sigmoid(z); break;
        }
        h = t.l2_normalize_rows(z);
    }

    // --- skip-gram loss with negative sampling (paper §III-B) ---
    const var left_rep = t.gather_rows(h, left_slots);
    const var right_rep = t.gather_rows(h, right_slots);
    const var pos_scores = t.row_dot(left_rep, right_rep);
    var loss = t.negate(t.mean_all(t.log_sigmoid(pos_scores)));
    if (tau > 0) {
        const var left_rep2 = t.gather_rows(h, left_rep_slots);
        const var neg_rep = t.gather_rows(h, neg_slots);
        const var neg_scores = t.row_dot(left_rep2, neg_rep);
        // τ · E_z[−log σ(−r_i·r_z)] estimated with τ samples per pair:
        // mean over the τ·B entries times τ recovers (1/B)·Σ.
        loss = t.add(loss, t.scale(t.mean_all(t.log_sigmoid(t.negate(neg_scores))),
                                   -static_cast<double>(tau)));
    }

    t.backward(loss);

    if (cfg_.train_base_embeddings) optimizer_.step(base_, t.grad(base_var));
    for (std::size_t k = 0; k < K; ++k) optimizer_.step(weights_[k], t.grad(weight_vars[k]));
    optimizer_.end_step();

    return t.value(loss)(0, 0);
}

matrix rf_gnn::propagate_full(const matrix& prev, std::size_t hop) const {
    const std::size_t n = graph_->num_nodes();
    const std::size_t d = cfg_.embedding_dim;

    // Aggregate over the *full* neighbourhood (deterministic inference).
    // Every node writes only its own output row, so pooling is bit-exact.
    matrix agg = ws_.take_zero(n, d);
    util::parallel_for(pool_, 0, n, linalg::parallel_policy::row_grain(n),
                       [&](std::size_t n0, std::size_t n1) {
        for (std::uint32_t node = static_cast<std::uint32_t>(n0); node < n1; ++node) {
            const auto nbrs = graph_->neighbors(node);
            if (nbrs.empty()) continue;
            double total = 0.0;
            if (cfg_.use_attention)
                for (const graph::edge& e : nbrs) total += e.weight;
            else
                total = static_cast<double>(nbrs.size());
            for (const graph::edge& e : nbrs) {
                const double w = cfg_.use_attention ? e.weight / total : 1.0 / total;
                const auto prow = prev.row(e.neighbor);
                for (std::size_t j = 0; j < d; ++j) agg(node, j) += w * prow[j];
            }
        }
    });

    // cat = [prev | agg], z = cat · W_hop, σ, normalise
    matrix cat = ws_.take(n, 2 * d);
    for (std::size_t i = 0; i < n; ++i) {
        const auto prow = prev.row(i);
        for (std::size_t j = 0; j < d; ++j) {
            cat(i, j) = prow[j];
            cat(i, d + j) = agg(i, j);
        }
    }
    matrix z = ws_.take(n, d);
    linalg::matmul_into(z, cat, weights_[hop], pool_);
    ws_.recycle(std::move(agg));
    ws_.recycle(std::move(cat));
    apply_activation(z);
    for (std::size_t i = 0; i < n; ++i) {
        double nrm = linalg::norm2(z.row(i));
        if (nrm < 1e-12) nrm = 1e-12;
        for (std::size_t j = 0; j < d; ++j) z(i, j) /= nrm;
    }
    return z;
}

const matrix& rf_gnn::embed_all_nodes() {
    if (!cache_valid_) {
        // Stale layers go back to the arena; the rebuild takes them out again.
        for (matrix& layer : layer_cache_) ws_.recycle(std::move(layer));
        layer_cache_.clear();
        layer_cache_.push_back(base_);
        for (std::size_t k = 0; k < cfg_.num_hops; ++k)
            layer_cache_.push_back(propagate_full(layer_cache_.back(), k));
        cache_valid_ = true;
    }
    return layer_cache_.back();
}

matrix rf_gnn::embed_samples() {
    const matrix& all = embed_all_nodes();
    matrix out = matrix::uninit(graph_->num_samples(), cfg_.embedding_dim);
    for (std::size_t i = 0; i < graph_->num_samples(); ++i) {
        const auto row = all.row(graph_->sample_node(i));
        for (std::size_t j = 0; j < cfg_.embedding_dim; ++j) out(i, j) = row[j];
    }
    return out;
}

std::vector<double> rf_gnn::embed_new_sample(
    const std::vector<data::rf_observation>& observations) {
    static_cast<void>(embed_all_nodes());  // ensure caches
    const std::size_t d = cfg_.embedding_dim;

    // Known-MAC neighbourhood with f(RSS) weights.
    std::vector<std::pair<std::uint32_t, double>> nbrs;
    for (const data::rf_observation& o : observations) {
        if (o.mac_id >= graph_->num_macs()) continue;  // unseen MAC: skip
        const double w = o.rss_dbm + graph_->rss_offset();
        if (w > 0.0) nbrs.emplace_back(graph_->mac_node(o.mac_id), w);
    }
    if (nbrs.empty())
        throw std::invalid_argument("rf_gnn::embed_new_sample: no known MACs in the scan");

    double total = 0.0;
    if (cfg_.use_attention)
        for (const auto& [node, w] : nbrs) total += w;
    else
        total = static_cast<double>(nbrs.size());

    // h_0(new) = weighted mean of neighbour base embeddings (inductive
    // convention for a node with no trained base vector; see header).
    std::vector<double> h(d, 0.0);
    for (const auto& [node, w] : nbrs) {
        const double ww = cfg_.use_attention ? w / total : 1.0 / total;
        const auto row = layer_cache_[0].row(node);
        for (std::size_t j = 0; j < d; ++j) h[j] += ww * row[j];
    }

    for (std::size_t k = 1; k <= cfg_.num_hops; ++k) {
        // aggregate neighbours' H_{k-1}
        std::vector<double> agg(d, 0.0);
        for (const auto& [node, w] : nbrs) {
            const double ww = cfg_.use_attention ? w / total : 1.0 / total;
            const auto row = layer_cache_[k - 1].row(node);
            for (std::size_t j = 0; j < d; ++j) agg[j] += ww * row[j];
        }
        // z = [h | agg] · W_{k-1}. Deliberately plain locals, not the
        // shared ws_ arena: once the layer cache is warm this method only
        // reads model state, so concurrent inference on one fitted model
        // stays safe (the 1×2d scratch is too small to matter anyway).
        matrix cat = matrix::uninit(1, 2 * d);
        for (std::size_t j = 0; j < d; ++j) {
            cat(0, j) = h[j];
            cat(0, d + j) = agg[j];
        }
        matrix z = matrix::uninit(1, d);
        linalg::matmul_into(z, cat, weights_[k - 1]);
        apply_activation(z);
        double nrm = linalg::norm2(z.row(0));
        if (nrm < 1e-12) nrm = 1e-12;
        for (std::size_t j = 0; j < d; ++j) h[j] = z(0, j) / nrm;
    }
    return h;
}

}  // namespace fisone::gnn
