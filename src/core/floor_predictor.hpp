#pragma once

/// \file floor_predictor.hpp
/// The online half of the paper's motivating use case: "identify the floor
/// number of a new RF signal upon its measurement" (§I). A
/// `floor_predictor` owns a trained RF-GNN plus the one-label-indexed
/// clustering of the crowdsourced corpus, and classifies *new* scans that
/// were never nodes of the training graph:
///   new scan → inductive RF-GNN embedding → majority vote over the k
///   nearest indexed training scans → floor.
/// k-NN voting is used instead of nearest-centroid because inductive
/// embeddings correlate with, but are slightly offset from, transductive
/// ones (the base vector is synthesised from MAC embeddings); local
/// neighbourhoods absorb that offset.

#include <cstddef>
#include <memory>
#include <vector>

#include "data/rf_sample.hpp"
#include "fis_one.hpp"
#include "gnn/rf_gnn.hpp"
#include "graph/bipartite_graph.hpp"

namespace fisone::core {

/// A floor prediction for one new scan.
struct floor_prediction {
    int floor = -1;          ///< predicted floor (0 = bottom)
    double confidence = 0.0; ///< fraction of neighbour votes for that floor
};

/// Online classifier built from a training corpus. Owns everything it
/// needs; the building passed to `fit` may be destroyed afterwards.
class floor_predictor {
public:
    /// \param k_neighbors vote pool size (odd values avoid ties).
    explicit floor_predictor(fis_one_config cfg = {}, std::size_t k_neighbors = 9);

    /// Train the pipeline on \p b (graph + RF-GNN + clustering + indexing)
    /// and retain the model for online queries.
    /// \returns the offline result (metrics, per-scan floors).
    fis_one_result fit(const data::building& b);

    /// Classify a new scan. Requires `fit` to have been called.
    /// \throws std::logic_error before fit; std::invalid_argument if no
    ///         observation matches a MAC known to the training graph.
    [[nodiscard]] floor_prediction predict(
        const std::vector<data::rf_observation>& observations) const;

    /// Number of floors the fitted model distinguishes.
    [[nodiscard]] std::size_t num_floors() const;

    [[nodiscard]] bool fitted() const noexcept { return model_ != nullptr; }

private:
    fis_one_config cfg_;
    std::size_t k_neighbors_;

    // Training state (populated by fit).
    std::unique_ptr<graph::bipartite_graph> graph_;
    std::unique_ptr<gnn::rf_gnn> model_;
    linalg::matrix train_embeddings_;
    std::vector<int> train_floor_;
    std::size_t num_clusters_ = 0;
};

}  // namespace fisone::core
