#include "floor_predictor.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace fisone::core {

floor_predictor::floor_predictor(fis_one_config cfg, std::size_t k_neighbors)
    : cfg_(cfg), k_neighbors_(k_neighbors) {
    if (k_neighbors_ == 0)
        throw std::invalid_argument("floor_predictor: k_neighbors must be > 0");
}

fis_one_result floor_predictor::fit(const data::building& b) {
    // Run the offline pipeline first (it validates the building).
    fis_one pipeline(cfg_);
    fis_one_result result = pipeline.run(b);

    // Rebuild the trained RF-GNN for online inductive queries. Training is
    // deterministic per (graph, config), so this model is bit-identical to
    // the one the pipeline used internally.
    graph_ = std::make_unique<graph::bipartite_graph>(graph::bipartite_graph::from_building(b));
    model_ = std::make_unique<gnn::rf_gnn>(*graph_, cfg_.gnn);
    model_->train();

    train_embeddings_ = result.embeddings;
    train_floor_ = result.predicted_floor;
    num_clusters_ = result.num_clusters;
    return result;
}

std::size_t floor_predictor::num_floors() const {
    if (!fitted()) throw std::logic_error("floor_predictor::num_floors: call fit first");
    return num_clusters_;
}

floor_prediction floor_predictor::predict(
    const std::vector<data::rf_observation>& observations) const {
    if (!fitted()) throw std::logic_error("floor_predictor::predict: call fit first");

    const std::vector<double> rep = model_->embed_new_sample(observations);

    const std::size_t n = train_embeddings_.rows();
    const std::size_t k = std::min(k_neighbors_, n);
    std::vector<std::pair<double, int>> nearest;
    nearest.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        nearest.emplace_back(linalg::squared_distance(rep, train_embeddings_.row(i)),
                             train_floor_[i]);
    std::partial_sort(nearest.begin(), nearest.begin() + static_cast<std::ptrdiff_t>(k),
                      nearest.end());

    std::map<int, std::size_t> votes;
    for (std::size_t i = 0; i < k; ++i) ++votes[nearest[i].second];

    floor_prediction out;
    std::size_t best = 0;
    for (const auto& [floor, count] : votes) {
        if (count > best) {
            best = count;
            out.floor = floor;
        }
    }
    out.confidence = static_cast<double>(best) / static_cast<double>(k);
    return out;
}

}  // namespace fisone::core
