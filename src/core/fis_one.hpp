#pragma once

/// \file fis_one.hpp
/// The FIS-ONE pipeline (paper Fig. 2): crowdsourced RF signals → bipartite
/// graph → RF-GNN embeddings → hierarchical clustering into one cluster per
/// floor → spillover-based cluster indexing anchored on the single labeled
/// sample. Every ablation the paper studies is a switch here:
///  - RF-GNN attention on/off (Fig. 8(a,b));
///  - hierarchical clustering vs k-means (Fig. 8(c,d));
///  - adapted vs plain Jaccard (Fig. 9(a,b));
///  - exact Held–Karp vs 2-opt TSP (Fig. 9(c,d));
///  - bottom-floor label vs arbitrary-floor label (§VI, Fig. 14);
///  - embedding dimension (Figs. 10–11).

#include <cstdint>
#include <vector>

#include "data/rf_sample.hpp"
#include "gnn/rf_gnn.hpp"
#include "indexing/cluster_indexer.hpp"
#include "indexing/similarity.hpp"
#include "linalg/matrix.hpp"

namespace fisone::core {

/// Clustering algorithm used on the learned embeddings.
enum class clustering_algorithm { hierarchical, kmeans };

/// Where the single labeled sample is assumed to come from.
enum class label_mode { bottom_floor, arbitrary_floor };

/// Full configuration surface of the pipeline.
struct fis_one_config {
    gnn::rf_gnn_config gnn{};
    clustering_algorithm clustering = clustering_algorithm::hierarchical;
    indexing::similarity_kind similarity = indexing::similarity_kind::adapted_jaccard;
    indexing::tsp_solver solver = indexing::tsp_solver::exact;
    label_mode label = label_mode::bottom_floor;
    /// Extension beyond the paper (its conclusion's "towards unsupervised
    /// floor identification"): estimate the floor count from the UPGMA
    /// dendrogram gap instead of trusting `building::num_floors`. Only
    /// meaningful with hierarchical clustering.
    bool estimate_floor_count = false;
    std::size_t min_floors = 2;   ///< search bounds for the estimate
    std::size_t max_floors = 12;
    std::uint64_t seed = 7;  ///< drives clustering restarts and TSP restarts
    /// Worker threads for the hot kernels (RF-GNN products, k-means
    /// assignment, UPGMA distance initialisation, profile similarity).
    /// 0 = hardware_concurrency; 1 runs fully serial. Every parallel kernel
    /// is bit-identical to its serial form, so this knob never changes
    /// results — only wall clock.
    std::size_t num_threads = 0;
};

/// Canonical fingerprint of a pipeline configuration: an FNV-1a 64 digest
/// over a fixed, versioned field-by-field serialisation of every knob that
/// can change pipeline *results* — including the seeds. `num_threads` is
/// deliberately excluded: every parallel kernel is bit-identical to its
/// serial form (the repo-wide contract), so results never depend on it and
/// cached results stay valid across worker counts. Configs fingerprint
/// equal iff they produce bit-identical results on every building; the API
/// layer's `result_cache` keys on (building `data::content_hash`, this).
/// New config fields MUST be folded in here (and the version tag bumped).
[[nodiscard]] std::uint64_t config_fingerprint(const fis_one_config& cfg) noexcept;

/// Everything the pipeline produces for one building.
struct fis_one_result {
    /// Number of clusters used (== building::num_floors unless
    /// `estimate_floor_count` chose otherwise).
    std::size_t num_clusters = 0;
    /// Per-sample cluster label; −1 for the labeled sample when it was
    /// excluded from clustering (arbitrary-floor protocol).
    std::vector<int> assignment;
    /// Floor assigned to each cluster (0 = bottom).
    std::vector<int> cluster_to_floor;
    /// Per-sample predicted floor (labeled sample gets its known label).
    std::vector<int> predicted_floor;
    /// Learned sample embeddings (num_samples × dim), exposed for
    /// diagnostics and for the inductive-inference example.
    linalg::matrix embeddings;
    /// §VI Case 1 (odd floors, middle-floor label): orientation ambiguous.
    bool ambiguous = false;

    // --- metrics vs ground truth (paper §V-A) ---
    /// False when the building carries (almost) no ground truth — e.g. a
    /// real imported scan log where only the single labeled scan has a
    /// known floor. Metrics below are 0 and meaningless in that case.
    bool has_ground_truth = true;
    double ari = 0.0;
    double nmi = 0.0;
    double edit_distance = 0.0;
};

/// Scores for an externally produced clustering run through FIS-ONE's
/// indexing (the paper's protocol for all baselines).
struct pipeline_scores {
    double ari = 0.0;
    double nmi = 0.0;
    double edit_distance = 0.0;
};

/// The system. Construct once, run per building.
class fis_one {
public:
    /// \throws std::invalid_argument on degenerate configs.
    explicit fis_one(fis_one_config cfg);

    /// Run the full pipeline on \p b (which must satisfy
    /// `building::validate`). Deterministic given (config seed, building).
    [[nodiscard]] fis_one_result run(const data::building& b) const;

    [[nodiscard]] const fis_one_config& config() const noexcept { return cfg_; }

private:
    fis_one_config cfg_;
};

/// Index an externally produced clustering with FIS-ONE's spillover
/// indexing (bottom-floor protocol: the start cluster is the one holding
/// the labeled sample) and score it against ground truth. Used to adapt
/// the SDCN/DAEGC/METIS/MDS baselines exactly as the paper does (§V-A).
/// \param assignment per-sample cluster labels in [0, b.num_floors).
[[nodiscard]] pipeline_scores evaluate_with_indexing(const data::building& b,
                                                     const std::vector<int>& assignment,
                                                     indexing::similarity_kind similarity,
                                                     indexing::tsp_solver solver,
                                                     std::uint64_t seed);

}  // namespace fisone::core
