#include "fis_one.hpp"

#include <memory>
#include <stdexcept>

#include "cluster/floor_count.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/kmeans.hpp"
#include "eval/metrics.hpp"
#include "graph/bipartite_graph.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace fisone::core {

std::uint64_t config_fingerprint(const fis_one_config& cfg) noexcept {
    util::fnv1a64 h;
    // Domain separator + layout version: bump whenever a field is added,
    // removed, or re-ordered below — a stale fingerprint must never alias
    // a config with different result semantics.
    h.str("fisone-config-fingerprint/v1");
    // RF-GNN knobs.
    h.size(cfg.gnn.embedding_dim);
    h.size(cfg.gnn.num_hops);
    h.size(cfg.gnn.neighbor_samples);
    h.boolean(cfg.gnn.use_attention);
    h.boolean(cfg.gnn.train_base_embeddings);
    h.u8(static_cast<std::uint8_t>(cfg.gnn.act));
    h.size(cfg.gnn.walks.walk_length);
    h.size(cfg.gnn.walks.walks_per_node);
    h.size(cfg.gnn.walks.window);
    h.size(cfg.gnn.negatives);
    h.f64(cfg.gnn.negative_exponent);
    h.size(cfg.gnn.epochs);
    h.size(cfg.gnn.batch_pairs);
    h.f64(cfg.gnn.learning_rate);
    h.f64(cfg.gnn.grad_clip);
    h.u64(cfg.gnn.seed);
    // Pipeline-level switches.
    h.u8(static_cast<std::uint8_t>(cfg.clustering));
    h.u8(static_cast<std::uint8_t>(cfg.similarity));
    h.u8(static_cast<std::uint8_t>(cfg.solver));
    h.u8(static_cast<std::uint8_t>(cfg.label));
    h.boolean(cfg.estimate_floor_count);
    h.size(cfg.min_floors);
    h.size(cfg.max_floors);
    h.u64(cfg.seed);
    // cfg.num_threads intentionally NOT hashed — results are thread-count
    // invariant by the repo-wide bit-identity contract.
    return h.digest();
}

namespace {

/// Cluster embedding rows into k clusters with the configured algorithm.
std::vector<int> cluster_embeddings(const linalg::matrix& points, std::size_t k,
                                    clustering_algorithm alg, util::rng& gen,
                                    util::thread_pool* pool) {
    if (alg == clustering_algorithm::hierarchical)
        return cluster::upgma_cluster(points, k, pool);
    return cluster::kmeans(points, k, gen, {}, pool).assignment;
}

/// True floors of every sample (evaluation only).
std::vector<int> true_floors(const data::building& b) {
    std::vector<int> floors(b.samples.size());
    for (std::size_t i = 0; i < b.samples.size(); ++i) floors[i] = b.samples[i].true_floor;
    return floors;
}

/// Metrics restricted to samples with both a cluster label and known
/// ground truth. Returns false when too few scored samples exist (e.g.
/// imported corpora where only the labeled scan has a known floor).
bool score(const data::building& b, const std::vector<int>& assignment,
           const std::vector<int>& cluster_to_floor, pipeline_scores& s) {
    const std::vector<int> truth_all = true_floors(b);
    std::vector<int> pred, truth;
    std::vector<int> assignment_known(assignment.size(), -1);
    pred.reserve(assignment.size());
    truth.reserve(assignment.size());
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        if (assignment[i] == -1 || truth_all[i] < 0) continue;
        assignment_known[i] = assignment[i];
        pred.push_back(assignment[i]);
        truth.push_back(truth_all[i]);
    }
    if (pred.size() < 2) return false;
    s.ari = eval::adjusted_rand_index(pred, truth);
    s.nmi = eval::normalized_mutual_information(pred, truth);
    const std::vector<int> majority =
        eval::cluster_majority_floor(assignment_known, truth_all, cluster_to_floor.size());
    s.edit_distance = eval::indexing_edit_distance(cluster_to_floor, majority);
    return true;
}

}  // namespace

fis_one::fis_one(fis_one_config cfg) : cfg_(cfg) {
    if (cfg.gnn.embedding_dim == 0)
        throw std::invalid_argument("fis_one: embedding_dim must be > 0");
}

fis_one_result fis_one::run(const data::building& b) const {
    b.validate();
    util::rng gen(cfg_.seed ^ 0xf15f0e1ULL);

    // One pool per run, shared by every kernel below. All pooled kernels
    // are bit-identical to their serial forms, so results do not depend on
    // this knob (see fis_one_config::num_threads).
    const std::size_t num_threads = util::resolve_num_threads(cfg_.num_threads);
    std::unique_ptr<util::thread_pool> owned_pool;
    if (num_threads > 1) owned_pool = std::make_unique<util::thread_pool>(num_threads);
    util::thread_pool* const pool = owned_pool.get();

    // --- 1. graph construction + RF-GNN representation learning ---
    const graph::bipartite_graph g = [&] {
        obs::scoped_span span("pipeline.graph_build");
        return graph::bipartite_graph::from_building(b);
    }();
    fis_one_result result;
    {
        obs::scoped_span span("pipeline.gnn_embed");
        gnn::rf_gnn model(g, cfg_.gnn, pool);
        model.train();
        result.embeddings = model.embed_samples();
    }

    const std::size_t n = b.samples.size();
    std::size_t k = b.num_floors;
    if (cfg_.estimate_floor_count) {
        // Unsupervised extension: infer the floor count from the dendrogram
        // gap before clustering (see cluster/floor_count.hpp).
        obs::scoped_span span("pipeline.floor_count");
        k = cluster::estimate_floor_count(result.embeddings, cfg_.min_floors, cfg_.max_floors,
                                          pool)
                .num_floors;
    }
    result.num_clusters = k;

    if (cfg_.label == label_mode::bottom_floor) {
        // --- 2. cluster all samples ---
        {
            obs::scoped_span span("pipeline.cluster");
            result.assignment =
                cluster_embeddings(result.embeddings, k, cfg_.clustering, gen, pool);
        }

        // --- 3. index clusters, anchored at the labeled sample's cluster ---
        obs::scoped_span span("pipeline.index");
        const auto profiles = indexing::build_profiles(b, result.assignment, k);
        const linalg::matrix sim = indexing::similarity_matrix(profiles, cfg_.similarity, pool);
        const auto start = static_cast<std::size_t>(result.assignment[b.labeled_sample]);
        const indexing::indexing_result idx =
            indexing::index_from_bottom(sim, start, cfg_.solver, gen);
        result.cluster_to_floor = idx.cluster_to_floor;
        result.ambiguous = false;
    } else {
        // §VI: exclude the labeled sample from clustering, solve free-start,
        // orient by embedding distance to the two candidate clusters.
        linalg::matrix points(n - 1, result.embeddings.cols());
        std::vector<std::size_t> owner;  // row in points → sample index
        owner.reserve(n - 1);
        for (std::size_t i = 0; i < n; ++i) {
            if (i == b.labeled_sample) continue;
            const auto row = result.embeddings.row(i);
            for (std::size_t j = 0; j < points.cols(); ++j) points(owner.size(), j) = row[j];
            owner.push_back(i);
        }
        const std::vector<int> sub_assignment = [&] {
            obs::scoped_span span("pipeline.cluster");
            return cluster_embeddings(points, k, cfg_.clustering, gen, pool);
        }();
        result.assignment.assign(n, -1);
        for (std::size_t r = 0; r < owner.size(); ++r)
            result.assignment[owner[r]] = sub_assignment[r];

        obs::scoped_span span("pipeline.index");
        const auto profiles = indexing::build_profiles(b, result.assignment, k);
        const linalg::matrix sim = indexing::similarity_matrix(profiles, cfg_.similarity, pool);

        // d(r, C_i): mean distance from the labeled embedding to each cluster.
        std::vector<double> dist_to(k, 0.0);
        std::vector<std::size_t> counts(k, 0);
        const auto labeled_row = result.embeddings.row(b.labeled_sample);
        for (std::size_t i = 0; i < n; ++i) {
            if (result.assignment[i] == -1) continue;
            const auto c = static_cast<std::size_t>(result.assignment[i]);
            dist_to[c] += linalg::euclidean_distance(labeled_row, result.embeddings.row(i));
            ++counts[c];
        }
        for (std::size_t c = 0; c < k; ++c)
            if (counts[c] > 0) dist_to[c] /= static_cast<double>(counts[c]);

        const indexing::indexing_result idx = indexing::index_from_arbitrary(
            sim, b.labeled_floor, dist_to, cfg_.solver, gen);
        result.cluster_to_floor = idx.cluster_to_floor;
        result.ambiguous = idx.ambiguous;
    }

    // --- 4. per-sample floor predictions ---
    result.predicted_floor.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        if (result.assignment[i] >= 0)
            result.predicted_floor[i] =
                result.cluster_to_floor[static_cast<std::size_t>(result.assignment[i])];
    }
    result.predicted_floor[b.labeled_sample] = b.labeled_floor;  // the known label

    // --- 5. metrics (only where ground truth exists) ---
    pipeline_scores s;
    result.has_ground_truth = score(b, result.assignment, result.cluster_to_floor, s);
    result.ari = s.ari;
    result.nmi = s.nmi;
    result.edit_distance = s.edit_distance;
    return result;
}

pipeline_scores evaluate_with_indexing(const data::building& b,
                                       const std::vector<int>& assignment,
                                       indexing::similarity_kind similarity,
                                       indexing::tsp_solver solver, std::uint64_t seed) {
    if (assignment.size() != b.samples.size())
        throw std::invalid_argument("evaluate_with_indexing: assignment size mismatch");
    util::rng gen(seed ^ 0xba5e11e5ULL);
    const std::size_t k = b.num_floors;
    const auto profiles = indexing::build_profiles(b, assignment, k);
    const linalg::matrix sim = indexing::similarity_matrix(profiles, similarity);
    const int labeled_cluster = assignment[b.labeled_sample];
    if (labeled_cluster < 0)
        throw std::invalid_argument("evaluate_with_indexing: labeled sample unassigned");
    const indexing::indexing_result idx = indexing::index_from_bottom(
        sim, static_cast<std::size_t>(labeled_cluster), solver, gen);
    pipeline_scores s;
    if (!score(b, assignment, idx.cluster_to_floor, s))
        throw std::invalid_argument("evaluate_with_indexing: building has no ground truth");
    return s;
}

}  // namespace fisone::core
