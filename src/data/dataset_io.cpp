#include "dataset_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace fisone::data {

namespace {

constexpr const char* kMagic = "# fisone-building v1";

/// Shortest text that parses back to the exact double. Default ostream
/// precision (6 digits) would silently perturb RSS values on a round-trip,
/// breaking the bit-identity between an in-memory corpus and the same
/// corpus served from a disk store.
void write_double(std::ostream& out, double x) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), x);
    if (ec != std::errc{}) throw std::ios_base::failure("save_building: to_chars failed");
    out.write(buf, end - buf);
}

}  // namespace

void save_building(const building& b, std::ostream& out) {
    out << kMagic << '\n';
    out << "name," << b.name << '\n';
    out << "floors," << b.num_floors << '\n';
    out << "macs," << b.num_macs << '\n';
    out << "labeled_sample," << b.labeled_sample << '\n';
    out << "labeled_floor," << b.labeled_floor << '\n';
    for (const rf_sample& s : b.samples) {
        out << "sample," << s.true_floor << ',' << s.device_id;
        for (const rf_observation& o : s.observations) {
            out << ',' << o.mac_id << ':';
            write_double(out, o.rss_dbm);
        }
        out << '\n';
    }
    if (!out) throw std::ios_base::failure("save_building: write error");
}

building load_building(std::istream& in) {
    std::string line;
    if (!std::getline(in, line) || util::trim(line) != kMagic)
        throw std::invalid_argument("load_building: bad magic line");

    building b;
    while (std::getline(in, line)) {
        if (util::trim(line).empty()) continue;
        const auto fields = util::split_fields(line);
        const std::string& key = fields.front();
        if (key == "name") {
            if (fields.size() != 2) throw std::invalid_argument("load_building: bad name row");
            b.name = fields[1];
        } else if (key == "floors") {
            b.num_floors = static_cast<std::size_t>(util::parse_int(fields.at(1)));
        } else if (key == "macs") {
            b.num_macs = static_cast<std::size_t>(util::parse_int(fields.at(1)));
        } else if (key == "labeled_sample") {
            b.labeled_sample = static_cast<std::size_t>(util::parse_int(fields.at(1)));
        } else if (key == "labeled_floor") {
            b.labeled_floor = static_cast<std::int32_t>(util::parse_int(fields.at(1)));
        } else if (key == "sample") {
            if (fields.size() < 4)
                throw std::invalid_argument("load_building: sample row needs >= 1 observation");
            rf_sample s;
            s.true_floor = static_cast<std::int32_t>(util::parse_int(fields.at(1)));
            s.device_id = static_cast<std::uint32_t>(util::parse_int(fields.at(2)));
            for (std::size_t i = 3; i < fields.size(); ++i) {
                const auto pos = fields[i].find(':');
                if (pos == std::string::npos)
                    throw std::invalid_argument("load_building: observation missing ':'");
                rf_observation o;
                o.mac_id = static_cast<std::uint32_t>(util::parse_int(fields[i].substr(0, pos)));
                o.rss_dbm = util::parse_double(fields[i].substr(pos + 1));
                s.observations.push_back(o);
            }
            b.samples.push_back(std::move(s));
        } else {
            throw std::invalid_argument("load_building: unknown row key '" + key + "'");
        }
    }
    b.validate();
    return b;
}

void save_building_file(const building& b, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::ios_base::failure("save_building_file: cannot open " + path);
    save_building(b, out);
}

building load_building_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::ios_base::failure("load_building_file: cannot open " + path);
    return load_building(in);
}

linalg::matrix to_rss_matrix(const building& b, double fill_dbm) {
    linalg::matrix m(b.samples.size(), b.num_macs, fill_dbm);
    for (std::size_t i = 0; i < b.samples.size(); ++i)
        for (const rf_observation& o : b.samples[i].observations) {
            double& cell = m(i, o.mac_id);
            if (cell == fill_dbm || o.rss_dbm > cell) cell = o.rss_dbm;
        }
    return m;
}

}  // namespace fisone::data
