#include "scan_log.hpp"

#include <fstream>
#include <istream>
#include <stdexcept>

#include "util/csv.hpp"

namespace fisone::data {

imported_building import_scan_log(std::istream& in, const scan_log_options& opts) {
    if (opts.num_floors < 2)
        throw std::invalid_argument("import_scan_log: num_floors must be >= 2");

    imported_building out;
    out.building_data.name = opts.building_name;
    out.building_data.num_floors = opts.num_floors;

    std::string line;
    std::size_t line_no = 0;
    std::size_t first_labeled = static_cast<std::size_t>(-1);
    while (std::getline(in, line)) {
        ++line_no;
        const auto trimmed = util::trim(line);
        if (trimmed.empty() || trimmed.front() == '#') continue;

        const auto fields = util::split_fields(trimmed);
        if (fields.size() < 3)
            throw std::invalid_argument("import_scan_log: line " + std::to_string(line_no) +
                                        ": expected device,floor,mac:rss,...");
        rf_sample sample;
        sample.device_id = static_cast<std::uint32_t>(util::parse_int(fields[0]));

        if (fields[1] == "?") {
            sample.true_floor = -1;
        } else {
            const long long floor = util::parse_int(fields[1]);
            if (floor < 0 || static_cast<std::size_t>(floor) >= opts.num_floors)
                throw std::invalid_argument("import_scan_log: line " + std::to_string(line_no) +
                                            ": floor out of range");
            sample.true_floor = static_cast<std::int32_t>(floor);
            ++out.labeled_scans;
            if (first_labeled == static_cast<std::size_t>(-1))
                first_labeled = out.building_data.samples.size();
        }

        for (std::size_t i = 2; i < fields.size(); ++i) {
            const auto pos = fields[i].rfind(':');
            if (pos == std::string::npos || pos == 0 || pos + 1 >= fields[i].size())
                throw std::invalid_argument("import_scan_log: line " + std::to_string(line_no) +
                                            ": malformed observation '" + fields[i] + "'");
            rf_observation obs;
            obs.mac_id = out.registry.id_of(fields[i].substr(0, pos));
            obs.rss_dbm = util::parse_double(fields[i].substr(pos + 1));
            sample.observations.push_back(obs);
        }
        out.building_data.samples.push_back(std::move(sample));
    }

    if (out.building_data.samples.empty())
        throw std::invalid_argument("import_scan_log: no scans in input");
    if (out.labeled_scans == 0)
        throw std::invalid_argument(
            "import_scan_log: FIS-ONE needs exactly one floor-labeled scan; found none");
    if (out.labeled_scans > 1 && !opts.keep_extra_labels)
        throw std::invalid_argument(
            "import_scan_log: more than one labeled scan; pass keep_extra_labels to allow "
            "(extras become evaluation ground truth)");

    out.building_data.num_macs = out.registry.size();
    out.building_data.labeled_sample = first_labeled;
    out.building_data.labeled_floor = out.building_data.samples[first_labeled].true_floor;
    out.building_data.validate();
    return out;
}

imported_building import_scan_log_file(const std::string& path, const scan_log_options& opts) {
    std::ifstream in(path);
    if (!in) throw std::ios_base::failure("import_scan_log_file: cannot open " + path);
    return import_scan_log(in, opts);
}

}  // namespace fisone::data
