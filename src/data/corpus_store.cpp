#include "corpus_store.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <unordered_map>
#include <unordered_set>

#include "dataset_io.hpp"
#include "util/csv.hpp"

namespace fisone::data {

namespace {

constexpr const char* kManifestMagic = "# fisone-corpus v1";
constexpr const char* kShardMagic = "# fisone-shard v1";
constexpr const char* kBlockEnd = "end";
constexpr const char* kManifestName = "manifest.csv";
constexpr const char* kManifestTempSuffix = ".tmp";

std::string join_path(const std::string& dir, const std::string& name) {
    return (std::filesystem::path(dir) / name).string();
}

}  // namespace

// --- manifest ---------------------------------------------------------------

std::size_t corpus_manifest::total_buildings() const noexcept {
    std::size_t n = 0;
    for (const shard_entry& s : shards) n += s.num_buildings;
    return n;
}

void corpus_manifest::validate() const {
    // The manifest is an unquoted CSV: a delimiter or newline in the name
    // would write a store that can never be opened again. Fail at write
    // time instead.
    if (corpus_name.find_first_of(",\n\r") != std::string::npos)
        throw std::invalid_argument(
            "corpus_manifest: corpus name must not contain ',' or newlines");
    std::size_t expected_first = 0;
    std::unordered_set<std::string> seen_files;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const shard_entry& s = shards[i];
        if (s.filename.empty())
            throw std::invalid_argument("corpus_manifest: shard " + std::to_string(i) +
                                        " has an empty filename");
        if (s.num_buildings == 0)
            throw std::invalid_argument("corpus_manifest: shard " + std::to_string(i) +
                                        " is empty");
        if (s.first_index != expected_first)
            throw std::invalid_argument("corpus_manifest: shard " + std::to_string(i) +
                                        " starts at " + std::to_string(s.first_index) +
                                        ", expected " + std::to_string(expected_first));
        // A shard file listed twice mounts the same buildings under two
        // corpus-index ranges: every building id in the repeated file
        // silently shadows a distinct building the corpus claims to hold.
        if (!seen_files.insert(s.filename).second)
            throw std::invalid_argument("corpus_manifest: shard file '" + s.filename +
                                        "' is listed more than once — its building ids would "
                                        "duplicate under two index ranges");
        expected_first += s.num_buildings;
    }
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        const delta_entry& d = deltas[i];
        if (d.filename.empty())
            throw std::invalid_argument("corpus_manifest: delta " + std::to_string(i) +
                                        " has an empty filename");
        if (d.num_records == 0)
            throw std::invalid_argument("corpus_manifest: delta " + std::to_string(i) +
                                        " is empty");
        if (!seen_files.insert(d.filename).second)
            throw std::invalid_argument("corpus_manifest: delta file '" + d.filename +
                                        "' is listed more than once — its records would apply "
                                        "twice");
    }
    // Each durable append adds exactly one delta row and bumps the version
    // by one; any other relationship means the manifest is torn.
    if (version != deltas.size())
        throw std::invalid_argument("corpus_manifest: version " + std::to_string(version) +
                                    " does not match " + std::to_string(deltas.size()) +
                                    " delta rows");
}

void save_manifest(const corpus_manifest& m, std::ostream& out) {
    m.validate();
    out << kManifestMagic << '\n';
    out << "corpus," << m.corpus_name << '\n';
    // Omitted while 0: a write-once store's manifest stays byte-identical
    // to what every pre-ingestion version of this code wrote.
    if (m.version != 0) out << "version," << m.version << '\n';
    for (const shard_entry& s : m.shards)
        out << "shard," << s.filename << ',' << s.first_index << ',' << s.num_buildings << '\n';
    for (const delta_entry& d : m.deltas)
        out << "delta," << d.filename << ',' << d.num_records << '\n';
    if (!out) throw std::ios_base::failure("save_manifest: write error");
}

corpus_manifest load_manifest(std::istream& in) {
    std::string line;
    if (!std::getline(in, line) || util::trim(line) != kManifestMagic)
        throw std::invalid_argument("load_manifest: bad magic line");

    corpus_manifest m;
    bool saw_corpus_row = false;
    while (std::getline(in, line)) {
        if (util::trim(line).empty()) continue;
        const auto fields = util::split_fields(line);
        const std::string& key = fields.front();
        if (key == "corpus") {
            if (fields.size() != 2) throw std::invalid_argument("load_manifest: bad corpus row");
            // A second corpus row would silently shadow the first name.
            if (saw_corpus_row)
                throw std::invalid_argument("load_manifest: duplicate corpus row '" + fields[1] +
                                            "' (already named '" + m.corpus_name + "')");
            saw_corpus_row = true;
            m.corpus_name = fields[1];
        } else if (key == "shard") {
            if (fields.size() != 4) throw std::invalid_argument("load_manifest: bad shard row");
            shard_entry s;
            s.filename = fields[1];
            s.first_index = static_cast<std::size_t>(util::parse_int(fields[2]));
            s.num_buildings = static_cast<std::size_t>(util::parse_int(fields[3]));
            m.shards.push_back(std::move(s));
        } else if (key == "version") {
            if (fields.size() != 2)
                throw std::invalid_argument("load_manifest: bad version row");
            m.version = static_cast<std::uint64_t>(util::parse_int(fields[1]));
        } else if (key == "delta") {
            if (fields.size() != 3) throw std::invalid_argument("load_manifest: bad delta row");
            delta_entry d;
            d.filename = fields[1];
            d.num_records = static_cast<std::size_t>(util::parse_int(fields[2]));
            m.deltas.push_back(std::move(d));
        } else {
            throw std::invalid_argument("load_manifest: unknown row key '" + key + "'");
        }
    }
    m.validate();
    return m;
}

// --- shard_writer -----------------------------------------------------------

shard_writer::shard_writer(const std::string& path) : out_(path) {
    if (!out_) throw std::ios_base::failure("shard_writer: cannot open " + path);
    out_ << kShardMagic << '\n';
}

shard_writer::~shard_writer() {
    try {
        close();
    } catch (...) {
        // Destructors must not throw; call close() to observe flush errors.
    }
}

void shard_writer::append(const building& b) {
    if (closed_) throw std::logic_error("shard_writer::append: writer is closed");
    save_building(b, out_);
    out_ << kBlockEnd << '\n';
    if (!out_) throw std::ios_base::failure("shard_writer::append: write error");
    ++count_;
}

void shard_writer::close() {
    if (closed_) return;
    closed_ = true;
    out_.close();
    if (out_.fail()) throw std::ios_base::failure("shard_writer::close: flush error");
}

// --- shard_reader -----------------------------------------------------------

shard_reader::shard_reader(const std::string& path) : path_(path), in_(path) {
    if (!in_) throw std::ios_base::failure("shard_reader: cannot open " + path);
    std::string line;
    if (!std::getline(in_, line) || util::trim(line) != kShardMagic)
        throw std::invalid_argument("shard_reader: bad shard magic in " + path);
}

std::optional<building> shard_reader::next() {
    // Gather one building block (everything up to the `end` marker) and
    // hand it to dataset_io — the block is the only corpus text resident.
    std::string block;
    std::string line;
    bool saw_end = false;
    while (std::getline(in_, line)) {
        if (util::trim(line) == kBlockEnd) {
            saw_end = true;
            break;
        }
        block += line;
        block += '\n';
    }
    if (!saw_end) {
        if (block.empty()) return std::nullopt;  // clean end of shard
        throw std::invalid_argument("shard_reader: truncated block " +
                                    std::to_string(position_) + " in " + path_);
    }
    std::istringstream block_stream(std::move(block));
    building b = load_building(block_stream);
    ++position_;
    return b;
}

// --- delta merge ------------------------------------------------------------

void apply_delta_record(building& base, const building& record) {
    if (base.name != record.name)
        throw std::invalid_argument("apply_delta_record: record for '" + record.name +
                                    "' applied to building '" + base.name + "'");
    base.num_floors = std::max(base.num_floors, record.num_floors);
    base.num_macs = std::max(base.num_macs, record.num_macs);
    base.samples.insert(base.samples.end(), record.samples.begin(), record.samples.end());
}

std::string manifest_path(const std::string& dir) { return join_path(dir, kManifestName); }

std::string manifest_temp_path(const std::string& dir) {
    return join_path(dir, std::string(kManifestName) + kManifestTempSuffix);
}

// --- store ------------------------------------------------------------------

corpus_manifest write_corpus_store(const corpus& c, const std::string& dir,
                                   std::size_t shard_size) {
    if (shard_size == 0) throw std::invalid_argument("write_corpus_store: shard_size is 0");
    if (c.buildings.empty()) throw std::invalid_argument("write_corpus_store: empty corpus");
    std::filesystem::create_directories(dir);

    const std::size_t total = c.buildings.size();
    corpus_manifest m;
    m.corpus_name = c.name;
    for (std::size_t first = 0; first < total; first += shard_size) {
        const std::size_t count = std::min(shard_size, total - first);
        // Zero-padded, so shard files list in corpus order.
        std::string filename = "shard-";
        const std::string digits = std::to_string(first / shard_size);
        filename.append(digits.size() < 4 ? 4 - digits.size() : 0, '0');
        filename += digits;
        filename += ".csv";

        shard_writer writer(join_path(dir, filename));
        for (std::size_t i = 0; i < count; ++i) writer.append(c.buildings[first + i]);
        writer.close();
        m.shards.push_back(shard_entry{std::move(filename), first, count});
    }

    std::ofstream manifest_out(join_path(dir, kManifestName));
    if (!manifest_out)
        throw std::ios_base::failure("write_corpus_store: cannot open manifest in " + dir);
    save_manifest(m, manifest_out);
    manifest_out.close();
    if (manifest_out.fail())
        throw std::ios_base::failure("write_corpus_store: manifest flush error");
    return m;
}

corpus_store corpus_store::open(const std::string& dir) {
    // An interrupted append may leave `manifest.csv.tmp` behind: the
    // rename that would have made it visible never ran, so by the
    // durable-before-visible contract it holds a manifest that never
    // existed. Sweep it instead of letting it confuse a later append.
    std::error_code sweep_ec;
    std::filesystem::remove(manifest_temp_path(dir), sweep_ec);
    std::ifstream in(join_path(dir, kManifestName));
    if (!in) throw std::ios_base::failure("corpus_store::open: cannot open manifest in " + dir);
    corpus_store store;
    store.dir_ = dir;
    store.manifest_ = load_manifest(in);
    return store;
}

std::string corpus_store::shard_path(std::size_t shard_index) const {
    if (shard_index >= manifest_.shards.size())
        throw std::out_of_range("corpus_store::shard_path: shard " + std::to_string(shard_index) +
                                " of " + std::to_string(manifest_.shards.size()));
    return join_path(dir_, manifest_.shards[shard_index].filename);
}

shard_reader corpus_store::open_shard(std::size_t shard_index) const {
    return shard_reader(shard_path(shard_index));
}

void corpus_store::for_each_building(
    const std::function<void(std::size_t, building&&)>& fn) const {
    for (std::size_t s = 0; s < manifest_.shards.size(); ++s) {
        const shard_entry& entry = manifest_.shards[s];
        shard_reader reader = open_shard(s);
        std::size_t offset = 0;
        while (auto b = reader.next()) {
            if (offset >= entry.num_buildings)
                throw std::invalid_argument("corpus_store: shard " + entry.filename +
                                            " holds more buildings than its manifest row");
            fn(entry.first_index + offset, std::move(*b));
            ++offset;
        }
        if (offset != entry.num_buildings)
            throw std::invalid_argument("corpus_store: shard " + entry.filename + " holds " +
                                        std::to_string(offset) + " buildings, manifest says " +
                                        std::to_string(entry.num_buildings));
    }
}

void corpus_store::for_each_building_effective(
    const std::function<void(std::size_t, building&&)>& fn) const {
    // Load every delta record, grouped by building name in first-appearance
    // order. The records (one append batch each) are resident; the base
    // corpus still streams one building at a time.
    std::unordered_map<std::string, std::vector<building>> patches;
    std::vector<std::string> order;  // first appearance across all deltas
    for (const delta_entry& entry : manifest_.deltas) {
        shard_reader reader(join_path(dir_, entry.filename));
        std::size_t records = 0;
        while (auto record = reader.next()) {
            auto [it, fresh] = patches.try_emplace(record->name);
            if (fresh) order.push_back(record->name);
            it->second.push_back(std::move(*record));
            ++records;
        }
        if (records != entry.num_records)
            throw std::invalid_argument("corpus_store: delta " + entry.filename + " holds " +
                                        std::to_string(records) + " records, manifest says " +
                                        std::to_string(entry.num_records));
    }
    for_each_building([&](std::size_t index, building&& b) {
        const auto it = patches.find(b.name);
        if (it != patches.end()) {
            for (const building& record : it->second) apply_delta_record(b, record);
            patches.erase(it);
        }
        fn(index, std::move(b));
    });
    // Whatever the base did not consume introduces new buildings at the
    // tail, in first-appearance order: the first record is the building,
    // later records fold onto it.
    std::size_t next = manifest_.total_buildings();
    for (const std::string& name : order) {
        const auto it = patches.find(name);
        if (it == patches.end()) continue;  // consumed by a base building
        building b = std::move(it->second.front());
        for (std::size_t i = 1; i < it->second.size(); ++i)
            apply_delta_record(b, it->second[i]);
        patches.erase(it);
        fn(next++, std::move(b));
    }
}

corpus corpus_store::load_all() const {
    corpus c;
    c.name = manifest_.corpus_name;
    c.buildings.resize(manifest_.total_buildings());
    for_each_building([&](std::size_t index, building&& b) { c.buildings[index] = std::move(b); });
    return c;
}

corpus corpus_store::load_all_effective() const {
    corpus c;
    c.name = manifest_.corpus_name;
    for_each_building_effective([&](std::size_t index, building&& b) {
        if (index >= c.buildings.size()) c.buildings.resize(index + 1);
        c.buildings[index] = std::move(b);
    });
    return c;
}

}  // namespace fisone::data
