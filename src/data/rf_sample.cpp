#include "rf_sample.hpp"

#include "util/hash.hpp"

namespace fisone::data {

void building::validate() const {
    if (num_floors < 2)
        throw std::invalid_argument("building::validate: need at least 2 floors");
    if (samples.empty()) throw std::invalid_argument("building::validate: no samples");
    if (labeled_sample >= samples.size())
        throw std::invalid_argument("building::validate: labeled_sample out of range");
    if (labeled_floor < 0 || static_cast<std::size_t>(labeled_floor) >= num_floors)
        throw std::invalid_argument("building::validate: labeled_floor out of range");
    if (samples[labeled_sample].true_floor != labeled_floor)
        throw std::invalid_argument(
            "building::validate: label does not match ground truth of labeled sample");
    for (const rf_sample& s : samples) {
        if (s.observations.empty())
            throw std::invalid_argument("building::validate: sample with no observations");
        // −1 means "unknown ground truth" (imported crowdsourced scans).
        if (s.true_floor != -1 &&
            (s.true_floor < 0 || static_cast<std::size_t>(s.true_floor) >= num_floors))
            throw std::invalid_argument("building::validate: ground-truth floor out of range");
        for (const rf_observation& o : s.observations) {
            if (o.mac_id >= num_macs)
                throw std::invalid_argument("building::validate: mac_id out of range");
            if (o.rss_dbm > 0.0 || o.rss_dbm < -120.0)
                throw std::invalid_argument(
                    "building::validate: RSS outside plausible range [-120, 0] dBm");
        }
    }
}

std::vector<std::size_t> building::samples_per_floor() const {
    std::vector<std::size_t> counts(num_floors, 0);
    for (const rf_sample& s : samples)
        if (s.true_floor >= 0 && static_cast<std::size_t>(s.true_floor) < num_floors)
            ++counts[static_cast<std::size_t>(s.true_floor)];
    return counts;
}

std::uint64_t content_hash(const building& b) noexcept {
    util::fnv1a64 h;
    // Domain separator + layout version: bump when the canonical walk
    // changes so stale cache entries can never alias new content.
    h.str("fisone-building-hash/v1");
    visit_building_canonical(b, h);
    return h.digest();
}

}  // namespace fisone::data
