#pragma once

/// \file scan_log.hpp
/// Importer for raw crowdsourced scan logs — the format a real deployment
/// would collect, with textual MAC addresses and (mostly) no floor labels.
/// One line per scan:
///
///   <device_id>,<floor|?>,<mac>:<rss>,<mac>:<rss>,...
///
/// where `floor` is `?` for the unlabeled crowdsourced majority and an
/// integer for surveyed scans. Exactly one labeled scan is required to run
/// FIS-ONE; `import_scan_log` enforces that protocol by default (the first
/// labeled scan becomes `building::labeled_sample`; remaining labels are
/// kept as ground truth for evaluation if `keep_extra_labels` is set, and
/// rejected otherwise).
///
/// MAC addresses are interned through `mac_registry`, so heterogeneous
/// vendor formats (case, separators) are preserved verbatim as keys.

#include <iosfwd>
#include <string>

#include "rf_sample.hpp"

namespace fisone::data {

/// Options for `import_scan_log`.
struct scan_log_options {
    std::size_t num_floors = 0;     ///< required: total floors of the building
    /// Accept more than one labeled scan (extras become evaluation ground
    /// truth). Default false: the one-label protocol is enforced strictly.
    bool keep_extra_labels = false;
    std::string building_name = "imported";
};

/// Result of an import: the building plus the registry mapping dense MAC
/// ids back to the original address strings.
struct imported_building {
    building building_data;
    mac_registry registry;
    std::size_t labeled_scans = 0;  ///< how many input scans carried labels
};

/// Parse a scan log from a stream.
/// \throws std::invalid_argument on malformed lines, zero `num_floors`,
///         no labeled scan, or (without `keep_extra_labels`) more than one.
/// Unlabeled scans receive `true_floor = -1`; they are excluded from
/// metric computation by the evaluation helpers (which skip negatives) but
/// fully participate in graph construction and clustering.
[[nodiscard]] imported_building import_scan_log(std::istream& in, const scan_log_options& opts);

/// Convenience file-path overload.
[[nodiscard]] imported_building import_scan_log_file(const std::string& path,
                                                     const scan_log_options& opts);

}  // namespace fisone::data
