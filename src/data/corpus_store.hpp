#pragma once

/// \file corpus_store.hpp
/// Sharded on-disk corpus storage — the "corpora larger than memory" leg of
/// the ROADMAP north star. A store is a directory holding a `manifest.csv`
/// plus shard files, each shard a concatenation of `dataset_io` building
/// blocks:
///
///   manifest.csv:
///     # fisone-corpus v1
///     corpus,<name>
///     version,<n>                        (omitted while 0 — a write-once store)
///     shard,<filename>,<first_index>,<num_buildings>
///     ... one `shard` row per shard, in corpus order ...
///     delta,<filename>,<num_records>
///     ... one `delta` row per append batch, in append order ...
///
///   shard-NNNN.csv / delta-NNNN.csv:
///     # fisone-shard v1
///     # fisone-building v1
///     ... building rows (dataset_io format) ...
///     end
///     ... more (building block, `end`) pairs ...
///
/// `shard_reader` streams buildings one at a time, so a campaign over a
/// store never holds more than one building per worker in memory.
/// `write_corpus_store` splits deterministically: shard s holds the
/// buildings [s·shard_size, min(N, (s+1)·shard_size)) in input order, so a
/// store round-trips to the exact input corpus for every shard size.
///
/// **Live ingestion.** Base shards are immutable; appended scans land in
/// *delta* shards (same block format) listed by `delta` rows, and `version`
/// counts the appends. A delta record is "new scans for the named building":
/// `apply_delta_record` folds its samples onto the base building (the
/// one-label protocol stays the base's); a record whose name matches no
/// base building introduces a new building at the end of the corpus, in
/// first-appearance order. `for_each_building_effective` streams that merged
/// view — the corpus a cold rebuild must reproduce byte-for-byte. The
/// manifest only ever moves forward atomically (write `manifest.csv.tmp`,
/// rename over `manifest.csv` — see `ingest::append_scans`); `open` sweeps
/// a leftover `.tmp` from an interrupted append instead of failing the
/// mount.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rf_sample.hpp"

namespace fisone::data {

/// One shard's manifest row. `filename` is relative to the store directory.
struct shard_entry {
    std::string filename;
    std::size_t first_index = 0;    ///< corpus index of the shard's first building
    std::size_t num_buildings = 0;
};

/// One delta shard's manifest row: the scan records of one append batch.
/// `filename` is relative to the store directory.
struct delta_entry {
    std::string filename;
    std::size_t num_records = 0;
};

/// Parsed `manifest.csv`.
struct corpus_manifest {
    std::string corpus_name;
    std::vector<shard_entry> shards;
    /// Append count: 0 for a write-once store, bumped by one per durable
    /// append. The version a client saw identifies exactly which deltas
    /// its results covered.
    std::uint64_t version = 0;
    /// Applied after the base shards, in append order.
    std::vector<delta_entry> deltas;

    /// Total buildings across all *base* shards (delta records may add
    /// more — stream `for_each_building_effective` to count the merged
    /// view).
    [[nodiscard]] std::size_t total_buildings() const noexcept;

    /// Consistency check: shard rows must tile [0, total) contiguously in
    /// order, have non-empty filenames, and never list the same shard file
    /// twice (a repeated file would mount duplicate building ids under two
    /// index ranges; the error names the offending shard file). Delta rows
    /// must be non-empty, uniquely named (against shards too), and their
    /// count must match `version` — a manifest claiming more appends than
    /// it lists (or vice versa) is torn.
    /// \throws std::invalid_argument on the first violation.
    void validate() const;
};

/// Serialise \p m. \throws std::ios_base::failure on write error,
/// std::invalid_argument when the manifest fails `validate`.
void save_manifest(const corpus_manifest& m, std::ostream& out);

/// Parse and validate a manifest.
/// \throws std::invalid_argument on malformed content.
[[nodiscard]] corpus_manifest load_manifest(std::istream& in);

/// Append-only writer for one shard file. Not thread-safe; one writer per
/// shard.
class shard_writer {
public:
    /// Opens \p path for writing and emits the shard header.
    /// \throws std::ios_base::failure when the file cannot be created.
    explicit shard_writer(const std::string& path);

    /// Writers flush on destruction; errors there are swallowed — call
    /// `close()` to observe them.
    ~shard_writer();

    shard_writer(const shard_writer&) = delete;
    shard_writer& operator=(const shard_writer&) = delete;

    /// Serialise one building block. \throws std::ios_base::failure on
    /// write error, std::logic_error after `close()`.
    void append(const building& b);

    /// Buildings appended so far.
    [[nodiscard]] std::size_t count() const noexcept { return count_; }

    /// Flush and close; \throws std::ios_base::failure if the stream went
    /// bad. Idempotent.
    void close();

private:
    std::ofstream out_;
    std::size_t count_ = 0;
    bool closed_ = false;
};

/// Streaming reader over one shard file: yields buildings one at a time and
/// never holds more than the current building (plus one text block) in
/// memory. Not thread-safe; one reader per thread.
class shard_reader {
public:
    /// Opens \p path and checks the shard header.
    /// \throws std::ios_base::failure when the file cannot be opened,
    ///         std::invalid_argument on a bad header.
    explicit shard_reader(const std::string& path);

    /// Next building, or nullopt at end of shard.
    /// \throws std::invalid_argument on a malformed or truncated block.
    [[nodiscard]] std::optional<building> next();

    /// Buildings yielded so far.
    [[nodiscard]] std::size_t position() const noexcept { return position_; }

private:
    std::string path_;  // for error messages
    std::ifstream in_;
    std::size_t position_ = 0;
};

/// Fold one delta record's scans onto the building they belong to: samples
/// append in record order, floor/MAC counts grow to cover the new scans,
/// and the base's one-label protocol (`labeled_sample` / `labeled_floor`)
/// is untouched — the label is already known, new crowdsourced scans never
/// carry one. \throws std::invalid_argument when the names differ.
void apply_delta_record(building& base, const building& record);

/// `<dir>/manifest.csv` and the temporary an atomic manifest replacement
/// goes through (`<dir>/manifest.csv.tmp`) — shared by the store reader
/// (which sweeps a leftover temp) and `ingest::append_scans` (which writes
/// through it).
[[nodiscard]] std::string manifest_path(const std::string& dir);
[[nodiscard]] std::string manifest_temp_path(const std::string& dir);

/// Shard \p c into `ceil(N / shard_size)` files under directory \p dir
/// (created if absent) and write `manifest.csv`. Deterministic: shard
/// boundaries depend only on (N, shard_size), building order is preserved.
/// Returns the manifest that was written.
/// \throws std::invalid_argument when shard_size is 0 or the corpus is
///         empty; std::ios_base::failure on I/O errors.
corpus_manifest write_corpus_store(const corpus& c, const std::string& dir,
                                   std::size_t shard_size);

/// A store opened for reading: the manifest plus path resolution. Shard
/// contents are *not* loaded — use `open_shard` / `for_each_building` to
/// stream them.
class corpus_store {
public:
    /// Read `<dir>/manifest.csv`. A leftover `manifest.csv.tmp` from an
    /// interrupted append is swept (deleted) first — the rename never
    /// happened, so the temp is invisible by contract and must not fail
    /// the mount. \throws std::ios_base::failure when the manifest cannot
    /// be opened, std::invalid_argument when malformed.
    static corpus_store open(const std::string& dir);

    [[nodiscard]] const corpus_manifest& manifest() const noexcept { return manifest_; }
    [[nodiscard]] const std::string& directory() const noexcept { return dir_; }
    [[nodiscard]] std::size_t num_shards() const noexcept { return manifest_.shards.size(); }

    /// Absolute-ish path of shard \p shard_index (directory-joined).
    /// \throws std::out_of_range on a bad index.
    [[nodiscard]] std::string shard_path(std::size_t shard_index) const;

    /// Fresh streaming reader over shard \p shard_index.
    [[nodiscard]] shard_reader open_shard(std::size_t shard_index) const;

    /// Stream every *base* building in corpus order as (corpus_index,
    /// building), one at a time — the whole corpus is never resident.
    /// Deltas are NOT applied; this is the write-once snapshot view.
    void for_each_building(const std::function<void(std::size_t, building&&)>& fn) const;

    /// Stream the *effective* corpus — base shards with every delta record
    /// applied in append order, then new buildings (names no base shard
    /// holds) at the tail in first-appearance order. This is the view a
    /// cold rebuild over the concatenated (base + delta) corpus sees. The
    /// delta records (not the base) are resident while streaming: append
    /// batches are small next to the corpus they patch.
    void for_each_building_effective(
        const std::function<void(std::size_t, building&&)>& fn) const;

    /// Materialise the whole store (tests / small corpora only).
    [[nodiscard]] corpus load_all() const;

    /// Materialise the effective (delta-applied) corpus.
    [[nodiscard]] corpus load_all_effective() const;

private:
    std::string dir_;
    corpus_manifest manifest_;
};

}  // namespace fisone::data
