#pragma once

/// \file rf_sample.hpp
/// Core data model for crowdsourced RF signals: a *sample* (one scan by one
/// contributor's device) is a list of (MAC address, RSS) observations, plus
/// a ground-truth floor that the algorithms never see — only the evaluation
/// code does. FIS-ONE's protocol exposes exactly one label per building
/// (paper §I), carried by `building::labeled_sample` / `labeled_floor`.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace fisone::data {

/// One (MAC, RSS) detection inside a scan. MAC addresses are interned to
/// dense ids by `mac_registry`.
struct rf_observation {
    std::uint32_t mac_id = 0;
    double rss_dbm = -120.0;  ///< received signal strength in dBm (negative)
};

/// One crowdsourced scan.
struct rf_sample {
    std::vector<rf_observation> observations;
    /// Ground truth, 0-based from the bottom floor; −1 = unknown (real
    /// crowdsourced scans). Evaluation only — the pipeline must never read
    /// it except for the single labeled sample, whose floor must be known.
    std::int32_t true_floor = -1;
    /// Contributing device, for device-heterogeneity modelling.
    std::uint32_t device_id = 0;
};

/// Interns MAC address strings to dense uint32 ids (and back).
class mac_registry {
public:
    /// Get-or-assign the id for \p mac.
    std::uint32_t id_of(const std::string& mac) {
        const auto it = ids_.find(mac);
        if (it != ids_.end()) return it->second;
        const auto id = static_cast<std::uint32_t>(names_.size());
        ids_.emplace(mac, id);
        names_.push_back(mac);
        return id;
    }

    /// Lookup without inserting; returns nullopt-style sentinel.
    [[nodiscard]] std::uint32_t find(const std::string& mac) const {
        const auto it = ids_.find(mac);
        return it == ids_.end() ? npos : it->second;
    }

    /// Name of \p id. \throws std::out_of_range for unknown ids.
    [[nodiscard]] const std::string& name_of(std::uint32_t id) const {
        if (id >= names_.size()) throw std::out_of_range("mac_registry::name_of");
        return names_[id];
    }

    [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

    static constexpr std::uint32_t npos = std::numeric_limits<std::uint32_t>::max();

private:
    std::unordered_map<std::string, std::uint32_t> ids_;
    std::vector<std::string> names_;
};

/// A building's worth of crowdsourced scans plus the one-label protocol.
struct building {
    std::string name;
    std::size_t num_floors = 0;
    std::size_t num_macs = 0;  ///< MAC ids are in [0, num_macs)
    std::vector<rf_sample> samples;
    /// Index into `samples` of the single floor-labeled sample.
    std::size_t labeled_sample = 0;
    /// The label itself (0-based floor index). For the paper's main setting
    /// this is 0 (bottom floor); §VI relaxes it to an arbitrary floor.
    std::int32_t labeled_floor = 0;

    /// Validate internal consistency (ids in range, labeled index valid,
    /// the label matches the ground truth of the labeled sample).
    /// \throws std::invalid_argument describing the first violation.
    void validate() const;

    /// Samples per floor, from ground truth (diagnostics / simulator tests).
    [[nodiscard]] std::vector<std::size_t> samples_per_floor() const;
};

/// The canonical field walk of a building — ONE place defines "every
/// field that makes a building the input it is, in a fixed order". Both
/// `content_hash` (hashing sink) and the API wire codec's encoder
/// (serialising sink) drive this walk, so the content address and the
/// wire form can never drift apart: a field added here reaches both.
/// \p Sink needs `str(string_view)`, `u32`, `u64`, `i32`, `f64`, each
/// encoding its value canonically (fixed-width little-endian / IEEE-754
/// bits) — see `util::fnv1a64` and the codec's `wire_writer`.
template <class Sink>
void visit_building_canonical(const building& b, Sink& s) {
    s.str(b.name);
    s.u64(b.num_floors);
    s.u64(b.num_macs);
    s.u64(b.labeled_sample);
    s.i32(b.labeled_floor);
    s.u64(b.samples.size());
    for (const rf_sample& smp : b.samples) {
        s.i32(smp.true_floor);
        s.u32(smp.device_id);
        s.u64(smp.observations.size());
        for (const rf_observation& o : smp.observations) {
            s.u32(o.mac_id);
            s.f64(o.rss_dbm);
        }
    }
}

/// Canonical content hash of a building: an FNV-1a 64 digest over the
/// `visit_building_canonical` field walk (name, floor/MAC counts, the
/// one-label protocol, and every sample's observations with RSS as
/// IEEE-754 bits). Two buildings hash equal iff they are bit-identical
/// as inputs to the pipeline, so the digest content-addresses results:
/// the API layer's `result_cache` keys on (content_hash,
/// `core::config_fingerprint`). Platform-independent.
[[nodiscard]] std::uint64_t content_hash(const building& b) noexcept;

/// A named collection of buildings ("Microsoft", "Ours").
struct corpus {
    std::string name;
    std::vector<building> buildings;
};

}  // namespace fisone::data
