#pragma once

/// \file dataset_io.hpp
/// On-disk serialisation for building datasets, and the dense-matrix view
/// used by the MDS baseline (paper Fig. 3's "matrix modelling" with missing
/// entries filled at −120 dBm).
///
/// Format (CSV, one file per building):
///   # fisone-building v1
///   name,<name>
///   floors,<F>
///   macs,<M>
///   labeled_sample,<index>
///   labeled_floor,<floor>
///   sample,<true_floor>,<device_id>,<mac:rss>,<mac:rss>,...
///   ... one `sample` row per scan ...

#include <iosfwd>
#include <string>

#include "linalg/matrix.hpp"
#include "rf_sample.hpp"

namespace fisone::data {

/// Serialise \p b to the stream. \throws std::ios_base::failure on write error.
void save_building(const building& b, std::ostream& out);

/// Parse a building from the stream.
/// \throws std::invalid_argument on malformed content.
[[nodiscard]] building load_building(std::istream& in);

/// Convenience: save to / load from a file path.
void save_building_file(const building& b, const std::string& path);
[[nodiscard]] building load_building_file(const std::string& path);

/// Dense samples × MACs RSS matrix with missing entries set to
/// \p fill_dbm (paper uses −120 dBm). When a sample observes the same MAC
/// several times the strongest reading wins.
[[nodiscard]] linalg::matrix to_rss_matrix(const building& b, double fill_dbm = -120.0);

}  // namespace fisone::data
