#include "optimizer.hpp"

#include <cmath>

namespace fisone::autodiff {

void clip_gradient(matrix& grad, double clip) noexcept {
    if (clip <= 0.0) return;
    double norm_sq = 0.0;
    for (const double g : grad.flat()) norm_sq += g * g;
    const double norm = std::sqrt(norm_sq);
    if (norm > clip) {
        const double scale = clip / norm;
        for (double& g : grad.flat()) g *= scale;
    }
}

sgd::sgd(double learning_rate, double momentum, double clip)
    : lr_(learning_rate), momentum_(momentum), clip_(clip) {
    if (learning_rate <= 0.0) throw std::invalid_argument("sgd: learning_rate must be > 0");
    if (momentum < 0.0 || momentum >= 1.0)
        throw std::invalid_argument("sgd: momentum must be in [0,1)");
}

void sgd::step(matrix& param, const matrix& grad) {
    if (param.rows() != grad.rows() || param.cols() != grad.cols())
        throw std::invalid_argument("sgd::step: shape mismatch");

    matrix clipped = grad;
    clip_gradient(clipped, clip_);

    if (momentum_ == 0.0) {
        for (std::size_t i = 0; i < param.size(); ++i)
            param.flat()[i] -= lr_ * clipped.flat()[i];
        return;
    }

    // Find or create the velocity slot for this parameter.
    std::size_t slot = owners_.size();
    for (std::size_t i = 0; i < owners_.size(); ++i)
        if (owners_[i] == &param) {
            slot = i;
            break;
        }
    if (slot == owners_.size()) {
        owners_.push_back(&param);
        velocities_.emplace_back(param.rows(), param.cols(), 0.0);
    }
    matrix& vel = velocities_[slot];
    for (std::size_t i = 0; i < param.size(); ++i) {
        vel.flat()[i] = momentum_ * vel.flat()[i] + clipped.flat()[i];
        param.flat()[i] -= lr_ * vel.flat()[i];
    }
}

adam::adam(config cfg) : cfg_(cfg) {
    if (cfg.learning_rate <= 0.0) throw std::invalid_argument("adam: learning_rate must be > 0");
    if (cfg.beta1 < 0.0 || cfg.beta1 >= 1.0 || cfg.beta2 < 0.0 || cfg.beta2 >= 1.0)
        throw std::invalid_argument("adam: betas must be in [0,1)");
}

adam::slot& adam::find_slot(const matrix& param) {
    for (slot& s : slots_)
        if (s.owner == &param) return s;
    slots_.push_back(slot{&param, matrix(param.rows(), param.cols(), 0.0),
                          matrix(param.rows(), param.cols(), 0.0)});
    return slots_.back();
}

void adam::step(matrix& param, const matrix& grad) {
    if (param.rows() != grad.rows() || param.cols() != grad.cols())
        throw std::invalid_argument("adam::step: shape mismatch");

    matrix clipped = grad;
    clip_gradient(clipped, cfg_.clip);

    slot& s = find_slot(param);
    const double b1 = cfg_.beta1;
    const double b2 = cfg_.beta2;
    const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
    for (std::size_t i = 0; i < param.size(); ++i) {
        const double g = clipped.flat()[i];
        s.m.flat()[i] = b1 * s.m.flat()[i] + (1.0 - b1) * g;
        s.v.flat()[i] = b2 * s.v.flat()[i] + (1.0 - b2) * g * g;
        const double mhat = s.m.flat()[i] / bc1;
        const double vhat = s.v.flat()[i] / bc2;
        param.flat()[i] -= cfg_.learning_rate * mhat / (std::sqrt(vhat) + cfg_.epsilon);
    }
}

}  // namespace fisone::autodiff
