#include "gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fisone::autodiff {

gradcheck_result check_gradient(const std::function<double(const matrix&)>& scalar_fn,
                                const matrix& input, const matrix& analytic_grad,
                                double epsilon, double tolerance) {
    if (input.rows() != analytic_grad.rows() || input.cols() != analytic_grad.cols())
        throw std::invalid_argument("check_gradient: gradient shape mismatch");

    gradcheck_result result;
    matrix perturbed = input;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const double saved = perturbed.flat()[i];
        perturbed.flat()[i] = saved + epsilon;
        const double up = scalar_fn(perturbed);
        perturbed.flat()[i] = saved - epsilon;
        const double down = scalar_fn(perturbed);
        perturbed.flat()[i] = saved;

        const double numeric = (up - down) / (2.0 * epsilon);
        const double analytic = analytic_grad.flat()[i];
        const double abs_err = std::abs(numeric - analytic);
        const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-8});
        result.max_abs_error = std::max(result.max_abs_error, abs_err);
        result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
    // Pass when either error measure is within tolerance: absolute covers
    // near-zero gradients, relative covers large ones.
    result.passed = std::min(result.max_abs_error, result.max_rel_error) <= tolerance;
    return result;
}

}  // namespace fisone::autodiff
