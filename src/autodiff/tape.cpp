#include "tape.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/parallel_policy.hpp"
#include "util/thread_pool.hpp"

namespace fisone::autodiff {

namespace {
void check_same_shape(const matrix& a, const matrix& b, const char* what) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument(std::string(what) + ": shape mismatch");
}
}  // namespace

var tape::push(matrix value, bool requires_grad, std::function<void()> backprop) {
    nodes_.push_back(node{std::move(value), matrix{}, requires_grad, std::move(backprop)});
    return var{nodes_.size() - 1};
}

void tape::reset() noexcept {
    for (node& n : nodes_) {
        if (!n.value.empty()) ws_.recycle(std::move(n.value));
        if (!n.grad.empty()) ws_.recycle(std::move(n.grad));
    }
    nodes_.clear();
}

tape::node& tape::at(var v) {
    if (!v.valid() || v.index >= nodes_.size()) throw std::out_of_range("tape: invalid var");
    return nodes_[v.index];
}

const tape::node& tape::at(var v) const {
    if (!v.valid() || v.index >= nodes_.size()) throw std::out_of_range("tape: invalid var");
    return nodes_[v.index];
}

matrix& tape::grad_buffer(std::size_t index) {
    node& n = nodes_[index];
    if (n.grad.empty() && !n.value.empty())
        n.grad = ws_.take_zero(n.value.rows(), n.value.cols());
    return n.grad;
}

var tape::constant(const matrix& value) { return push(ws_.take_copy(value), false, {}); }
var tape::constant(matrix&& value) { return push(std::move(value), false, {}); }

var tape::parameter(const matrix& value) { return push(ws_.take_copy(value), true, {}); }
var tape::parameter(matrix&& value) { return push(std::move(value), true, {}); }

var tape::add(var a, var b) {
    check_same_shape(at(a).value, at(b).value, "tape::add");
    matrix out = ws_.take_copy(at(a).value);
    out += at(b).value;
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) grad_buffer(a.index) += g;
            if (nodes_[b.index].requires_grad) grad_buffer(b.index) += g;
        };
    }
    return v;
}

var tape::sub(var a, var b) {
    check_same_shape(at(a).value, at(b).value, "tape::sub");
    matrix out = ws_.take_copy(at(a).value);
    out -= at(b).value;
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) grad_buffer(a.index) += g;
            if (nodes_[b.index].requires_grad) {
                matrix& gb = grad_buffer(b.index);
                for (std::size_t i = 0; i < g.size(); ++i) gb.flat()[i] -= g.flat()[i];
            }
        };
    }
    return v;
}

var tape::scale(var a, double s) {
    matrix out = ws_.take_copy(at(a).value);
    out *= s;
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, s] {
            const matrix& g = nodes_[v.index].grad;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i) ga.flat()[i] += s * g.flat()[i];
        };
    }
    return v;
}

var tape::add_scalar(var a, double s) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) x += s;
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            grad_buffer(a.index) += nodes_[v.index].grad;
        };
    }
    return v;
}

var tape::hadamard(var a, var b) {
    check_same_shape(at(a).value, at(b).value, "tape::hadamard");
    matrix out = ws_.take(at(a).value.rows(), at(a).value.cols());
    linalg::hadamard_into(out, at(a).value, at(b).value);
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) {
                matrix& ga = grad_buffer(a.index);
                const matrix& bv = nodes_[b.index].value;
                for (std::size_t i = 0; i < g.size(); ++i)
                    ga.flat()[i] += g.flat()[i] * bv.flat()[i];
            }
            if (nodes_[b.index].requires_grad) {
                matrix& gb = grad_buffer(b.index);
                const matrix& av = nodes_[a.index].value;
                for (std::size_t i = 0; i < g.size(); ++i)
                    gb.flat()[i] += g.flat()[i] * av.flat()[i];
            }
        };
    }
    return v;
}

var tape::matmul(var a, var b) {
    matrix out = ws_.take(at(a).value.rows(), at(b).value.cols());
    linalg::matmul_into(out, at(a).value, at(b).value, pool_);
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) {
                matrix t = ws_.take(g.rows(), nodes_[b.index].value.rows());
                linalg::matmul_nt_into(t, g, nodes_[b.index].value, pool_);
                grad_buffer(a.index) += t;
                ws_.recycle(std::move(t));
            }
            if (nodes_[b.index].requires_grad) {
                matrix t = ws_.take(nodes_[a.index].value.cols(), g.cols());
                linalg::matmul_tn_into(t, nodes_[a.index].value, g, pool_);
                grad_buffer(b.index) += t;
                ws_.recycle(std::move(t));
            }
        };
    }
    return v;
}

var tape::add_broadcast_row(var a, var bias) {
    const matrix& av = at(a).value;
    const matrix& bv = at(bias).value;
    if (bv.rows() != 1 || bv.cols() != av.cols())
        throw std::invalid_argument("tape::add_broadcast_row: bias must be 1×cols(a)");
    matrix out = ws_.take_copy(av);
    for (std::size_t i = 0; i < out.rows(); ++i)
        for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) += bv(0, j);
    const bool rg = at(a).requires_grad || at(bias).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, bias, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) grad_buffer(a.index) += g;
            if (nodes_[bias.index].requires_grad) {
                matrix& gb = grad_buffer(bias.index);
                for (std::size_t i = 0; i < g.rows(); ++i)
                    for (std::size_t j = 0; j < g.cols(); ++j) gb(0, j) += g(i, j);
            }
        };
    }
    return v;
}

var tape::concat_cols(var a, var b) {
    const matrix& av = at(a).value;
    const matrix& bv = at(b).value;
    if (av.rows() != bv.rows())
        throw std::invalid_argument("tape::concat_cols: row count mismatch");
    matrix out = ws_.take(av.rows(), av.cols() + bv.cols());
    for (std::size_t i = 0; i < av.rows(); ++i) {
        for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) = av(i, j);
        for (std::size_t j = 0; j < bv.cols(); ++j) out(i, av.cols() + j) = bv(i, j);
    }
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    // av/bv dangle once push() reallocates the node vector — copy first.
    const std::size_t ac = av.cols();
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v, ac] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) {
                matrix& ga = grad_buffer(a.index);
                for (std::size_t i = 0; i < ga.rows(); ++i)
                    for (std::size_t j = 0; j < ac; ++j) ga(i, j) += g(i, j);
            }
            if (nodes_[b.index].requires_grad) {
                matrix& gb = grad_buffer(b.index);
                for (std::size_t i = 0; i < gb.rows(); ++i)
                    for (std::size_t j = 0; j < gb.cols(); ++j) gb(i, j) += g(i, ac + j);
            }
        };
    }
    return v;
}

var tape::sigmoid(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) x = 1.0 / (1.0 + std::exp(-x));
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i) {
                const double s = y.flat()[i];
                ga.flat()[i] += g.flat()[i] * s * (1.0 - s);
            }
        };
    }
    return v;
}

var tape::tanh_act(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) x = std::tanh(x);
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i)
                ga.flat()[i] += g.flat()[i] * (1.0 - y.flat()[i] * y.flat()[i]);
        };
    }
    return v;
}

var tape::relu(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) x = x > 0.0 ? x : 0.0;
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& x = nodes_[a.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i)
                if (x.flat()[i] > 0.0) ga.flat()[i] += g.flat()[i];
        };
    }
    return v;
}

var tape::log_op(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) {
        if (x <= 0.0) throw std::domain_error("tape::log_op: non-positive input");
        x = std::log(x);
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& x = nodes_[a.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i) ga.flat()[i] += g.flat()[i] / x.flat()[i];
        };
    }
    return v;
}

var tape::reciprocal(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) {
        if (x == 0.0) throw std::domain_error("tape::reciprocal: zero input");
        x = 1.0 / x;
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i)
                ga.flat()[i] -= g.flat()[i] * y.flat()[i] * y.flat()[i];
        };
    }
    return v;
}

var tape::log_sigmoid(var a) {
    matrix out = ws_.take_copy(at(a).value);
    for (double& x : out.flat()) {
        // log σ(x) = -log(1+e^{-x}) = x - log(1+e^{x}); branch for stability.
        x = x >= 0.0 ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& x = nodes_[a.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.size(); ++i) {
                // d/dx log σ(x) = σ(-x)
                const double xi = x.flat()[i];
                const double sneg = xi >= 0.0 ? std::exp(-xi) / (1.0 + std::exp(-xi))
                                              : 1.0 / (1.0 + std::exp(xi));
                ga.flat()[i] += g.flat()[i] * sneg;
            }
        };
    }
    return v;
}

var tape::l2_normalize_rows(var a, double eps) {
    const matrix& av = at(a).value;
    matrix out = ws_.take_copy(av);
    std::vector<double> norms(av.rows());
    for (std::size_t i = 0; i < av.rows(); ++i) {
        double n = linalg::norm2(av.row(i));
        if (n < eps) n = eps;
        norms[i] = n;
        for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) /= n;
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, norms = std::move(norms)] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.rows(); ++i) {
                // dx = (g − (g·y) y) / ‖x‖
                const double gy = linalg::dot(g.row(i), y.row(i));
                for (std::size_t j = 0; j < g.cols(); ++j)
                    ga(i, j) += (g(i, j) - gy * y(i, j)) / norms[i];
            }
        };
    }
    return v;
}

var tape::gather_rows(var a, std::vector<std::size_t> indices) {
    const matrix& av = at(a).value;
    for (const std::size_t idx : indices)
        if (idx >= av.rows()) throw std::out_of_range("tape::gather_rows: index out of range");
    matrix out = ws_.take(indices.size(), av.cols());
    for (std::size_t i = 0; i < indices.size(); ++i)
        for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) = av(indices[i], j);
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, indices = std::move(indices)] {
            const matrix& g = nodes_[v.index].grad;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < indices.size(); ++i)
                for (std::size_t j = 0; j < g.cols(); ++j) ga(indices[i], j) += g(i, j);
        };
    }
    return v;
}

var tape::weighted_sum_rows(var a,
                            std::vector<std::vector<std::pair<std::size_t, double>>> groups) {
    const matrix& av = at(a).value;
    for (const auto& group : groups)
        for (const auto& [idx, w] : group) {
            (void)w;
            if (idx >= av.rows())
                throw std::out_of_range("tape::weighted_sum_rows: index out of range");
        }
    matrix out = ws_.take_zero(groups.size(), av.cols());
    // Output rows are independent, so pooled aggregation is bit-exact; the
    // backward scatter below stays serial (groups share source rows).
    util::parallel_for(pool_, 0, groups.size(),
                       linalg::parallel_policy::row_grain(groups.size()),
                       [&](std::size_t r0, std::size_t r1) {
                           for (std::size_t i = r0; i < r1; ++i)
                               for (const auto& [idx, w] : groups[i])
                                   for (std::size_t j = 0; j < av.cols(); ++j)
                                       out(i, j) += w * av(idx, j);
                       });
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, groups = std::move(groups)] {
            const matrix& g = nodes_[v.index].grad;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < groups.size(); ++i)
                for (const auto& [idx, w] : groups[i])
                    for (std::size_t j = 0; j < g.cols(); ++j) ga(idx, j) += w * g(i, j);
        };
    }
    return v;
}

var tape::row_dot(var a, var b) {
    check_same_shape(at(a).value, at(b).value, "tape::row_dot");
    const matrix& av = at(a).value;
    const matrix& bv = at(b).value;
    matrix out = ws_.take(av.rows(), 1);
    for (std::size_t i = 0; i < av.rows(); ++i) out(i, 0) = linalg::dot(av.row(i), bv.row(i));
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            if (nodes_[a.index].requires_grad) {
                matrix& ga = grad_buffer(a.index);
                const matrix& bv2 = nodes_[b.index].value;
                for (std::size_t i = 0; i < ga.rows(); ++i)
                    for (std::size_t j = 0; j < ga.cols(); ++j) ga(i, j) += g(i, 0) * bv2(i, j);
            }
            if (nodes_[b.index].requires_grad) {
                matrix& gb = grad_buffer(b.index);
                const matrix& av2 = nodes_[a.index].value;
                for (std::size_t i = 0; i < gb.rows(); ++i)
                    for (std::size_t j = 0; j < gb.cols(); ++j) gb(i, j) += g(i, 0) * av2(i, j);
            }
        };
    }
    return v;
}

var tape::pairwise_sqdist(var a, var b) {
    const matrix& av = at(a).value;
    const matrix& bv = at(b).value;
    if (av.cols() != bv.cols())
        throw std::invalid_argument("tape::pairwise_sqdist: dimension mismatch");
    matrix out = ws_.take(av.rows(), bv.rows());
    for (std::size_t i = 0; i < av.rows(); ++i)
        for (std::size_t j = 0; j < bv.rows(); ++j)
            out(i, j) = linalg::squared_distance(av.row(i), bv.row(j));
    const bool rg = at(a).requires_grad || at(b).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, b, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& av2 = nodes_[a.index].value;
            const matrix& bv2 = nodes_[b.index].value;
            const bool need_a = nodes_[a.index].requires_grad;
            const bool need_b = nodes_[b.index].requires_grad;
            matrix* ga = need_a ? &grad_buffer(a.index) : nullptr;
            matrix* gb = need_b ? &grad_buffer(b.index) : nullptr;
            for (std::size_t i = 0; i < av2.rows(); ++i)
                for (std::size_t j = 0; j < bv2.rows(); ++j) {
                    const double gij = g(i, j);
                    if (gij == 0.0) continue;
                    for (std::size_t d = 0; d < av2.cols(); ++d) {
                        const double diff = av2(i, d) - bv2(j, d);
                        if (need_a) (*ga)(i, d) += 2.0 * gij * diff;
                        if (need_b) (*gb)(j, d) -= 2.0 * gij * diff;
                    }
                }
        };
    }
    return v;
}

var tape::row_normalize(var a) {
    const matrix& av = at(a).value;
    matrix out = ws_.take_copy(av);
    std::vector<double> sums(av.rows());
    for (std::size_t i = 0; i < av.rows(); ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < av.cols(); ++j) s += av(i, j);
        if (s <= 0.0) throw std::domain_error("tape::row_normalize: non-positive row sum");
        sums[i] = s;
        for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) /= s;
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, sums = std::move(sums)] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.rows(); ++i) {
                double gy = 0.0;
                for (std::size_t j = 0; j < g.cols(); ++j) gy += g(i, j) * y(i, j);
                for (std::size_t j = 0; j < g.cols(); ++j)
                    ga(i, j) += (g(i, j) - gy) / sums[i];
            }
        };
    }
    return v;
}

var tape::softmax_rows(var a) {
    const matrix& av = at(a).value;
    matrix out = ws_.take_copy(av);
    for (std::size_t i = 0; i < av.rows(); ++i) {
        double mx = out(i, 0);
        for (std::size_t j = 1; j < av.cols(); ++j) mx = std::max(mx, out(i, j));
        double sum = 0.0;
        for (std::size_t j = 0; j < av.cols(); ++j) {
            out(i, j) = std::exp(out(i, j) - mx);
            sum += out(i, j);
        }
        for (std::size_t j = 0; j < av.cols(); ++j) out(i, j) /= sum;
    }
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const matrix& g = nodes_[v.index].grad;
            const matrix& y = nodes_[v.index].value;
            matrix& ga = grad_buffer(a.index);
            for (std::size_t i = 0; i < g.rows(); ++i) {
                double gy = 0.0;
                for (std::size_t j = 0; j < g.cols(); ++j) gy += g(i, j) * y(i, j);
                for (std::size_t j = 0; j < g.cols(); ++j)
                    ga(i, j) += y(i, j) * (g(i, j) - gy);
            }
        };
    }
    return v;
}

var tape::sum_all(var a) {
    double total = 0.0;
    for (const double x : at(a).value.flat()) total += x;
    matrix out = ws_.take(1, 1);
    out(0, 0) = total;
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v] {
            const double g = nodes_[v.index].grad(0, 0);
            matrix& ga = grad_buffer(a.index);
            for (double& x : ga.flat()) x += g;
        };
    }
    return v;
}

var tape::mean_all(var a) {
    const std::size_t n = at(a).value.size();
    if (n == 0) throw std::invalid_argument("tape::mean_all: empty input");
    double total = 0.0;
    for (const double x : at(a).value.flat()) total += x;
    matrix out = ws_.take(1, 1);
    out(0, 0) = total / static_cast<double>(n);
    const bool rg = at(a).requires_grad;
    var v = push(std::move(out), rg, {});
    if (rg) {
        nodes_.back().backprop = [this, a, v, n] {
            const double g = nodes_[v.index].grad(0, 0) / static_cast<double>(n);
            matrix& ga = grad_buffer(a.index);
            for (double& x : ga.flat()) x += g;
        };
    }
    return v;
}

const matrix& tape::value(var v) const { return at(v).value; }

const matrix& tape::grad(var v) const { return at(v).grad; }

void tape::backward(var root) {
    const node& r = at(root);
    if (r.value.rows() != 1 || r.value.cols() != 1)
        throw std::invalid_argument("tape::backward: root must be 1×1");
    // Recycle previous gradients; moved-from matrices are clean 0×0, so
    // grad() keeps returning the well-defined empty sentinel for nodes
    // this backward pass never reaches.
    for (node& n : nodes_)
        if (!n.grad.empty()) ws_.recycle(std::move(n.grad));
    grad_buffer(root.index)(0, 0) = 1.0;
    for (std::size_t i = root.index + 1; i-- > 0;) {
        node& n = nodes_[i];
        if (n.backprop && !n.grad.empty()) n.backprop();
    }
}

}  // namespace fisone::autodiff
