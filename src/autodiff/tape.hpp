#pragma once

/// \file tape.hpp
/// Reverse-mode automatic differentiation over dense matrices.
///
/// The GNN models in this library (RF-GNN, and the SDCN/DAEGC baselines)
/// build a fresh computation graph per training step — neighbourhood
/// sampling makes the graph dynamic — so the engine is a classic tape:
/// every operation appends a node holding its value and a backprop closure;
/// `backward()` runs the closures in reverse topological (= insertion)
/// order. Gradients are only materialised for nodes that (transitively)
/// depend on a trainable leaf.
///
/// The operation set is exactly what the paper's models need: dense layers
/// (matmul / bias / activations), the RF-GNN weighted aggregation
/// (`weighted_sum_rows`, paper §III-B AGGREGATE_w), row L2 normalisation,
/// embedding lookup (`gather_rows`), the skip-gram losses (`row_dot`,
/// `log_sigmoid`), and the deep-clustering losses of the baselines
/// (`pairwise_sqdist`, `row_normalize`, `softmax_rows`, `log`).

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::autodiff {

using linalg::matrix;

class tape;

/// Lightweight handle to a node on a tape. Valid only for the lifetime of
/// the tape that produced it.
struct var {
    std::size_t index = static_cast<std::size_t>(-1);
    [[nodiscard]] bool valid() const noexcept { return index != static_cast<std::size_t>(-1); }
};

/// Append-only computation tape. Not thread-safe; call `reset()` between
/// training steps to reuse the tape: every node's value and gradient
/// storage is recycled through an internal `linalg::workspace`, so a
/// steady-state forward+backward pass allocates no matrix temporaries at
/// all. An optional thread pool parallelises the dense products (forward
/// and backward) — pooled runs are bit-identical to serial ones (see
/// matrix.hpp / kernels.hpp).
class tape {
public:
    tape() = default;
    explicit tape(util::thread_pool* pool) noexcept : pool_(pool) {}
    tape(const tape&) = delete;
    tape& operator=(const tape&) = delete;

    /// Pool used by subsequently recorded operations (null = serial).
    void set_pool(util::thread_pool* pool) noexcept { pool_ = pool; }

    /// Remove all nodes; handles from before the reset become invalid.
    /// Node storage (values and gradients) is recycled into the tape's
    /// workspace so the next step's operations reuse it.
    void reset() noexcept;

    /// Number of nodes currently recorded.
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

    // --- leaves ---

    /// Non-trainable input (no gradient will be computed for it). The
    /// const& overloads copy through the workspace, so feeding the same
    /// leaves to a reused tape every step is allocation-free.
    var constant(const matrix& value);
    var constant(matrix&& value);

    /// Trainable leaf; after backward(), read its gradient with grad().
    var parameter(const matrix& value);
    var parameter(matrix&& value);

    // --- elementwise / arithmetic ---
    var add(var a, var b);                     ///< a + b, same shape
    var sub(var a, var b);                     ///< a - b, same shape
    var scale(var a, double s);                ///< s · a
    var add_scalar(var a, double s);           ///< a + s (elementwise)
    var hadamard(var a, var b);                ///< a ⊙ b, same shape
    var negate(var a) { return scale(a, -1.0); }

    // --- linear algebra ---
    var matmul(var a, var b);                  ///< a · b
    var add_broadcast_row(var a, var bias);    ///< a (n×d) + bias (1×d) to every row
    var concat_cols(var a, var b);             ///< [a | b], same row count

    // --- activations / pointwise functions ---
    var sigmoid(var a);
    var tanh_act(var a);
    var relu(var a);
    var log_op(var a);                         ///< elementwise natural log (input must be > 0)
    var reciprocal(var a);                     ///< 1 / a elementwise
    var log_sigmoid(var a);                    ///< numerically stable log σ(a)

    // --- row-structured operations ---

    /// Normalise every row to unit L2 norm; rows with norm < eps are scaled
    /// by 1/eps instead (keeps gradients finite). Paper §III-B: r ← r/‖r‖₂.
    var l2_normalize_rows(var a, double eps = 1e-12);

    /// Select rows `indices` of a (embedding lookup). Rows may repeat.
    var gather_rows(var a, std::vector<std::size_t> indices);

    /// out.row(i) = Σ_k groups[i][k].second · a.row(groups[i][k].first).
    /// This is the RF-GNN attention aggregator: weights are the normalised
    /// f(RSS) edge weights of the sampled neighbourhood.
    var weighted_sum_rows(var a, std::vector<std::vector<std::pair<std::size_t, double>>> groups);

    /// Row-wise dot product of two equally-shaped matrices → (n×1).
    var row_dot(var a, var b);

    /// s(i,j) = ‖a.row(i) − b.row(j)‖² → (n×k). Used by the Student-t soft
    /// assignment of SDCN/DAEGC.
    var pairwise_sqdist(var a, var b);

    /// Divide each row by its sum (rows must have positive sums).
    var row_normalize(var a);

    /// Row-wise softmax.
    var softmax_rows(var a);

    // --- reductions ---
    var sum_all(var a);   ///< → 1×1
    var mean_all(var a);  ///< → 1×1

    // --- access / backward ---

    /// Value of a node.
    [[nodiscard]] const matrix& value(var v) const;

    /// Gradient of the last backward() root w.r.t. node \p v.
    /// Empty matrix if the node did not require a gradient.
    [[nodiscard]] const matrix& grad(var v) const;

    /// Run reverse-mode accumulation from \p root, which must be 1×1.
    /// Clears previous gradients first.
    /// \throws std::invalid_argument if root is not scalar.
    void backward(var root);

private:
    struct node {
        matrix value;
        matrix grad;                    // empty until needed
        bool requires_grad = false;
        std::function<void()> backprop;  // empty for leaves
    };

    var push(matrix value, bool requires_grad, std::function<void()> backprop);
    node& at(var v);
    const node& at(var v) const;
    matrix& grad_buffer(std::size_t index);  ///< lazily allocate grad of node

    std::vector<node> nodes_;
    util::thread_pool* pool_ = nullptr;
    linalg::workspace ws_;  ///< recycled storage for node values/grads
};

}  // namespace fisone::autodiff
