#pragma once

/// \file optimizer.hpp
/// First-order optimisers operating on externally owned parameter matrices.
/// Parameters live outside the tape (the tape is rebuilt per step); each
/// training step copies the current values onto the tape, runs backward,
/// and hands the gradients back to the optimiser.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace fisone::autodiff {

using linalg::matrix;

/// Plain SGD with optional momentum and gradient clipping.
class sgd {
public:
    /// \param learning_rate step size (> 0)
    /// \param momentum classical momentum coefficient in [0, 1)
    /// \param clip if > 0, each gradient is clipped to this max L2 norm
    explicit sgd(double learning_rate, double momentum = 0.0, double clip = 0.0);

    /// Apply one update: param ← param − lr · velocity(grad).
    /// \throws std::invalid_argument on shape mismatch with first call.
    void step(matrix& param, const matrix& grad);

    /// Forget accumulated momentum (e.g. between training phases).
    void reset() noexcept { velocities_.clear(); }

private:
    double lr_;
    double momentum_;
    double clip_;
    std::vector<matrix> velocities_;
    std::vector<const matrix*> owners_;  // identity of each slot
};

/// Adam hyperparameters (namespace-level so it is complete before use as
/// a default argument).
struct adam_config {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double clip = 0.0;  ///< if > 0, max L2 norm per gradient
};

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping.
class adam {
public:
    using config = adam_config;

    explicit adam(config cfg = config());

    /// Apply one Adam update to \p param using \p grad. State is keyed by
    /// the address of \p param, so each parameter must have a stable
    /// address across steps.
    void step(matrix& param, const matrix& grad);

    /// Advance the shared timestep. Call once per optimisation step *after*
    /// updating all parameters of that step (bias correction uses it).
    void end_step() noexcept { ++t_; }

    [[nodiscard]] std::size_t timestep() const noexcept { return t_; }

private:
    struct slot {
        const matrix* owner = nullptr;
        matrix m;
        matrix v;
    };
    slot& find_slot(const matrix& param);

    config cfg_;
    std::size_t t_ = 1;
    std::vector<slot> slots_;
};

/// Clip \p grad in place to max L2 norm \p clip (no-op when clip <= 0).
void clip_gradient(matrix& grad, double clip) noexcept;

}  // namespace fisone::autodiff
