#pragma once

/// \file gradcheck.hpp
/// Central-difference gradient verification. Used by the test suite to
/// validate every tape operation against numerical derivatives, which is
/// the only practical way to trust a hand-rolled autodiff engine.

#include <functional>

#include "linalg/matrix.hpp"

namespace fisone::autodiff {

using linalg::matrix;

/// Result of a gradient check.
struct gradcheck_result {
    double max_abs_error = 0.0;  ///< max |analytic − numeric| over entries
    double max_rel_error = 0.0;  ///< max relative error over entries with non-tiny magnitude
    bool passed = false;
};

/// Compare \p analytic_grad with central differences of \p scalar_fn
/// around \p input.
/// \param scalar_fn maps a parameter matrix to the scalar loss value.
/// \param input the point at which to check.
/// \param analytic_grad the gradient produced by the tape at \p input.
/// \param epsilon finite-difference step.
/// \param tolerance pass threshold on the max combined error.
[[nodiscard]] gradcheck_result check_gradient(
    const std::function<double(const matrix&)>& scalar_fn, const matrix& input,
    const matrix& analytic_grad, double epsilon = 1e-5, double tolerance = 1e-4);

}  // namespace fisone::autodiff
