#pragma once

/// \file socket.hpp
/// Thin POSIX TCP plumbing under the network front door: an RAII fd,
/// numeric-host listen/connect helpers, non-blocking mode, and a blocking
/// client-side `frame_conn` that speaks the `api::codec` frame contract
/// over a socket (the primitive the load-test client and the network tests
/// drive the server with). Everything throws `std::system_error` carrying
/// the errno, so call sites never branch on -1.
///
/// Scope: IPv4 numeric hosts ("127.0.0.1", "0.0.0.0"). The front door is a
/// service port, not a general resolver — name resolution belongs to the
/// deployment layer.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/codec.hpp"

namespace fisone::net {

/// RAII file descriptor. Move-only; closes on destruction.
class socket_fd {
public:
    socket_fd() = default;
    explicit socket_fd(int fd) noexcept : fd_(fd) {}
    ~socket_fd() { reset(); }

    socket_fd(const socket_fd&) = delete;
    socket_fd& operator=(const socket_fd&) = delete;
    socket_fd(socket_fd&& other) noexcept : fd_(other.release()) {}
    socket_fd& operator=(socket_fd&& other) noexcept {
        if (this != &other) reset(other.release());
        return *this;
    }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

    /// Give up ownership without closing.
    int release() noexcept {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /// Close the current fd (if any) and adopt \p fd.
    void reset(int fd = -1) noexcept;

private:
    int fd_ = -1;
};

/// Bind + listen on \p host:\p port (port 0 = kernel-assigned ephemeral
/// port — read it back with `local_port`). SO_REUSEADDR is set so a
/// restarted server does not trip over TIME_WAIT.
/// \throws std::system_error on any socket/bind/listen failure,
///         std::invalid_argument on a non-numeric-IPv4 host.
[[nodiscard]] socket_fd listen_tcp(const std::string& host, std::uint16_t port,
                                   int backlog = 128);

/// The locally bound port of \p fd.
/// \throws std::system_error when getsockname fails.
[[nodiscard]] std::uint16_t local_port(int fd);

/// Blocking connect to \p host:\p port, TCP_NODELAY set (the protocol is
/// request/response frames; Nagle only adds latency).
/// \throws std::system_error / std::invalid_argument as `listen_tcp`.
[[nodiscard]] socket_fd connect_tcp(const std::string& host, std::uint16_t port);

/// Toggle O_NONBLOCK.
/// \throws std::system_error when fcntl fails.
void set_nonblocking(int fd, bool on);

/// Blocking write of all of \p bytes (loops over partial sends; SIGPIPE
/// suppressed via MSG_NOSIGNAL).
/// \throws std::system_error when the peer is gone or the socket errors.
void send_all(int fd, std::string_view bytes);

/// Blocking client-side frame connection: send whole request frames, read
/// whole response frames — reassembled through `api::frame_splitter`, so
/// however the kernel chunks the stream the caller only ever sees complete
/// frames. Not thread-safe for concurrent reads (one reader); `send` and
/// `read_frame` may run on different threads (a socket is full-duplex).
class frame_conn {
public:
    explicit frame_conn(socket_fd fd) : fd_(std::move(fd)) {}

    /// Connect to \p host:\p port.
    frame_conn(const std::string& host, std::uint16_t port)
        : frame_conn(connect_tcp(host, port)) {}

    /// Send one encoded frame (or any raw bytes — the hostile-input tests
    /// send partial and corrupt frames on purpose).
    void send(std::string_view bytes) { send_all(fd_.get(), bytes); }

    /// Block until one complete frame is available; nullopt on clean EOF.
    /// \throws std::system_error on socket errors, std::runtime_error on a
    ///         fatal framing error or an EOF that lands mid-frame.
    [[nodiscard]] std::optional<std::string> read_frame();

    /// Half-close the write side (the server sees EOF after its reads
    /// drain) while keeping the read side open for remaining responses.
    void shutdown_write();

    [[nodiscard]] int fd() const noexcept { return fd_.get(); }

    /// Close the socket entirely (mid-conversation — the disconnect tests).
    void close() { fd_.reset(); }

private:
    socket_fd fd_;
    api::frame_splitter splitter_;
};

}  // namespace fisone::net
