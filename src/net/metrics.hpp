#pragma once

/// \file metrics.hpp
/// The front door's observability surface: `tcp_server_stats` (transport
/// counters + net-level request latency percentiles) and the plaintext
/// renderer behind the scrapeable metrics endpoint. The exposition format
/// is Prometheus text format v0.0.4 — `# HELP`/`# TYPE` comments, one
/// `name{labels} value` sample per line — so `curl host:port/metrics`
/// drops straight into any scraper. Latency distributions are published
/// twice: as summary quantiles (p50/p90/p99 read directly off the
/// bounded `obs::latency_histogram` each path keeps) and as real
/// histogram families (`_bucket` over the shared `obs::k_metrics_le_bounds`
/// ladder plus `_sum`/`_count`), so both quantile dashboards and
/// `histogram_quantile()` aggregation work against the same page.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/result_cache.hpp"
#include "federation/fault_tolerance.hpp"
#include "obs/trace.hpp"
#include "service/floor_service.hpp"

namespace fisone::net {

/// Point-in-time transport counters of a `tcp_server`. Totals are
/// monotonic over the server's lifetime; gauges are instantaneous.
struct tcp_server_stats {
    std::size_t connections_accepted = 0;  ///< total accepted (gauge: open)
    std::size_t connections_open = 0;
    std::size_t connections_refused = 0;  ///< beyond max_connections: accept+close
    /// Connections evicted because their write buffer hit the bound — the
    /// slow-reader shed path (bounded buffering, then the connection goes).
    std::size_t connections_closed_slow = 0;
    std::size_t frames_received = 0;   ///< complete request frames off the wire
    std::size_t responses_sent = 0;    ///< response frames fully handed to the kernel
    std::size_t responses_dropped = 0; ///< frames discarded on doomed connections
    /// Server-initiated `push_update` frames buffered to standing `watch`
    /// subscriptions (a subset of responses_sent — pushes answer no
    /// in-flight request).
    std::size_t pushes_sent = 0;
    /// Server-initiated `stats_update` frames buffered to standing
    /// `subscribe_stats` streams (also a subset of responses_sent).
    std::size_t stats_pushes_sent = 0;
    /// Live `subscribe_stats` streams across all connections (gauge).
    std::size_t stats_subscribers = 0;
    std::size_t protocol_errors = 0;   ///< typed error_responses for framing/decoding
    std::size_t requests_admitted = 0; ///< jobs forwarded to the backend
    std::size_t requests_completed = 0;
    std::size_t requests_in_flight = 0;     ///< admitted - completed (gauge)
    std::size_t requests_shed_overload = 0; ///< typed `overloaded` shed replies
    std::size_t requests_shed_draining = 0; ///< typed `draining` shed replies
    std::size_t bytes_received = 0;
    std::size_t bytes_sent = 0;
    bool draining = false;  ///< between `drain()` and loop exit
    /// Net-level request wall latency (admission → last response frame
    /// buffered), nearest-rank percentiles within
    /// `obs::latency_histogram::k_max_relative_error`; 0 until a request
    /// completes.
    double request_latency_p50 = 0.0;
    double request_latency_p90 = 0.0;
    double request_latency_p99 = 0.0;
    /// Histogram exposition of the same latencies: exact count and sum,
    /// plus cumulative counts over `obs::k_metrics_le_bounds` (the
    /// Prometheus `_bucket` ladder).
    std::uint64_t request_latency_count = 0;
    double request_latency_sum = 0.0;
    std::vector<std::uint64_t> request_latency_le;
    /// Telemetry windows closed so far (`telemetry_registry::ticks()`);
    /// stays 0 when `telemetry_window_ms` is 0.
    std::uint64_t telemetry_ticks = 0;
    /// Seconds since the server was constructed (scrape hygiene: lets a
    /// dashboard detect restarts and rate-normalise counters).
    double uptime_seconds = 0.0;
};

/// Optional page sections beyond the core net+service counters.
struct metrics_extras {
    /// Per-backend result-cache snapshots (entry k = backend k) — how the
    /// federated front door makes affinity-routing effectiveness visible
    /// per backend, not just as a fleet sum.
    std::vector<api::result_cache_stats> backend_caches;
    /// Per-stage span latency summaries (`obs::stage_stats()`); empty when
    /// tracing has never been enabled.
    std::vector<obs::stage_snapshot> stages;
    /// Fleet-health counters + per-backend breaker states
    /// (`fisone_federation_retries_total`, `fisone_federation_failovers_total`,
    /// `fisone_backend_up`); nullopt when the fleet runs unprotected.
    std::optional<federation::health_snapshot> federation;
};

/// Render \p net + \p svc as one Prometheus text-format page. \p svc is
/// the backend's `get_stats` view (service counters, per-building latency
/// percentiles, result-cache hits/misses), so one scrape covers the whole
/// stack: transport, admission, service, cache.
[[nodiscard]] std::string render_metrics(const tcp_server_stats& net,
                                         const service::service_stats& svc);

/// The full page: core families plus build info, per-backend cache
/// families, and `fisone_stage_seconds` summaries from \p extras.
[[nodiscard]] std::string render_metrics(const tcp_server_stats& net,
                                         const service::service_stats& svc,
                                         const metrics_extras& extras);

}  // namespace fisone::net
