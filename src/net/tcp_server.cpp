#include "tcp_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/codec.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace fisone::net {

namespace {

using clock_type = std::chrono::steady_clock;

// Response-frame layout offsets (see api/codec.hpp): every response
// payload begins with its u64 correlation id, so a multiplexer can remap
// ids with an 8-byte patch instead of a decode/re-encode round trip.
constexpr std::size_t k_off_tag = 8;
constexpr std::size_t k_off_corr = api::k_frame_header_size;       // 14
constexpr std::size_t k_off_cancel_target = k_off_corr + 8;        // 22

std::uint16_t rd_u16(std::string_view b, std::size_t off) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(b[off]) |
                                      (static_cast<unsigned char>(b[off + 1]) << 8));
}

std::uint64_t rd_u64(std::string_view b, std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[off + i])) << (8 * i);
    return v;
}

void patch_u64(std::string& b, std::size_t off, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i)
        b[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

/// What a retired in-flight entry leaves behind — everything the
/// completion path needs once the locks are released (root-span close,
/// latency sample, slow-request log).
struct request_finish {
    double seconds = 0.0;
    std::uint64_t client_id = 0;
    obs::trace_context trace{};   ///< the request's root span ({0,0} untraced)
    std::uint64_t start_ns = 0;   ///< admission time on the span clock
};

// Telemetry-window column order, fixed by the registration sequence in
// core's constructor (registry windows carry parallel value vectors, not
// name→value maps).
constexpr std::size_t k_win_admitted = 0;
constexpr std::size_t k_win_responses = 1;
constexpr std::size_t k_win_shed_overload = 2;
constexpr std::size_t k_win_shed_draining = 3;
constexpr std::size_t k_win_connections = 0;  // gauge column
constexpr std::size_t k_win_inflight = 1;     // gauge column

}  // namespace

/// Global state shared between the loop thread, the public thread-safe
/// surface (stats/drain/stop), and the response sinks running on backend
/// worker threads. Held by shared_ptr so a sink firing after teardown
/// still has somewhere safe to account to.
struct tcp_server::core {
    mutable std::mutex m;
    tcp_server_stats counters;           ///< guarded by m (latency fields unused)
    obs::latency_histogram latency;      ///< guarded by m (bounded: serve loop feeds it forever)
    /// The windowed time series behind `subscribe_stats` and the capacity
    /// bench. Thread-safe on its own lock; its samplers take `m`, so never
    /// call into the registry while holding `m` (lock order: registry → m).
    obs::telemetry_registry registry;
    std::atomic<bool> draining{false};
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> next_internal{1};
    socket_fd wake_fd;
    const clock_type::time_point started = clock_type::now();  ///< uptime epoch
    /// Slow-request log settings, copied from the config at construction
    /// (immutable afterwards — sinks read them without the lock).
    double slow_threshold = 0.0;
    std::function<void(const std::string&)> slow_log;

    explicit core(std::size_t ring_windows) : registry(ring_windows) {
        wake_fd.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
        if (!wake_fd.valid()) throw_errno("net: eventfd");
        // Registration order defines the k_win_* column constants above.
        const auto ctr = [this](std::size_t tcp_server_stats::* field) {
            return [this, field] {
                const std::lock_guard<std::mutex> lock(m);
                return static_cast<double>(counters.*field);
            };
        };
        registry.add_counter("requests_admitted", ctr(&tcp_server_stats::requests_admitted));
        registry.add_counter("responses_sent", ctr(&tcp_server_stats::responses_sent));
        registry.add_counter("requests_shed_overload",
                             ctr(&tcp_server_stats::requests_shed_overload));
        registry.add_counter("requests_shed_draining",
                             ctr(&tcp_server_stats::requests_shed_draining));
        registry.add_gauge("connections_open", ctr(&tcp_server_stats::connections_open));
        registry.add_gauge("requests_in_flight", ctr(&tcp_server_stats::requests_in_flight));
        registry.add_histogram("request_latency_seconds", [this] {
            const std::lock_guard<std::mutex> lock(m);
            return latency;
        });
    }

    /// Nudge the epoll loop (signal/thread-safe; errors ignored — a full
    /// eventfd counter already guarantees a pending wakeup).
    void wake() noexcept {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t r = ::write(wake_fd.get(), &one, sizeof one);
    }

    static void on_response_frame(const std::shared_ptr<core>& co,
                                  const std::shared_ptr<conn>& c, std::size_t max_wbuf,
                                  std::string_view frame);

    /// Post-completion work that must run outside every lock: close the
    /// request's root span and emit the slow-request log line.
    void complete_request(const request_finish& fi) const;
};

/// One accepted connection. The first block is touched only by the loop
/// thread; everything under `m` is shared with response sinks.
struct tcp_server::conn {
    // --- loop-thread-only ---
    socket_fd fd;
    std::uint32_t events = 0;  ///< registered epoll interest mask
    bool mode_known = false;   ///< false until framed-vs-text is decided
    bool text_mode = false;
    std::string probe;     ///< first bytes, before the mode is decided
    std::string text_buf;  ///< text-mode accumulated request line
    api::frame_splitter splitter;
    bool read_closed = false;       ///< EOF seen, or reading abandoned
    bool close_after_flush = false; ///< answer is final: close once flushed
    bool dead = false;              ///< socket error: close immediately
    /// The connection's own trace (accept/read/flush spans). Distinct from
    /// per-request traces: one read may carry frames of many requests.
    obs::trace_context conn_ctx{};
    /// The connection's standing `subscribe_stats` stream, when one is
    /// active (at most one per connection; a re-subscribe replaces it).
    /// Loop-thread-only: dispatch installs it, the telemetry tick reads
    /// it, close tears it down — all on the event loop.
    struct stats_subscription {
        std::uint64_t corr = 0;
        std::uint32_t interval_ms = 1000;
        clock_type::time_point next_due;  ///< push at the first tick ≥ this
    };
    std::optional<stats_subscription> stats_sub;

    // --- shared with sinks (guarded by m) ---
    std::mutex m;
    bool closed = false;      ///< torn down by the loop; sinks drop frames
    bool overflowed = false;  ///< slow-reader shed engaged: dropping frames
    std::string wbuf;
    std::size_t woff = 0;  ///< flushed prefix of wbuf

    struct pending {
        std::uint64_t client_id = 0;
        std::size_t remaining = 0;  ///< building responses still expected
        clock_type::time_point start;
        obs::trace_context trace{};  ///< request root span ({0,0} untraced)
        std::uint64_t start_ns = 0;  ///< admission time on the span clock
    };
    std::unordered_map<std::uint64_t, pending> inflight;         ///< internal id →
    std::unordered_map<std::uint64_t, std::uint64_t> by_client;  ///< client id → internal
    /// Internal target id → client target id, for rewriting
    /// `cancel_response::target_correlation_id` on the way out.
    std::unordered_map<std::uint64_t, std::uint64_t> cancel_rewrites;
    struct flush_barrier {
        std::uint64_t corr = 0;
        std::unordered_set<std::uint64_t> waiting;  ///< internal ids
    };
    std::vector<flush_barrier> flushes;  ///< FIFO

    /// Append one response frame to the write buffer (patching \p
    /// patch_corr over the correlation id when set). Returns false when
    /// the frame was dropped: connection torn down, already shedding, or
    /// this frame tripped the bound and engaged shedding.
    bool append_locked(std::string_view frame, std::size_t max_wbuf,
                       const std::uint64_t* patch_corr = nullptr,
                       const std::uint64_t* patch_target = nullptr) {
        if (closed || overflowed) return false;
        if (wbuf.size() - woff + frame.size() > max_wbuf) {
            overflowed = true;
            return false;
        }
        if (woff > (256u << 10)) {
            wbuf.erase(0, woff);
            woff = 0;
        }
        const std::size_t at = wbuf.size();
        wbuf.append(frame.data(), frame.size());
        if (patch_corr) patch_u64(wbuf, at + k_off_corr, *patch_corr);
        if (patch_target) patch_u64(wbuf, at + k_off_cancel_target, *patch_target);
        return true;
    }

    /// Retire the in-flight entry of \p internal: drop the id maps, update
    /// flush barriers (appending any now-satisfied flush_response frames),
    /// and hand back the latency sample plus what the lock-free completion
    /// path needs (trace context, admission time). Call with `m` held.
    request_finish finish_locked(std::uint64_t internal, std::size_t max_wbuf,
                                 std::size_t& sent, std::size_t& dropped) {
        const auto it = inflight.find(internal);
        request_finish fi;
        fi.seconds = std::chrono::duration<double>(clock_type::now() - it->second.start).count();
        fi.client_id = it->second.client_id;
        fi.trace = it->second.trace;
        fi.start_ns = it->second.start_ns;
        const std::uint64_t client_id = it->second.client_id;
        inflight.erase(it);
        const auto bc = by_client.find(client_id);
        if (bc != by_client.end() && bc->second == internal) by_client.erase(bc);
        for (auto fit = flushes.begin(); fit != flushes.end();) {
            fit->waiting.erase(internal);
            if (fit->waiting.empty()) {
                const std::string frame =
                    api::encode(api::response(api::flush_response{fit->corr}));
                (append_locked(frame, max_wbuf) ? sent : dropped) += 1;
                fit = flushes.erase(fit);
            } else {
                ++fit;
            }
        }
        return fi;
    }
};

/// The response sink installed on each connection's backend session. Runs
/// on backend worker threads (and inline on the loop thread for
/// synchronous answers); touches only `conn` shared state and `core`.
void tcp_server::core::on_response_frame(const std::shared_ptr<core>& co,
                                         const std::shared_ptr<conn>& c,
                                         std::size_t max_wbuf, std::string_view frame) {
    // Frames come from our own backend's encoder — always one complete,
    // well-formed response frame per call. Anything shorter than a header
    // plus a correlation id cannot be ours; drop it defensively.
    if (frame.size() < k_off_corr + 8) return;
    // Runs under the worker's trace context (installed at job pickup), so
    // the respond span lands inside the request tree it answers.
    obs::scoped_span span("net.respond");
    const std::uint16_t tag = rd_u16(frame, k_off_tag);
    const std::uint64_t wire_corr = rd_u64(frame, k_off_corr);

    std::size_t sent = 0, dropped = 0, completed = 0;
    request_finish fi;
    bool have_sample = false;
    bool is_push = false;
    {
        const std::lock_guard<std::mutex> lock(c->m);
        const std::uint64_t* patch = nullptr;
        std::uint64_t client_corr = 0;
        std::uint64_t client_target = 0;
        const std::uint64_t* patch_target = nullptr;
        bool completes = false;

        switch (static_cast<api::message_tag>(tag)) {
            case api::message_tag::building_result: {
                const auto it = c->inflight.find(wire_corr);
                if (it != c->inflight.end()) {
                    client_corr = it->second.client_id;
                    patch = &client_corr;
                    completes = it->second.remaining <= 1;
                    if (!completes) --it->second.remaining;
                }
                break;
            }
            case api::message_tag::error: {
                // A typed backend failure (e.g. shard-path confinement)
                // terminates its request whatever the remaining count was.
                const auto it = c->inflight.find(wire_corr);
                if (it != c->inflight.end()) {
                    client_corr = it->second.client_id;
                    patch = &client_corr;
                    completes = true;
                }
                break;
            }
            case api::message_tag::append_result: {
                // One answer per append_scans request, like an error frame:
                // it terminates the request whatever the remaining count.
                const auto it = c->inflight.find(wire_corr);
                if (it != c->inflight.end()) {
                    client_corr = it->second.client_id;
                    patch = &client_corr;
                    completes = true;
                }
                break;
            }
            case api::message_tag::cancel_result: {
                if (frame.size() >= k_off_cancel_target + 8) {
                    const std::uint64_t internal_target =
                        rd_u64(frame, k_off_cancel_target);
                    const auto it = c->cancel_rewrites.find(internal_target);
                    if (it != c->cancel_rewrites.end()) {
                        client_target = it->second;
                        patch_target = &client_target;
                        c->cancel_rewrites.erase(it);
                    }
                }
                break;
            }
            case api::message_tag::push_update:
                // Server-initiated: answers no in-flight request, carries
                // the client's own watch correlation id already (watch
                // requests pass through unmapped) — forward verbatim.
                is_push = true;
                break;
            default:
                break;  // stats_result / flush_done / watch_ack pass through unchanged
        }

        (c->append_locked(frame, max_wbuf, patch, patch_target) ? sent : dropped) += 1;
        if (completes) {
            fi = c->finish_locked(wire_corr, max_wbuf, sent, dropped);
            have_sample = true;
            completed = 1;
        }
    }
    {
        const std::lock_guard<std::mutex> lock(co->m);
        co->counters.responses_sent += sent;
        co->counters.responses_dropped += dropped;
        co->counters.requests_completed += completed;
        co->counters.requests_in_flight -= completed;
        co->counters.pushes_sent += is_push && sent > 0 ? 1 : 0;
        if (have_sample) co->latency.add(fi.seconds);
    }
    if (is_push && obs::tracing_enabled()) {
        // An instantaneous delivery marker under the publisher's context
        // (the re-run's trace), so the tape shows append → reindex → push.
        const std::uint64_t t = obs::now_ns();
        obs::emit_child_span("net.push", obs::current_context(), t, t);
    }
    if (have_sample) co->complete_request(fi);
    co->wake();
}

void tcp_server::core::complete_request(const request_finish& fi) const {
    // Close the root span first so a slow-request breakdown includes it.
    if (fi.trace.active())
        obs::emit_span("net.request", fi.trace.trace_id, fi.trace.span_id, 0, fi.start_ns,
                       obs::now_ns());
    if (slow_threshold <= 0.0 || fi.seconds < slow_threshold) return;
    char buf[128];
    std::string line = "{\"slow_request\":{\"correlation_id\":" + std::to_string(fi.client_id);
    std::snprintf(buf, sizeof buf, ",\"seconds\":%.6f", fi.seconds);
    line += buf;
    if (fi.trace.active()) {
        std::snprintf(buf, sizeof buf, ",\"trace_id\":\"0x%llx\"",
                      static_cast<unsigned long long>(fi.trace.trace_id));
        line += buf;
        line += ",\"spans\":[";
        bool first = true;
        for (const obs::span_record& rec : obs::spans_for_trace(fi.trace.trace_id)) {
            if (!first) line += ',';
            first = false;
            std::snprintf(buf, sizeof buf, "{\"name\":\"%s\",\"ms\":%.3f}",
                          rec.name != nullptr ? rec.name : "?",
                          static_cast<double>(rec.dur_ns) * 1e-6);
            line += buf;
        }
        line += ']';
    }
    line += "}}";
    if (slow_log)
        slow_log(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

// --- backend adapters --------------------------------------------------------

backend make_backend(api::server& srv) {
    return backend{
        [&srv](api::server::frame_sink sink) {
            api::server::session s = srv.open(std::move(sink));
            return backend_session{
                [s](const api::request& r) mutable { s.handle(r); }};
        },
        [&srv] { return srv.stats(); },
        [&srv] { return std::vector<api::result_cache_stats>{srv.cache_stats()}; },
        nullptr,  // single server: no fleet health
    };
}

backend make_backend(federation::federated_server& srv) {
    return backend{
        [&srv](api::server::frame_sink sink) {
            federation::federated_server::session s = srv.open(std::move(sink));
            return backend_session{
                [s](const api::request& r) mutable { s.handle(r); }};
        },
        [&srv] { return srv.stats(); },
        [&srv] {
            std::vector<api::result_cache_stats> out;
            out.reserve(srv.num_backends());
            for (std::size_t k = 0; k < srv.num_backends(); ++k)
                out.push_back(srv.backend(k).cache_stats());
            return out;
        },
        [&srv] { return srv.health(); },
    };
}

// --- the event loop ----------------------------------------------------------

/// Loop-local state of one `run()` invocation.
struct tcp_server::loop {
    tcp_server& srv;
    socket_fd ep;

    struct open_conn {
        std::shared_ptr<conn> c;
        backend_session session;
    };
    std::unordered_map<int, open_conn> conns;
    bool listener_open = true;
    /// Next telemetry window boundary (meaningful only when
    /// `telemetry_window_ms > 0`; the epoll wait is bounded to it).
    clock_type::time_point next_tick;

    explicit loop(tcp_server& s) : srv(s) {
        ep.reset(::epoll_create1(EPOLL_CLOEXEC));
        if (!ep.valid()) throw_errno("net: epoll_create1");
        add(srv.core_->wake_fd.get(), EPOLLIN);
        add(srv.listener_.get(), EPOLLIN);
        next_tick = clock_type::now() + std::chrono::milliseconds(srv.cfg_.telemetry_window_ms);
    }

    void add(int fd, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = fd;
        if (::epoll_ctl(ep.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
            throw_errno("net: epoll_ctl(ADD)");
    }

    void set_events(conn& c, std::uint32_t events) {
        if (c.events == events || !c.fd.valid()) return;
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = c.fd.get();
        if (::epoll_ctl(ep.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) != 0)
            throw_errno("net: epoll_ctl(MOD)");
        c.events = events;
    }

    core& co() { return *srv.core_; }

    // --- lifecycle -----------------------------------------------------------

    void accept_all() {
        for (;;) {
            const int fd = ::accept4(srv.listener_.get(), nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return;
                if (errno == EINTR) continue;
                throw_errno("net: accept4");
            }
            socket_fd accepted(fd);
            if (conns.size() >= srv.cfg_.max_connections) {
                const std::lock_guard<std::mutex> lock(co().m);
                ++co().counters.connections_refused;
                continue;  // accepted goes out of scope → RST/close
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

            auto c = std::make_shared<conn>();
            c->fd = std::move(accepted);
            if (obs::tracing_enabled()) {
                // Root the connection's own trace at an instantaneous
                // accept marker; reads and flushes hang off it.
                c->conn_ctx = obs::trace_context{obs::new_trace_id(), obs::new_span_id()};
                const std::uint64_t t = obs::now_ns();
                obs::emit_span("net.accept", c->conn_ctx.trace_id, c->conn_ctx.span_id, 0, t,
                               t);
            }
            const std::shared_ptr<core> core_sp = srv.core_;
            const std::size_t max_wbuf = srv.cfg_.max_write_buffer;
            backend_session session = srv.backend_.open(
                [core_sp, c, max_wbuf](std::string_view frame) {
                    core::on_response_frame(core_sp, c, max_wbuf, frame);
                });
            add(fd, EPOLLIN);
            c->events = EPOLLIN;
            conns.emplace(fd, open_conn{std::move(c), std::move(session)});
            {
                const std::lock_guard<std::mutex> lock(co().m);
                ++co().counters.connections_accepted;
                ++co().counters.connections_open;
            }
        }
    }

    void close_conn(int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return;
        conn& c = *it->second.c;
        bool slow = false;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            c.closed = true;
            slow = c.overflowed;
        }
        ::epoll_ctl(ep.get(), EPOLL_CTL_DEL, fd, nullptr);
        c.fd.reset();
        const bool had_stats_sub = c.stats_sub.has_value();
        conns.erase(it);
        {
            const std::lock_guard<std::mutex> lock(co().m);
            --co().counters.connections_open;
            if (slow) ++co().counters.connections_closed_slow;
            if (had_stats_sub) --co().counters.stats_subscribers;
        }
    }

    // --- outbound ------------------------------------------------------------

    /// Flush as much of the write buffer as the socket takes. Returns
    /// false when the socket errored (the connection is dead).
    bool try_flush(conn& c) {
        const std::uint64_t flush_start = obs::tracing_enabled() ? obs::now_ns() : 0;
        std::size_t sent_bytes = 0;
        bool ok = true;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            while (c.woff < c.wbuf.size()) {
                const ssize_t n = ::send(c.fd.get(), c.wbuf.data() + c.woff,
                                         c.wbuf.size() - c.woff, MSG_NOSIGNAL);
                if (n > 0) {
                    c.woff += static_cast<std::size_t>(n);
                    sent_bytes += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                if (n < 0 && errno == EINTR) continue;
                ok = false;
                break;
            }
            if (c.woff == c.wbuf.size()) {
                c.wbuf.clear();
                c.woff = 0;
            }
        }
        if (sent_bytes > 0) {
            {
                const std::lock_guard<std::mutex> lock(co().m);
                co().counters.bytes_sent += sent_bytes;
            }
            // Only flushes that moved bytes get a span — idle evaluation
            // passes would otherwise bury the tape in zero-length events.
            if (flush_start != 0)
                obs::emit_child_span("net.flush", c.conn_ctx, flush_start, obs::now_ns());
        }
        return ok;
    }

    /// Emit a locally generated response (shed replies, local cancel/flush
    /// answers, protocol errors) through the same bounded buffer.
    void emit_local(conn& c, const api::response& resp) {
        const std::string frame = api::encode(resp);
        bool appended = false;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            appended = c.append_locked(frame, srv.cfg_.max_write_buffer);
        }
        const std::lock_guard<std::mutex> lock(co().m);
        ++(appended ? co().counters.responses_sent : co().counters.responses_dropped);
    }

    // --- dispatch ------------------------------------------------------------

    /// Admission gate for job requests. Sheds (with the right typed code)
    /// when draining or at the in-flight bound.
    bool admit(conn& c, std::uint64_t corr) {
        api::error_code shed = api::error_code::none;
        {
            const std::lock_guard<std::mutex> lock(co().m);
            if (co().draining.load()) {
                shed = api::error_code::draining;
                ++co().counters.requests_shed_draining;
            } else if (co().counters.requests_in_flight >= srv.cfg_.max_inflight_requests) {
                shed = api::error_code::overloaded;
                ++co().counters.requests_shed_overload;
            } else {
                ++co().counters.requests_admitted;
                ++co().counters.requests_in_flight;
            }
        }
        if (shed == api::error_code::none) return true;
        emit_local(c, api::error_response{
                          corr, shed,
                          shed == api::error_code::draining
                              ? "server is draining for shutdown; request shed"
                              : "admission queue saturated; request shed, retry later"});
        return false;
    }

    /// Forward one admitted job request under a fresh internal id.
    void forward_job(open_conn& oc, api::request req, std::uint64_t corr,
                     std::size_t expected) {
        conn& c = *oc.c;
        const std::uint64_t internal = co().next_internal.fetch_add(1);
        // Mint the request's trace here — admission is where the request
        // becomes real. The root span's id is allocated now so every child
        // (dispatch, routing, cache probe, queue wait, pipeline stages,
        // respond) links to it, but the span itself is only emitted at
        // completion, when its duration is known.
        obs::trace_context req_trace{};
        std::uint64_t start_ns = 0;
        if (obs::tracing_enabled()) {
            req_trace = obs::trace_context{obs::new_trace_id(), obs::new_span_id()};
            start_ns = obs::now_ns();
        }
        {
            const std::lock_guard<std::mutex> lock(c.m);
            c.inflight[internal] =
                conn::pending{corr, expected, clock_type::now(), req_trace, start_ns};
            c.by_client[corr] = internal;
        }
        api::set_correlation_id(req, internal);
        bool failed = false;
        std::string what;
        {
            obs::context_guard trace_guard(req_trace);
            obs::scoped_span span("net.dispatch");
            try {
                oc.session.handle(req);
            } catch (const std::exception& e) {
                failed = true;
                what = e.what();
            } catch (...) {
                failed = true;
                what = "backend dispatch failed";
            }
        }
        // A zero-building shard produces no responses at all; a dispatch
        // that threw produces none either (emit the error ourselves).
        // Both retire immediately — an in-flight entry nothing will ever
        // complete would wedge flush and drain.
        bool retire_now = false;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            const auto it = c.inflight.find(internal);
            retire_now = it != c.inflight.end() && (failed || it->second.remaining == 0);
        }
        if (failed)
            emit_local(c, api::error_response{corr, api::error_code::bad_request,
                                              "dispatch failed: " + what});
        if (retire_now) {
            std::size_t sent = 0, dropped = 0;
            request_finish fi;
            bool finished = false;
            {
                const std::lock_guard<std::mutex> lock(c.m);
                if (c.inflight.count(internal) != 0) {
                    fi = c.finish_locked(internal, srv.cfg_.max_write_buffer, sent, dropped);
                    finished = true;
                }
            }
            {
                const std::lock_guard<std::mutex> lock(co().m);
                co().counters.responses_sent += sent;
                co().counters.responses_dropped += dropped;
                ++co().counters.requests_completed;
                --co().counters.requests_in_flight;
            }
            if (finished) co().complete_request(fi);
        }
    }

    void dispatch(open_conn& oc, api::request req) {
        conn& c = *oc.c;
        if (const auto* m = std::get_if<api::identify_building_request>(&req)) {
            const std::uint64_t corr = m->correlation_id;
            if (admit(c, corr)) forward_job(oc, std::move(req), corr, 1);
        } else if (const auto* ms = std::get_if<api::identify_shard_request>(&req)) {
            const std::uint64_t corr = ms->correlation_id;
            const std::size_t expected = ms->ref.num_buildings;
            if (admit(c, corr)) forward_job(oc, std::move(req), corr, expected);
        } else if (const auto* mr = std::get_if<api::identify_resident_request>(&req)) {
            // Resident identification is a job like any other: one answer
            // (a building_result or a typed error) retires it, and it is
            // shed at the same admission bound — the capacity bench leans
            // on exactly this parity.
            const std::uint64_t corr = mr->correlation_id;
            if (admit(c, corr)) forward_job(oc, std::move(req), corr, 1);
        } else if (const auto* msub = std::get_if<api::subscribe_stats_request>(&req)) {
            // Served here, not by the backend: the admission and shed
            // counters the stream exposes live in this layer. Ack, then
            // let the telemetry tick push stats_update frames.
            const bool had = c.stats_sub.has_value();
            if (msub->subscribe) {
                conn::stats_subscription sub;
                sub.corr = msub->correlation_id;
                sub.interval_ms = msub->interval_ms;
                sub.next_due = clock_type::now();  // first completed window qualifies
                c.stats_sub = sub;
            } else {
                c.stats_sub.reset();
            }
            if (had != c.stats_sub.has_value()) {
                const std::lock_guard<std::mutex> lock(co().m);
                if (c.stats_sub.has_value())
                    ++co().counters.stats_subscribers;
                else
                    --co().counters.stats_subscribers;
            }
            emit_local(c, api::watch_ack_response{msub->correlation_id, msub->subscribe});
        } else if (const auto* ma = std::get_if<api::append_scans_request>(&req)) {
            // Appends go through admission like jobs: exactly one answer
            // (append_result or a typed error) retires the entry, so drain
            // waits for durability before the process may exit.
            const std::uint64_t corr = ma->correlation_id;
            if (admit(c, corr)) forward_job(oc, std::move(req), corr, 1);
        } else if (const auto* mc = std::get_if<api::cancel_job_request>(&req)) {
            std::uint64_t internal_target = 0;
            bool known = false;
            {
                const std::lock_guard<std::mutex> lock(c.m);
                const auto it = c.by_client.find(mc->target_correlation_id);
                if (it != c.by_client.end()) {
                    known = true;
                    internal_target = it->second;
                    c.cancel_rewrites[internal_target] = mc->target_correlation_id;
                }
            }
            if (!known) {
                // Finished (or never seen) in this connection's id space:
                // answer locally, exactly as the backend would for an
                // unknown id.
                emit_local(c, api::cancel_response{mc->correlation_id,
                                                   mc->target_correlation_id, false});
                return;
            }
            api::cancel_job_request fwd;
            fwd.correlation_id = mc->correlation_id;
            fwd.target_correlation_id = internal_target;
            oc.session.handle(api::request(fwd));
        } else if (const auto* mf = std::get_if<api::flush_request>(&req)) {
            // Per-connection barrier over this connection's in-flight
            // requests — never a blocking backend wait on the event loop.
            bool now = false;
            {
                const std::lock_guard<std::mutex> lock(c.m);
                conn::flush_barrier b;
                b.corr = mf->correlation_id;
                for (const auto& [internal, p] : c.inflight) b.waiting.insert(internal);
                if (b.waiting.empty())
                    now = true;
                else
                    c.flushes.push_back(std::move(b));
            }
            if (now) emit_local(c, api::flush_response{mf->correlation_id});
        } else {
            // get_stats / watch: pass through with the client's own
            // correlation id — their answers (and any later push_update
            // frames a watch produces) echo it and need no remapping,
            // because each connection has its own backend session.
            oc.session.handle(req);
        }
    }

    // --- inbound -------------------------------------------------------------

    void on_frame(open_conn& oc, std::string_view frame) {
        {
            const std::lock_guard<std::mutex> lock(co().m);
            ++co().counters.frames_received;
        }
        const api::decode_result<api::request> decoded = [&] {
            obs::scoped_span span("net.decode");
            return api::decode_request(frame);
        }();
        if (decoded.error) {
            // A complete frame can only fail recoverably (bad version /
            // unknown tag / malformed payload) — framing integrity held.
            {
                const std::lock_guard<std::mutex> lock(co().m);
                ++co().counters.protocol_errors;
            }
            emit_local(*oc.c,
                       api::error_response{0, decoded.error->code, decoded.error->message});
            return;
        }
        dispatch(oc, std::move(*decoded.value));
    }

    void serve_text_line(open_conn& oc, std::string line) {
        conn& c = *oc.c;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::string body, out;
        if (line.rfind("GET ", 0) == 0) {
            const std::size_t sp = line.find(' ', 4);
            const std::string path = line.substr(4, sp == std::string::npos ? sp : sp - 4);
            if (path == "/metrics" || path == "/metrics/") {
                body = srv.metrics_text();
                out = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; "
                      "charset=utf-8\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
            } else if (path == "/dump_trace" || path == "/dump_trace/") {
                body = obs::chrome_trace_json();
                out = "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
                      "Content-Length: " +
                      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
            } else {
                out = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: "
                      "close\r\n\r\n";
            }
        } else if (line == "METRICS") {
            out = srv.metrics_text();
        } else if (line == "DUMP_TRACE") {
            out = obs::chrome_trace_json();
        } else {
            c.dead = true;  // not a protocol we speak
            return;
        }
        bool appended = false;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            // The metrics page must fit whatever the write bound is; size
            // the bound generously, not the page timidly.
            appended = c.append_locked(out, std::max(srv.cfg_.max_write_buffer, out.size()));
        }
        static_cast<void>(appended);
        c.read_closed = true;
        c.close_after_flush = true;
    }

    void on_bytes(open_conn& oc, std::string_view data) {
        conn& c = *oc.c;
        if (!c.mode_known) {
            c.probe.append(data.data(), data.size());
            const std::size_t got = std::min(c.probe.size(), sizeof api::k_frame_magic);
            if (std::memcmp(c.probe.data(), api::k_frame_magic, got) == 0) {
                if (c.probe.size() < sizeof api::k_frame_magic) return;  // undecided
                c.mode_known = true;
                c.splitter.append(c.probe);
                c.probe.clear();
            } else {
                c.mode_known = true;
                c.text_mode = true;
                c.text_buf = std::move(c.probe);
                c.probe.clear();
            }
        } else if (c.text_mode) {
            c.text_buf.append(data.data(), data.size());
        } else {
            c.splitter.append(data);
        }

        if (c.text_mode) {
            const std::size_t nl = c.text_buf.find('\n');
            if (nl != std::string::npos) {
                serve_text_line(oc, c.text_buf.substr(0, nl));
                c.text_buf.clear();
            } else if (c.text_buf.size() > srv.cfg_.max_text_line) {
                c.dead = true;
            }
            return;
        }

        while (std::optional<std::string> frame = c.splitter.next()) {
            on_frame(oc, *frame);
            if (c.dead || c.close_after_flush) break;
        }
        if (c.splitter.error()) {
            // Framing integrity lost: answer with the typed error, stop
            // reading, close once buffered responses have flushed (the
            // write side is still coherent).
            {
                const std::lock_guard<std::mutex> lock(co().m);
                ++co().counters.protocol_errors;
            }
            emit_local(c, api::error_response{0, c.splitter.error()->code,
                                              c.splitter.error()->message});
            c.read_closed = true;
            c.close_after_flush = true;
        }
    }

    void on_readable(open_conn& oc) {
        conn& c = *oc.c;
        // Read spans belong to the connection trace (one read may carry
        // frames of many requests); request traces begin at admission.
        obs::context_guard trace_guard(c.conn_ctx);
        obs::scoped_span span("net.read");
        char chunk[64 * 1024];
        for (;;) {
            const ssize_t n = ::recv(c.fd.get(), chunk, sizeof chunk, 0);
            if (n > 0) {
                {
                    const std::lock_guard<std::mutex> lock(co().m);
                    co().counters.bytes_received += static_cast<std::size_t>(n);
                }
                on_bytes(oc, std::string_view(chunk, static_cast<std::size_t>(n)));
                if (c.dead || c.read_closed) return;
                continue;
            }
            if (n == 0) {
                // EOF: maybe a half-close (client sent everything, still
                // reading responses), maybe a mid-frame disconnect — both
                // just end the inbound side; the close decision logic
                // handles the rest.
                c.read_closed = true;
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            c.dead = true;
            return;
        }
    }

    // --- per-iteration evaluation -------------------------------------------

    /// Flush, decide interest mask, decide close. Returns true when the
    /// connection was closed.
    bool evaluate(int fd) {
        const auto it = conns.find(fd);
        if (it == conns.end()) return true;
        conn& c = *it->second.c;

        bool overflowed, pending, inflight_empty;
        {
            const std::lock_guard<std::mutex> lock(c.m);
            overflowed = c.overflowed;
            pending = c.woff < c.wbuf.size();
            inflight_empty = c.inflight.empty();
        }
        if (overflowed || c.dead) {
            // Slow-reader shed / socket error: no point flushing a stream
            // we have already dropped frames from (or that errored).
            close_conn(fd);
            return true;
        }
        if (pending) {
            if (!try_flush(c)) {
                close_conn(fd);
                return true;
            }
            const std::lock_guard<std::mutex> lock(c.m);
            pending = c.woff < c.wbuf.size();
            overflowed = c.overflowed;
            inflight_empty = c.inflight.empty();
        }
        if (overflowed) {
            close_conn(fd);
            return true;
        }
        const bool draining = co().draining.load();
        const bool done_reading = c.read_closed || c.close_after_flush;
        if (!pending && inflight_empty && (done_reading || draining)) {
            close_conn(fd);
            return true;
        }
        std::uint32_t want = 0;
        if (!c.read_closed && !c.close_after_flush) want |= EPOLLIN;
        if (pending) want |= EPOLLOUT;
        set_events(c, want);
        return false;
    }

    void evaluate_all() {
        std::vector<int> fds;
        fds.reserve(conns.size());
        for (const auto& [fd, oc] : conns) fds.push_back(fd);
        for (const int fd : fds) static_cast<void>(evaluate(fd));
    }

    std::size_t global_inflight() {
        const std::lock_guard<std::mutex> lock(co().m);
        return co().counters.requests_in_flight;
    }

    // --- telemetry tick ------------------------------------------------------

    /// Milliseconds until the next window boundary (epoll timeout), or -1
    /// (block indefinitely) when ticking is disabled.
    int tick_timeout_ms() const {
        if (srv.cfg_.telemetry_window_ms == 0) return -1;
        const auto until = next_tick - clock_type::now();
        if (until <= clock_type::duration::zero()) return 0;
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(until).count();
        // Round up: waking one ms late beats a zero-timeout spin just shy
        // of the boundary.
        return static_cast<int>(std::min<long long>(ms + 1, 60'000));
    }

    /// Close the current telemetry window and service `subscribe_stats`
    /// streams: every subscription whose interval has elapsed gets one
    /// `stats_update` frame carrying the window just closed. Runs on the
    /// loop thread; frames ride the same bounded write buffers as every
    /// other response (flushed by the next evaluation pass).
    void telemetry_tick() {
        const auto now = clock_type::now();
        if (srv.cfg_.telemetry_window_ms == 0 || now < next_tick) return;
        co().registry.tick(std::chrono::duration<double>(now - co().started).count());
        next_tick = now + std::chrono::milliseconds(srv.cfg_.telemetry_window_ms);
        const std::optional<obs::telemetry_registry::window> w = co().registry.latest();
        if (!w) return;
        std::size_t pushed = 0, dropped = 0;
        for (auto& [fd, oc] : conns) {
            conn& c = *oc.c;
            if (!c.stats_sub || now < c.stats_sub->next_due) continue;
            api::stats_update_response u;
            u.correlation_id = c.stats_sub->corr;
            u.window_seq = w->seq;
            u.window_seconds = w->duration_seconds;
            u.connections = static_cast<std::uint64_t>(w->gauges[k_win_connections]);
            u.inflight = static_cast<std::uint64_t>(w->gauges[k_win_inflight]);
            u.admitted = static_cast<std::uint64_t>(w->counters[k_win_admitted]);
            u.responses = static_cast<std::uint64_t>(w->counters[k_win_responses]);
            u.shed_overload = static_cast<std::uint64_t>(w->counters[k_win_shed_overload]);
            u.shed_draining = static_cast<std::uint64_t>(w->counters[k_win_shed_draining]);
            const obs::latency_histogram& h = w->histograms[0];
            u.latency_count = h.count();
            u.latency_sum = h.sum();
            u.latency_p50 = h.percentile_or_zero(50.0);
            u.latency_p90 = h.percentile_or_zero(90.0);
            u.latency_p99 = h.percentile_or_zero(99.0);
            const std::string frame = api::encode(api::response(u));
            bool appended = false;
            {
                const std::lock_guard<std::mutex> lock(c.m);
                appended = c.append_locked(frame, srv.cfg_.max_write_buffer);
            }
            (appended ? pushed : dropped) += 1;
            c.stats_sub->next_due =
                now + std::chrono::milliseconds(
                          std::max<std::uint32_t>(c.stats_sub->interval_ms,
                                                  srv.cfg_.telemetry_window_ms));
        }
        if (pushed + dropped > 0) {
            const std::lock_guard<std::mutex> lock(co().m);
            co().counters.responses_sent += pushed;
            co().counters.responses_dropped += dropped;
            co().counters.stats_pushes_sent += pushed;
        }
    }

    void run() {
        std::vector<epoll_event> events(64);
        for (;;) {
            if (co().stopping.load()) {
                std::vector<int> fds;
                for (const auto& [fd, oc] : conns) fds.push_back(fd);
                for (const int fd : fds) close_conn(fd);
                return;
            }
            if (co().draining.load()) {
                if (listener_open) {
                    ::epoll_ctl(ep.get(), EPOLL_CTL_DEL, srv.listener_.get(), nullptr);
                    srv.listener_.reset();
                    listener_open = false;
                }
                {
                    const std::lock_guard<std::mutex> lock(co().m);
                    co().counters.draining = true;
                }
                evaluate_all();
                if (conns.empty() && global_inflight() == 0) return;
            } else {
                evaluate_all();
            }

            const int n = ::epoll_wait(ep.get(), events.data(),
                                       static_cast<int>(events.size()), tick_timeout_ms());
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_errno("net: epoll_wait");
            }
            telemetry_tick();
            for (int i = 0; i < n; ++i) {
                const int fd = events[i].data.fd;
                const std::uint32_t ev = events[i].events;
                if (fd == co().wake_fd.get()) {
                    std::uint64_t drainv = 0;
                    [[maybe_unused]] const ssize_t r =
                        ::read(co().wake_fd.get(), &drainv, sizeof drainv);
                    continue;
                }
                if (listener_open && fd == srv.listener_.get()) {
                    accept_all();
                    continue;
                }
                const auto it = conns.find(fd);
                if (it == conns.end()) continue;
                if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
                    it->second.c->dead = true;
                    continue;
                }
                if ((ev & EPOLLIN) != 0) on_readable(it->second);
                // Writes are flushed by the top-of-loop evaluation pass.
            }
        }
    }
};

// --- public surface ----------------------------------------------------------

tcp_server::tcp_server(backend be, tcp_server_config cfg)
    : backend_(std::move(be)), cfg_(std::move(cfg)) {
    if (!backend_.open || !backend_.stats)
        throw std::invalid_argument("net: backend must provide open and stats");
    if (cfg_.max_inflight_requests == 0)
        throw std::invalid_argument("net: max_inflight_requests must be >= 1");
    if (cfg_.max_connections == 0)
        throw std::invalid_argument("net: max_connections must be >= 1");
    if (cfg_.max_write_buffer < api::k_frame_header_size)
        throw std::invalid_argument("net: max_write_buffer cannot hold a frame header");
    if (cfg_.telemetry_ring_windows == 0)
        throw std::invalid_argument("net: telemetry_ring_windows must be >= 1");
    core_ = std::make_shared<core>(cfg_.telemetry_ring_windows);
    core_->slow_threshold = cfg_.slow_request_seconds;
    core_->slow_log = cfg_.slow_log;
    listener_ = listen_tcp(cfg_.host, cfg_.port, cfg_.backlog);
    // The accept loop drains the backlog until EAGAIN — which only
    // terminates on a non-blocking listener.
    set_nonblocking(listener_.get(), true);
    port_ = local_port(listener_.get());
}

tcp_server::~tcp_server() = default;

void tcp_server::run() {
    loop l(*this);
    l.run();
}

void tcp_server::drain() {
    core_->draining.store(true);
    core_->wake();
}

void tcp_server::stop() {
    core_->stopping.store(true);
    core_->wake();
}

tcp_server_stats tcp_server::stats() const {
    tcp_server_stats s;
    {
        const std::lock_guard<std::mutex> lock(core_->m);
        s = core_->counters;
        s.draining = core_->draining.load();
        s.request_latency_p50 = core_->latency.percentile_or_zero(50.0);
        s.request_latency_p90 = core_->latency.percentile_or_zero(90.0);
        s.request_latency_p99 = core_->latency.percentile_or_zero(99.0);
        s.request_latency_count = core_->latency.count();
        s.request_latency_sum = core_->latency.sum();
        s.request_latency_le = core_->latency.le_counts();
        s.uptime_seconds =
            std::chrono::duration<double>(clock_type::now() - core_->started).count();
    }
    // Outside the counter lock: the registry's samplers take `m`, so the
    // lock order is registry → m, never the reverse.
    s.telemetry_ticks = core_->registry.ticks();
    return s;
}

std::string tcp_server::metrics_text() const {
    metrics_extras extras;
    extras.stages = obs::stage_stats();
    if (backend_.backend_caches) extras.backend_caches = backend_.backend_caches();
    if (backend_.health) extras.federation = backend_.health();
    return render_metrics(stats(), backend_.stats(), extras);
}

}  // namespace fisone::net
