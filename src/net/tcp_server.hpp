#pragma once

/// \file tcp_server.hpp
/// The network front door: an epoll-based TCP server that speaks the
/// existing `"FIS1"` frame contract to many concurrent connections and
/// fronts either a single `api::server` or a whole
/// `federation::federated_server` fleet (type-erased behind `backend`).
/// Nothing above the socket is new — connections feed the same
/// `api::codec` and the same session dispatch the stream/loopback
/// transports use, which is what keeps the TCP path byte-identical to
/// them.
///
/// **Connection model.** One OS thread runs the epoll loop (`run()`);
/// pipeline work happens on the backend's own worker pool. Each accepted
/// connection gets its own backend session *and its own correlation-id
/// space*: client-chosen ids are remapped through a per-connection table
/// to globally unique internal ids before the backend sees them (two
/// clients both using correlation id 1 never collide), and mapped back —
/// an 8-byte in-place patch of the response frame, the rest of the bytes
/// forwarded verbatim — on the way out. Responses stream back in
/// completion order, interleaved across a connection's requests exactly
/// as jobs finish. `cancel_job` targets are remapped through the same
/// table; an unknown target answers `accepted = false` locally. `flush`
/// is a per-connection barrier over the connection's own in-flight
/// requests (it never blocks the event loop).
///
/// **Overload behavior is explicit.** A bounded global admission count
/// (`max_inflight_requests`) caps job requests forwarded to the backend;
/// at the bound, new `identify_*` requests are answered immediately with
/// a typed `error_response{overloaded}` — shed, never queued into
/// unbounded latency. Keep the bound at or below the backing service's
/// `max_pending_jobs` so a forwarded submission never blocks the loop.
/// Slow readers get the same treatment on the write side: each
/// connection's response buffer is bounded (`max_write_buffer`), and a
/// connection that lets it fill is evicted rather than allowed to pin
/// memory (frames are dropped whole; the close is the shed signal).
///
/// **Graceful drain.** `drain()` (thread-safe — call it from a signal
/// waiter) stops accepting, lets every admitted request finish, flushes
/// buffered responses, then closes; job frames arriving mid-drain are
/// shed with `error_response{draining}`. `run()` returns once the last
/// connection is closed and the last admitted request has completed.
/// `stop()` is the hard variant: close everything now.
///
/// **Metrics & traces.** A connection whose first bytes are not the FIS1
/// magic is treated as a plaintext probe: `GET /metrics HTTP/1.x` (e.g.
/// curl) gets a Prometheus text-format page over HTTP, the bare line
/// `METRICS` gets the raw page — transport counters, admission/shed
/// counts, request latency quantiles, per-backend cache counters, stage
/// latency summaries, and the backend's `get_stats` view (see
/// `metrics.hpp`). `GET /dump_trace` (or the bare line `DUMP_TRACE`)
/// answers the current span tape as Chrome trace-event JSON
/// (`obs::chrome_trace_json()`), loadable in Perfetto.
///
/// **Live telemetry.** The loop drives a windowed
/// `obs::telemetry_registry` (admission/shed/response counters, open
/// connection and in-flight gauges, the request-latency histogram) by
/// bounding its epoll wait to the next window boundary
/// (`telemetry_window_ms`). A framed client sends `subscribe_stats` to
/// open a standing stream on its connection: the server acks with
/// `watch_ack`, then pushes one `stats_update` frame per elapsed client
/// interval (rounded up to the window), each carrying one completed
/// window — per-window shed counts, goodput, and latency percentiles.
/// This is the closed-loop signal `bench/bench_capacity` steps offered
/// load against. `subscribe_stats` is answered here, not by the backend:
/// the admission and shed counters it exists to expose live at the front
/// door.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/server.hpp"
#include "federation/federated_server.hpp"
#include "metrics.hpp"
#include "socket.hpp"

namespace fisone::net {

/// One opened backend connection, type-erased over
/// `api::server::session` / `federation::federated_server::session`.
struct backend_session {
    /// Dispatch one decoded request (the tcp server decodes frames itself
    /// — admission control and id remapping need the message, and
    /// forwarding the decoded form avoids a second decode).
    std::function<void(const api::request&)> handle;
};

/// A type-erased backend the front door can serve. The referenced server
/// must outlive the `tcp_server` *and* its in-flight jobs (destroy the
/// backend after `run()` has returned).
struct backend {
    std::function<backend_session(api::server::frame_sink)> open;
    std::function<service::service_stats()> stats;  ///< the `get_stats` view
    /// Per-backend result-cache snapshots (entry k = backend k; one entry
    /// for a single server). Optional — when unset, the metrics page omits
    /// the per-backend cache families.
    std::function<std::vector<api::result_cache_stats>()> backend_caches;
    /// Fleet-health snapshot (retry/failover counters, breaker states).
    /// Optional — unset for a single server or an unprotected fleet, and
    /// the metrics page omits the federation families; the callback itself
    /// may also return nullopt (protection off).
    std::function<std::optional<federation::health_snapshot>()> health;
};

/// Front a single API server.
[[nodiscard]] backend make_backend(api::server& srv);

/// Front a federated fleet.
[[nodiscard]] backend make_backend(federation::federated_server& srv);

/// Front-door configuration.
struct tcp_server_config {
    std::string host = "127.0.0.1";  ///< numeric IPv4 listen address
    std::uint16_t port = 0;          ///< 0 = kernel-assigned (read back via `port()`)
    int backlog = 128;
    /// Accepted connections beyond this are closed immediately (counted
    /// as `connections_refused`).
    std::size_t max_connections = 64;
    /// Global admission bound: job requests (`identify_*`) in flight at
    /// once. At the bound new jobs shed with `error_code::overloaded`.
    /// Keep <= the backing service's `max_pending_jobs` (default 64) so a
    /// forwarded submission can never block the event loop.
    std::size_t max_inflight_requests = 32;
    /// Per-connection response-buffer bound in bytes. A connection that
    /// fills it (a slow or stuck reader) is evicted.
    std::size_t max_write_buffer = std::size_t{8} << 20;
    /// Bound on a plaintext (metrics-probe) request line.
    std::size_t max_text_line = 4096;
    /// Telemetry window length in milliseconds: how often the event loop
    /// closes a `obs::telemetry_registry` window (bounding the epoll wait
    /// instead of blocking forever) and services `subscribe_stats`
    /// streams. 0 disables ticking entirely — the loop blocks until I/O,
    /// `subscribe_stats` still acks but never pushes.
    std::uint32_t telemetry_window_ms = 1000;
    /// Closed telemetry windows retained for inspection (ring size).
    std::size_t telemetry_ring_windows = 8;
    /// Slow-request log threshold in seconds (net-level wall time,
    /// admission → last response frame). A completed request at or over
    /// the threshold emits one structured JSON line — with its span
    /// breakdown inline when tracing is enabled — through `slow_log`.
    /// 0 disables the log entirely.
    double slow_request_seconds = 0.0;
    /// Sink for slow-request lines (no trailing newline). Unset = stderr.
    /// Runs on whichever thread completed the request; must not block.
    std::function<void(const std::string&)> slow_log;
};

class tcp_server {
public:
    /// Binds and listens immediately (so `port()` is known before
    /// `run()`), but accepts nothing until `run()`.
    /// \throws std::system_error on socket/bind/listen failure,
    ///         std::invalid_argument on a bad host or zero bounds.
    tcp_server(backend be, tcp_server_config cfg = {});

    /// Closes the listener and the wakeup fd. `run()` must have returned
    /// (or never been called).
    ~tcp_server();

    tcp_server(const tcp_server&) = delete;
    tcp_server& operator=(const tcp_server&) = delete;

    /// The bound listen port.
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// The event loop: accept, read, dispatch, write, until a `drain()`
    /// completes or `stop()` lands. Call from exactly one thread.
    void run();

    /// Begin graceful drain (idempotent, callable from any thread): stop
    /// accepting, finish admitted requests, flush, close, then `run()`
    /// returns.
    void drain();

    /// Hard stop: close every connection now; `run()` returns without
    /// waiting for in-flight jobs (the backend's destructor still does).
    void stop();

    /// Point-in-time transport counters + request-latency percentiles.
    [[nodiscard]] tcp_server_stats stats() const;

    /// The plaintext metrics page (exactly what the `/metrics` probe
    /// serves): `stats()` + the backend's `get_stats` view.
    [[nodiscard]] std::string metrics_text() const;

private:
    struct core;
    struct conn;
    struct loop;

    backend backend_;
    tcp_server_config cfg_;
    std::shared_ptr<core> core_;
    socket_fd listener_;
    std::uint16_t port_ = 0;
};

}  // namespace fisone::net
