#include "socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace fisone::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::invalid_argument("net: host must be a numeric IPv4 address, got \"" + host +
                                    "\"");
    return addr;
}

}  // namespace

void socket_fd::reset(int fd) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

socket_fd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
    const sockaddr_in addr = make_addr(host, port);
    socket_fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("net: socket");
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
        throw_errno("net: setsockopt(SO_REUSEADDR)");
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        throw_errno("net: bind");
    if (::listen(fd.get(), backlog) != 0) throw_errno("net: listen");
    return fd;
}

std::uint16_t local_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        throw_errno("net: getsockname");
    return ntohs(addr.sin_port);
}

socket_fd connect_tcp(const std::string& host, std::uint16_t port) {
    const sockaddr_in addr = make_addr(host, port);
    socket_fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("net: socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        throw_errno("net: connect");
    const int one = 1;
    if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) != 0)
        throw_errno("net: setsockopt(TCP_NODELAY)");
    return fd;
}

void set_nonblocking(int fd, bool on) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw_errno("net: fcntl(F_GETFL)");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd, F_SETFL, want) != 0) throw_errno("net: fcntl(F_SETFL)");
}

void send_all(int fd, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("net: send");
        }
        off += static_cast<std::size_t>(n);
    }
}

std::optional<std::string> frame_conn::read_frame() {
    for (;;) {
        if (std::optional<std::string> frame = splitter_.next()) return frame;
        if (splitter_.error())
            throw std::runtime_error("net: fatal framing error from peer: " +
                                     splitter_.error()->message);
        char chunk[64 * 1024];
        const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("net: recv");
        }
        if (n == 0) {
            if (!splitter_.at_boundary())
                throw std::runtime_error("net: peer closed mid-frame (" +
                                         std::to_string(splitter_.buffered()) +
                                         " bytes of an incomplete frame)");
            return std::nullopt;
        }
        splitter_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
}

void frame_conn::shutdown_write() {
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace fisone::net
