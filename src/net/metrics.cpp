#include "metrics.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace fisone::net {

namespace {

/// Shortest-round-trip number token (Prometheus accepts full doubles).
std::string num(double v) {
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    return ec == std::errc{} ? std::string(buf, p) : std::string("0");
}

class page {
public:
    void family(const char* name, const char* type, const char* help) {
        out_ += "# HELP ";
        out_ += name;
        out_ += ' ';
        out_ += help;
        out_ += "\n# TYPE ";
        out_ += name;
        out_ += ' ';
        out_ += type;
        out_ += '\n';
    }

    void sample(const char* name, double value, const char* labels = nullptr) {
        out_ += name;
        if (labels) {
            out_ += '{';
            out_ += labels;
            out_ += '}';
        }
        out_ += ' ';
        out_ += num(value);
        out_ += '\n';
    }

    void counter(const char* name, const char* help, double value) {
        family(name, "counter", help);
        sample(name, value);
    }

    void gauge(const char* name, const char* help, double value) {
        family(name, "gauge", help);
        sample(name, value);
    }

    void quantiles(const char* name, const char* help, double p50, double p90, double p99) {
        family(name, "summary", help);
        sample(name, p50, "quantile=\"0.5\"");
        sample(name, p90, "quantile=\"0.9\"");
        sample(name, p99, "quantile=\"0.99\"");
    }

    [[nodiscard]] std::string take() && { return std::move(out_); }

private:
    std::string out_;
};

}  // namespace

std::string render_metrics(const tcp_server_stats& net, const service::service_stats& svc) {
    page p;
    const auto d = [](std::size_t v) { return static_cast<double>(v); };

    // Transport.
    p.counter("fisone_net_connections_accepted_total", "TCP connections accepted",
              d(net.connections_accepted));
    p.gauge("fisone_net_connections_open", "TCP connections currently open",
            d(net.connections_open));
    p.counter("fisone_net_connections_refused_total",
              "connections refused at the max_connections bound", d(net.connections_refused));
    p.counter("fisone_net_connections_closed_slow_total",
              "connections evicted by write-side shedding (slow readers)",
              d(net.connections_closed_slow));
    p.counter("fisone_net_frames_received_total", "complete request frames received",
              d(net.frames_received));
    p.counter("fisone_net_responses_sent_total", "response frames written to the kernel",
              d(net.responses_sent));
    p.counter("fisone_net_responses_dropped_total",
              "response frames dropped on dead or shed connections",
              d(net.responses_dropped));
    p.counter("fisone_net_protocol_errors_total",
              "typed error responses for framing or decode failures",
              d(net.protocol_errors));
    p.counter("fisone_net_bytes_received_total", "bytes read off accepted sockets",
              d(net.bytes_received));
    p.counter("fisone_net_bytes_sent_total", "bytes written to accepted sockets",
              d(net.bytes_sent));

    // Admission.
    p.counter("fisone_net_requests_admitted_total",
              "job requests forwarded to the backend", d(net.requests_admitted));
    p.counter("fisone_net_requests_completed_total",
              "admitted requests that produced their last response",
              d(net.requests_completed));
    p.gauge("fisone_net_requests_in_flight", "admitted requests not yet completed",
            d(net.requests_in_flight));
    p.family("fisone_net_requests_shed_total", "counter",
             "job requests answered with a typed shed error_response");
    p.sample("fisone_net_requests_shed_total", d(net.requests_shed_overload),
             "reason=\"overload\"");
    p.sample("fisone_net_requests_shed_total", d(net.requests_shed_draining),
             "reason=\"draining\"");
    p.gauge("fisone_net_draining", "1 while the server is draining for shutdown",
            net.draining ? 1.0 : 0.0);
    p.quantiles("fisone_net_request_latency_seconds",
                "request wall latency, admission to last response frame",
                net.request_latency_p50, net.request_latency_p90, net.request_latency_p99);

    // Backing service (the get_stats view).
    p.counter("fisone_service_jobs_submitted_total", "jobs submitted to the floor service",
              d(svc.jobs_submitted));
    p.gauge("fisone_service_jobs_queued", "jobs submitted but not yet picked up",
            d(svc.jobs_queued));
    p.gauge("fisone_service_jobs_running", "jobs currently executing", d(svc.jobs_running));
    p.counter("fisone_service_jobs_done_total", "jobs finished without cancellation",
              d(svc.jobs_done));
    p.counter("fisone_service_jobs_cancelled_total", "jobs with at least one skipped building",
              d(svc.jobs_cancelled));
    p.counter("fisone_service_buildings_done_total", "buildings finished (ok+failed+cancelled)",
              d(svc.buildings_done));
    p.counter("fisone_service_buildings_ok_total", "buildings finished successfully",
              d(svc.buildings_ok));
    p.counter("fisone_service_buildings_failed_total", "buildings whose pipeline threw",
              d(svc.buildings_failed));
    p.counter("fisone_service_buildings_cancelled_total", "buildings skipped by cancellation",
              d(svc.buildings_cancelled));
    p.quantiles("fisone_service_building_latency_seconds",
                "per-building pipeline wall time", svc.latency_p50, svc.latency_p90,
                svc.latency_p99);
    p.counter("fisone_cache_hits_total", "result-cache hits", d(svc.cache_hits));
    p.counter("fisone_cache_misses_total", "result-cache misses", d(svc.cache_misses));

    return std::move(p).take();
}

}  // namespace fisone::net
