#include "metrics.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

// Stamped by the build system; fall back to something honest when a TU is
// compiled outside CMake (e.g. a quick manual compile).
#ifndef FISONE_VERSION
#define FISONE_VERSION "dev"
#endif
#ifndef FISONE_BUILD_TYPE
#define FISONE_BUILD_TYPE "unspecified"
#endif

namespace fisone::net {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const char* s) {
    std::string out;
    for (const char* p = s; *p != '\0'; ++p) {
        switch (*p) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += *p;
        }
    }
    return out;
}

/// Shortest-round-trip number token (Prometheus accepts full doubles).
std::string num(double v) {
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    return ec == std::errc{} ? std::string(buf, p) : std::string("0");
}

class page {
public:
    void family(const char* name, const char* type, const char* help) {
        out_ += "# HELP ";
        out_ += name;
        out_ += ' ';
        out_ += help;
        out_ += "\n# TYPE ";
        out_ += name;
        out_ += ' ';
        out_ += type;
        out_ += '\n';
    }

    void sample(const char* name, double value, const char* labels = nullptr) {
        out_ += name;
        if (labels) {
            out_ += '{';
            out_ += labels;
            out_ += '}';
        }
        out_ += ' ';
        out_ += num(value);
        out_ += '\n';
    }

    void counter(const char* name, const char* help, double value) {
        family(name, "counter", help);
        sample(name, value);
    }

    void gauge(const char* name, const char* help, double value) {
        family(name, "gauge", help);
        sample(name, value);
    }

    void quantiles(const char* name, const char* help, double p50, double p90, double p99) {
        family(name, "summary", help);
        sample(name, p50, "quantile=\"0.5\"");
        sample(name, p90, "quantile=\"0.9\"");
        sample(name, p99, "quantile=\"0.99\"");
    }

    /// One histogram family's children for a single label scope: the
    /// `_bucket` ladder over `obs::k_metrics_le_bounds` (plus the implied
    /// `le="+Inf"` = count), `_sum`, `_count`. Emit `family(name,
    /// "histogram", ...)` once before the first call; \p extra is a
    /// prefix label set (e.g. `stage="..."`) or empty.
    void histogram_children(const char* name, const std::vector<std::uint64_t>& le,
                            std::uint64_t count, double sum, const std::string& extra) {
        const std::string bucket = std::string(name) + "_bucket";
        const std::string prefix = extra.empty() ? std::string() : extra + ",";
        for (std::size_t i = 0; i < le.size() && i < obs::k_metrics_le_bounds.size(); ++i) {
            const std::string l = prefix + "le=\"" + num(obs::k_metrics_le_bounds[i]) + "\"";
            sample(bucket.c_str(), static_cast<double>(le[i]), l.c_str());
        }
        const std::string inf = prefix + "le=\"+Inf\"";
        sample(bucket.c_str(), static_cast<double>(count), inf.c_str());
        sample((std::string(name) + "_sum").c_str(), sum,
               extra.empty() ? nullptr : extra.c_str());
        sample((std::string(name) + "_count").c_str(), static_cast<double>(count),
               extra.empty() ? nullptr : extra.c_str());
    }

    [[nodiscard]] std::string take() && { return std::move(out_); }

private:
    std::string out_;
};

}  // namespace

std::string render_metrics(const tcp_server_stats& net, const service::service_stats& svc) {
    return render_metrics(net, svc, metrics_extras{});
}

std::string render_metrics(const tcp_server_stats& net, const service::service_stats& svc,
                           const metrics_extras& extras) {
    page p;
    const auto d = [](std::size_t v) { return static_cast<double>(v); };

    // Build / process identity (scrape hygiene: restart detection and
    // "which binary answered this" without shelling into the host).
    p.family("fisone_build_info", "gauge",
             "build metadata; the value is constant 1, the info is in the labels");
    const std::string build_labels = "version=\"" + escape_label(FISONE_VERSION) +
                                     "\",compiler=\"" + escape_label(__VERSION__) +
                                     "\",build_type=\"" + escape_label(FISONE_BUILD_TYPE) +
                                     "\"";
    p.sample("fisone_build_info", 1.0, build_labels.c_str());
    p.gauge("fisone_uptime_seconds", "seconds since the front door was constructed",
            net.uptime_seconds);

    // Transport.
    p.counter("fisone_net_connections_accepted_total", "TCP connections accepted",
              d(net.connections_accepted));
    p.gauge("fisone_net_connections_open", "TCP connections currently open",
            d(net.connections_open));
    p.counter("fisone_net_connections_refused_total",
              "connections refused at the max_connections bound", d(net.connections_refused));
    p.counter("fisone_net_connections_closed_slow_total",
              "connections evicted by write-side shedding (slow readers)",
              d(net.connections_closed_slow));
    p.counter("fisone_net_frames_received_total", "complete request frames received",
              d(net.frames_received));
    p.counter("fisone_net_responses_sent_total", "response frames written to the kernel",
              d(net.responses_sent));
    p.counter("fisone_net_responses_dropped_total",
              "response frames dropped on dead or shed connections",
              d(net.responses_dropped));
    p.counter("fisone_net_pushes_total",
              "server-initiated push_update frames sent to watch subscribers",
              d(net.pushes_sent));
    p.counter("fisone_net_stats_pushes_total",
              "server-initiated stats_update frames sent to subscribe_stats streams",
              d(net.stats_pushes_sent));
    p.gauge("fisone_net_stats_subscribers",
            "live subscribe_stats streams across all connections",
            d(net.stats_subscribers));
    p.counter("fisone_net_telemetry_ticks_total", "telemetry windows closed so far",
              static_cast<double>(net.telemetry_ticks));
    p.counter("fisone_net_protocol_errors_total",
              "typed error responses for framing or decode failures",
              d(net.protocol_errors));
    p.counter("fisone_net_bytes_received_total", "bytes read off accepted sockets",
              d(net.bytes_received));
    p.counter("fisone_net_bytes_sent_total", "bytes written to accepted sockets",
              d(net.bytes_sent));

    // Admission.
    p.counter("fisone_net_requests_admitted_total",
              "job requests forwarded to the backend", d(net.requests_admitted));
    p.counter("fisone_net_requests_completed_total",
              "admitted requests that produced their last response",
              d(net.requests_completed));
    p.gauge("fisone_net_requests_in_flight", "admitted requests not yet completed",
            d(net.requests_in_flight));
    p.family("fisone_net_requests_shed_total", "counter",
             "job requests answered with a typed shed error_response");
    p.sample("fisone_net_requests_shed_total", d(net.requests_shed_overload),
             "reason=\"overload\"");
    p.sample("fisone_net_requests_shed_total", d(net.requests_shed_draining),
             "reason=\"draining\"");
    p.gauge("fisone_net_draining", "1 while the server is draining for shutdown",
            net.draining ? 1.0 : 0.0);
    p.quantiles("fisone_net_request_latency_seconds",
                "request wall latency, admission to last response frame",
                net.request_latency_p50, net.request_latency_p90, net.request_latency_p99);
    // The same distribution as a real histogram (aggregable across
    // instances with histogram_quantile(), unlike summary quantiles).
    p.family("fisone_net_request_seconds", "histogram",
             "request wall latency, admission to last response frame");
    p.histogram_children("fisone_net_request_seconds", net.request_latency_le,
                         net.request_latency_count, net.request_latency_sum, "");

    // Backing service (the get_stats view).
    p.counter("fisone_service_jobs_submitted_total", "jobs submitted to the floor service",
              d(svc.jobs_submitted));
    p.gauge("fisone_service_jobs_queued", "jobs submitted but not yet picked up",
            d(svc.jobs_queued));
    p.gauge("fisone_service_jobs_running", "jobs currently executing", d(svc.jobs_running));
    p.counter("fisone_service_jobs_done_total", "jobs finished without cancellation",
              d(svc.jobs_done));
    p.counter("fisone_service_jobs_cancelled_total", "jobs with at least one skipped building",
              d(svc.jobs_cancelled));
    p.counter("fisone_service_buildings_done_total", "buildings finished (ok+failed+cancelled)",
              d(svc.buildings_done));
    p.counter("fisone_service_buildings_ok_total", "buildings finished successfully",
              d(svc.buildings_ok));
    p.counter("fisone_service_buildings_failed_total", "buildings whose pipeline threw",
              d(svc.buildings_failed));
    p.counter("fisone_service_buildings_cancelled_total", "buildings skipped by cancellation",
              d(svc.buildings_cancelled));
    p.quantiles("fisone_service_building_latency_seconds",
                "per-building pipeline wall time", svc.latency_p50, svc.latency_p90,
                svc.latency_p99);
    if (!svc.latency_le.empty()) {
        p.family("fisone_service_building_seconds", "histogram",
                 "per-building pipeline wall time");
        p.histogram_children("fisone_service_building_seconds", svc.latency_le,
                             svc.latency_count, svc.latency_sum, "");
    }
    p.counter("fisone_cache_hits_total", "result-cache hits", d(svc.cache_hits));
    p.counter("fisone_cache_misses_total", "result-cache misses", d(svc.cache_misses));
    p.counter("fisone_cache_evictions_total", "result-cache LRU evictions",
              d(svc.cache_evictions));
    p.counter("fisone_ingest_appends_total", "durable scan-batch appends to mounted stores",
              d(svc.ingest_appends));
    p.counter("fisone_ingest_dirty_buildings_total",
              "buildings re-run because an append changed their content hash",
              d(svc.ingest_dirty_buildings));
    p.gauge("fisone_watch_subscribers", "live watch subscriptions across all connections",
            d(svc.watch_subscribers));

    // Per-backend result caches: the sums above say whether caching works
    // at all; these say whether affinity routing keeps each backend warm.
    if (!extras.backend_caches.empty()) {
        p.family("fisone_backend_cache_hits_total", "counter",
                 "result-cache hits by backend");
        for (std::size_t k = 0; k < extras.backend_caches.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_cache_hits_total", d(extras.backend_caches[k].hits),
                     l.c_str());
        }
        p.family("fisone_backend_cache_misses_total", "counter",
                 "result-cache misses by backend");
        for (std::size_t k = 0; k < extras.backend_caches.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_cache_misses_total", d(extras.backend_caches[k].misses),
                     l.c_str());
        }
        p.family("fisone_backend_cache_evictions_total", "counter",
                 "result-cache LRU evictions by backend");
        for (std::size_t k = 0; k < extras.backend_caches.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_cache_evictions_total",
                     d(extras.backend_caches[k].evictions), l.c_str());
        }
        p.family("fisone_backend_cache_entries", "gauge",
                 "result-cache resident entries by backend");
        for (std::size_t k = 0; k < extras.backend_caches.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_cache_entries", d(extras.backend_caches[k].entries),
                     l.c_str());
        }
        p.family("fisone_backend_cache_warm_loaded", "gauge",
                 "entries restored from the persistent spill at startup, by backend");
        for (std::size_t k = 0; k < extras.backend_caches.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_cache_warm_loaded",
                     d(extras.backend_caches[k].warm_loaded), l.c_str());
        }
    }

    // Fleet health: retry/failover throughput plus each backend's breaker
    // state — `fisone_backend_up == 0` is the page-the-operator signal.
    if (extras.federation) {
        const federation::health_snapshot& fh = *extras.federation;
        p.counter("fisone_federation_retries_total",
                  "protected requests re-dispatched after a transient failure or timeout",
                  d(fh.retries));
        p.counter("fisone_federation_failovers_total",
                  "retries that moved to a different backend", d(fh.failovers));
        p.family("fisone_federation_requests_failed_total", "counter",
                 "requests answered with a typed fault-tolerance error");
        p.sample("fisone_federation_requests_failed_total", d(fh.backend_unavailable),
                 "code=\"backend_unavailable\"");
        p.sample("fisone_federation_requests_failed_total", d(fh.deadline_exceeded),
                 "code=\"deadline_exceeded\"");
        p.family("fisone_backend_up", "gauge",
                 "1 when the backend's circuit breaker is closed (fully trusted)");
        for (std::size_t k = 0; k < fh.backend_up.size(); ++k) {
            const std::string l = "backend=\"" + std::to_string(k) + "\"";
            p.sample("fisone_backend_up", fh.backend_up[k] ? 1.0 : 0.0, l.c_str());
        }
    }

    // Per-stage span latency (the tracing subsystem's exact percentiles).
    // Absent until tracing has been enabled — a scraper sees the families
    // appear the moment spans start flowing.
    if (!extras.stages.empty()) {
        p.family("fisone_stage_seconds", "summary",
                 "span wall time by pipeline/request stage (requires tracing enabled)");
        for (const obs::stage_snapshot& st : extras.stages) {
            const std::string stage = "stage=\"" + escape_label(st.stage.c_str()) + "\"";
            p.sample("fisone_stage_seconds", st.p50, (stage + ",quantile=\"0.5\"").c_str());
            p.sample("fisone_stage_seconds", st.p90, (stage + ",quantile=\"0.9\"").c_str());
            p.sample("fisone_stage_seconds", st.p99, (stage + ",quantile=\"0.99\"").c_str());
            p.sample("fisone_stage_seconds_sum", st.total_seconds, stage.c_str());
            p.sample("fisone_stage_seconds_count", d(st.count), stage.c_str());
        }
        p.family("fisone_stage_duration_seconds", "histogram",
                 "span wall time by pipeline/request stage (requires tracing enabled)");
        for (const obs::stage_snapshot& st : extras.stages) {
            const std::string stage = "stage=\"" + escape_label(st.stage.c_str()) + "\"";
            p.histogram_children("fisone_stage_duration_seconds", st.le_counts, st.count,
                                 st.total_seconds, stage);
        }
    }

    return std::move(p).take();
}

}  // namespace fisone::net
