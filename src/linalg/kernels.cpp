#include "kernels.hpp"

#include <algorithm>

namespace fisone::linalg::kernels {

namespace {

// ---------------------------------------------------------------------------
// Shared axpy-style gemm core: C(i, j) accumulates a_elem(i, kk) · B(kk, j)
// with B rows contiguous over j. The A element for output row i at depth
// kk sits at a[i·ras + kk·kas], which covers both products that stream B:
//   matmul    (A m×k):  ras = k, kas = 1
//   matmul_tn (A k×m):  ras = 1, kas = m   (output row i = column i of A)
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define FISONE_HAVE_VEC_EXT 1
/// Two-lane double vector (one SSE2 register). Lane arithmetic is
/// elementwise, so every output cell still owns one scalar accumulator
/// and its addition order is untouched — vectors only batch *independent*
/// cells, which is exactly what the bit-identity contract allows.
typedef double v2df __attribute__((vector_size(16)));

inline v2df load2(const double* p) noexcept {
    v2df v;
    __builtin_memcpy(&v, p, sizeof v);
    return v;
}
inline void store2(double* p, v2df v) noexcept { __builtin_memcpy(p, &v, sizeof v); }
#endif

/// Full register tile in tile-local coordinates: `c_tile` points at the
/// top-left output cell (row stride n), `b_tile` at B(k0, j) (row stride
/// n), and `a_tile` at A-element (row 0, depth k0) with element address
/// a_tile[r·ras + kk·kas]. Accumulators stay in registers for all `kd`
/// depth steps; `first` selects zero-init vs continuing from the previous
/// k-block's stored partials. Either way each cell's addition sequence is
/// the depth index in ascending order.
inline void tile_axpy_full(const double* a_tile, std::size_t ras, std::size_t kas,
                           const double* b_tile, double* c_tile, std::size_t n, std::size_t kd,
                           bool first) noexcept {
    constexpr std::size_t MR = kKernelRows;
    constexpr std::size_t NR = kKernelCols;
#if FISONE_HAVE_VEC_EXT
    // Explicit two-lane tiles: GCC's auto-vectoriser otherwise picks a
    // shuffle-heavy along-k scheme here that spills the accumulators.
    constexpr std::size_t NV = NR / 2;
    v2df acc[MR][NV];
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NV; ++q)
            acc[r][q] = first ? v2df{0.0, 0.0} : load2(c_tile + r * n + 2 * q);
    // Two depth steps per iteration amortise the loop control; each
    // cell's two updates stay sequential, so the order is unchanged.
    std::size_t kk = 0;
    for (; kk + 2 <= kd; kk += 2) {
        const double* brow0 = b_tile + kk * n;
        const double* brow1 = brow0 + n;
        v2df bv0[NV];
        v2df bv1[NV];
        for (std::size_t q = 0; q < NV; ++q) bv0[q] = load2(brow0 + 2 * q);
        for (std::size_t q = 0; q < NV; ++q) bv1[q] = load2(brow1 + 2 * q);
        for (std::size_t r = 0; r < MR; ++r) {
            const double a0 = a_tile[r * ras + kk * kas];
            const double a1 = a_tile[r * ras + (kk + 1) * kas];
            const v2df av0 = {a0, a0};
            const v2df av1 = {a1, a1};
            for (std::size_t q = 0; q < NV; ++q) {
                acc[r][q] += av0 * bv0[q];
                acc[r][q] += av1 * bv1[q];
            }
        }
    }
    for (; kk < kd; ++kk) {
        const double* brow = b_tile + kk * n;
        v2df bv[NV];
        for (std::size_t q = 0; q < NV; ++q) bv[q] = load2(brow + 2 * q);
        for (std::size_t r = 0; r < MR; ++r) {
            const double as = a_tile[r * ras + kk * kas];
            const v2df av = {as, as};
            for (std::size_t q = 0; q < NV; ++q) acc[r][q] += av * bv[q];
        }
    }
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NV; ++q) store2(c_tile + r * n + 2 * q, acc[r][q]);
#else
    double acc[MR][NR];
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NR; ++q) acc[r][q] = first ? 0.0 : c_tile[r * n + q];
    for (std::size_t kk = 0; kk < kd; ++kk) {
        const double* brow = b_tile + kk * n;
        for (std::size_t r = 0; r < MR; ++r) {
            const double av = a_tile[r * ras + kk * kas];
            for (std::size_t q = 0; q < NR; ++q) acc[r][q] += av * brow[q];
        }
    }
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NR; ++q) c_tile[r * n + q] = acc[r][q];
#endif
}

/// Ragged edge tile (mr × nr smaller than the full tile), same tile-local
/// coordinates and the same ascending-depth accumulation order.
inline void tile_axpy_edge(const double* a_tile, std::size_t ras, std::size_t kas,
                           const double* b_tile, double* c_tile, std::size_t n, std::size_t mr,
                           std::size_t nr, std::size_t kd, bool first) noexcept {
    for (std::size_t r = 0; r < mr; ++r)
        for (std::size_t q = 0; q < nr; ++q) {
            double acc = first ? 0.0 : c_tile[r * n + q];
            for (std::size_t kk = 0; kk < kd; ++kk)
                acc += a_tile[r * ras + kk * kas] * b_tile[kk * n + q];
            c_tile[r * n + q] = acc;
        }
}

void gemm_axpy_blocked(const double* a, std::size_t ras, std::size_t kas, const double* b,
                       double* c, std::size_t depth, std::size_t n, std::size_t r0,
                       std::size_t r1) noexcept {
    if (n == 0 || r1 <= r0) return;
    if (depth == 0) {  // empty sum — the output rows are exactly zero
        std::fill(c + r0 * n, c + r1 * n, 0.0);
        return;
    }
    // Column-strided A (the tn product, kas > 1) is repacked per i-tile
    // into a contiguous kKernelRows × k-block micro-panel: the pack pays
    // the strided loads once, and every j-tile then streams it with unit
    // depth stride like the nn layout. Copying values never changes them,
    // so bit-identity holds.
    const bool pack = kas != 1;
    double apack[kKernelRows * kBlockK];
    for (std::size_t k0 = 0; k0 < depth; k0 += kBlockK) {
        const std::size_t k1 = std::min(depth, k0 + kBlockK);
        const std::size_t kd = k1 - k0;
        const bool first = k0 == 0;
        for (std::size_t i = r0; i < r1; i += kKernelRows) {
            const std::size_t mr = std::min(kKernelRows, r1 - i);
            const double* a_tile = a + i * ras + k0 * kas;
            std::size_t t_ras = ras;
            std::size_t t_kas = kas;
            if (pack && mr == kKernelRows && n >= 2 * kKernelCols) {
                for (std::size_t r = 0; r < kKernelRows; ++r)
                    for (std::size_t kk = 0; kk < kd; ++kk)
                        apack[r * kBlockK + kk] = a_tile[r * ras + kk * kas];
                a_tile = apack;
                t_ras = kBlockK;
                t_kas = 1;
            }
            std::size_t j = 0;
            if (mr == kKernelRows)
                for (; j + kKernelCols <= n; j += kKernelCols)
                    tile_axpy_full(a_tile, t_ras, t_kas, b + k0 * n + j, c + i * n + j, n, kd,
                                   first);
            for (; j < n; j += kKernelCols)
                tile_axpy_edge(a_tile, t_ras, t_kas, b + k0 * n + j, c + i * n + j, n, mr,
                               std::min(kKernelCols, n - j), kd, first);
        }
    }
}

// ---------------------------------------------------------------------------
// Dot-style core for matmul_nt: both operands are row-contiguous over the
// depth index, so the tile reuses each loaded A and B element across the
// opposite tile dimension instead of vectorising lanes.
// ---------------------------------------------------------------------------

/// Columns per register tile of the dot kernel. 4×4 = 16 accumulators —
/// sized so accumulators plus the per-iteration a/b loads stay within
/// baseline x86-64 register pressure.
constexpr std::size_t kDotCols = 4;
constexpr std::size_t kDotRows = 4;

inline void tile_dot_full(const double* a, const double* b, double* c, std::size_t k,
                          std::size_t n, std::size_t i, std::size_t j, std::size_t k0,
                          std::size_t k1, bool first) noexcept {
    constexpr std::size_t MR = kDotRows;
    constexpr std::size_t NR = kDotCols;
    double acc[MR][NR];
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NR; ++q) acc[r][q] = first ? 0.0 : c[(i + r) * n + j + q];
    for (std::size_t kk = k0; kk < k1; ++kk) {
        double av[MR];
        double bv[NR];
        for (std::size_t r = 0; r < MR; ++r) av[r] = a[(i + r) * k + kk];
        for (std::size_t q = 0; q < NR; ++q) bv[q] = b[(j + q) * k + kk];
        for (std::size_t r = 0; r < MR; ++r)
            for (std::size_t q = 0; q < NR; ++q) acc[r][q] += av[r] * bv[q];
    }
    for (std::size_t r = 0; r < MR; ++r)
        for (std::size_t q = 0; q < NR; ++q) c[(i + r) * n + j + q] = acc[r][q];
}

inline void tile_dot_edge(const double* a, const double* b, double* c, std::size_t k,
                          std::size_t n, std::size_t i, std::size_t j, std::size_t mr,
                          std::size_t nr, std::size_t k0, std::size_t k1, bool first) noexcept {
    for (std::size_t r = 0; r < mr; ++r)
        for (std::size_t q = 0; q < nr; ++q) {
            double acc = first ? 0.0 : c[(i + r) * n + j + q];
            for (std::size_t kk = k0; kk < k1; ++kk)
                acc += a[(i + r) * k + kk] * b[(j + q) * k + kk];
            c[(i + r) * n + j + q] = acc;
        }
}

}  // namespace

// --- matmul: C(m×n) = A(m×k) · B(k×n) --------------------------------------

void matmul_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    static_cast<void>(m);
    if (n == 0 || r1 <= r0) return;
    std::fill(c + r0 * n, c + r1 * n, 0.0);
    for (std::size_t i = r0; i < r1; ++i) {
        double* crow = c + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double av = a[i * k + kk];
            const double* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

void matmul_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    static_cast<void>(m);
    gemm_axpy_blocked(a, k, 1, b, c, k, n, r0, r1);
}

// --- matmul_nt: C(m×n) = A(m×k) · B(n×k)ᵀ ----------------------------------

void matmul_nt_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                      std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    static_cast<void>(m);
    for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const double* brow = b + j * k;
            double acc = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            c[i * n + j] = acc;
        }
    }
}

void matmul_nt_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                       std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    static_cast<void>(m);
    if (n == 0 || r1 <= r0) return;
    if (k == 0) {
        std::fill(c + r0 * n, c + r1 * n, 0.0);
        return;
    }
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k, k0 + kBlockK);
        const bool first = k0 == 0;
        for (std::size_t i = r0; i < r1; i += kDotRows) {
            const std::size_t mr = std::min(kDotRows, r1 - i);
            std::size_t j = 0;
            if (mr == kDotRows)
                for (; j + kDotCols <= n; j += kDotCols)
                    tile_dot_full(a, b, c, k, n, i, j, k0, k1, first);
            for (; j < n; j += kDotCols)
                tile_dot_edge(a, b, c, k, n, i, j, mr, std::min(kDotCols, n - j), k0, k1, first);
        }
    }
}

// --- matmul_tn: C(m×n) = A(k×m)ᵀ · B(k×n) ----------------------------------

void matmul_tn_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                      std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    if (n == 0 || r1 <= r0) return;
    std::fill(c + r0 * n, c + r1 * n, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const double* brow = b + kk * n;
        for (std::size_t i = r0; i < r1; ++i) {
            const double av = a[kk * m + i];
            double* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

void matmul_tn_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                       std::size_t n, std::size_t r0, std::size_t r1) noexcept {
    gemm_axpy_blocked(a, 1, m, b, c, k, n, r0, r1);
}

// --- fused vector primitives ------------------------------------------------

void axpy(std::size_t n, double alpha, const double* x, double* y) noexcept {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot(std::size_t n, const double* x, const double* y) noexcept {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
    return acc;
}

void scale(std::size_t n, double alpha, double* x) noexcept {
    for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

}  // namespace fisone::linalg::kernels
