#include "eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace fisone::linalg {

namespace {

constexpr double kSymmetryTolerance = 1e-8;
constexpr double kConvergenceTolerance = 1e-12;

void check_symmetric(const matrix& a, const char* what) {
    if (a.rows() != a.cols()) throw std::invalid_argument(std::string(what) + ": not square");
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = i + 1; j < a.cols(); ++j)
            if (std::abs(a(i, j) - a(j, i)) > kSymmetryTolerance)
                throw std::invalid_argument(std::string(what) + ": not symmetric");
}

/// Sum of squares of off-diagonal entries — the Jacobi convergence measure.
double off_diagonal_norm(const matrix& a) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j) acc += a(i, j) * a(i, j);
    return acc;
}

}  // namespace

eigen_result jacobi_eigen(const matrix& input, std::size_t max_sweeps) {
    check_symmetric(input, "jacobi_eigen");
    const std::size_t n = input.rows();
    matrix a = input;
    matrix v = identity(n);

    if (n <= 1) {
        eigen_result r;
        r.vectors = v;
        if (n == 1) r.values = {a(0, 0)};
        return r;
    }

    const double initial = off_diagonal_norm(a);
    const double threshold = std::max(initial * kConvergenceTolerance, 1e-300);

    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm(a) <= threshold) break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::abs(apq) < 1e-300) continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Apply the rotation G(p,q,θ)ᵀ A G(p,q,θ) in place.
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect and sort eigenpairs by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> diag(n);
    for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
    std::sort(order.begin(), order.end(),
              [&diag](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

    eigen_result result;
    result.values.resize(n);
    result.vectors = matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        result.values[j] = diag[order[j]];
        for (std::size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
    }
    return result;
}

matrix double_center(const matrix& distances) {
    if (distances.rows() != distances.cols())
        throw std::invalid_argument("double_center: not square");
    const std::size_t n = distances.rows();
    matrix d2(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) d2(i, j) = distances(i, j) * distances(i, j);

    std::vector<double> row_mean(n, 0.0), col_mean(n, 0.0);
    double grand = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            row_mean[i] += d2(i, j);
            col_mean[j] += d2(i, j);
            grand += d2(i, j);
        }
    for (std::size_t i = 0; i < n; ++i) row_mean[i] /= static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) col_mean[j] /= static_cast<double>(n);
    grand /= static_cast<double>(n * n);

    matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = -0.5 * (d2(i, j) - row_mean[i] - col_mean[j] + grand);
    return b;
}

eigen_result subspace_eigen(const matrix& a, std::size_t k, std::size_t max_iterations,
                            std::uint64_t seed) {
    check_symmetric(a, "subspace_eigen");
    const std::size_t n = a.rows();
    if (k == 0 || k > n) throw std::invalid_argument("subspace_eigen: k out of range");

    // Gershgorin upper bound on |λ| for the positive shift.
    double shift = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) row_sum += std::abs(a(i, j));
        shift = std::max(shift, row_sum);
    }
    matrix shifted = a;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += shift;

    // Random start block with guard vectors (oversampling accelerates the
    // trailing eigenpairs, whose convergence rate depends on the spectral
    // gap), orthonormalised by modified Gram–Schmidt.
    const std::size_t block = std::min(n, k + 8);
    util::rng gen(seed);
    matrix q(n, block);
    for (double& x : q.flat()) x = gen.normal();

    auto orthonormalize = [](matrix& block) {
        const std::size_t rows = block.rows();
        const std::size_t cols = block.cols();
        for (std::size_t j = 0; j < cols; ++j) {
            for (std::size_t p = 0; p < j; ++p) {
                double proj = 0.0;
                for (std::size_t i = 0; i < rows; ++i) proj += block(i, j) * block(i, p);
                for (std::size_t i = 0; i < rows; ++i) block(i, j) -= proj * block(i, p);
            }
            double nrm = 0.0;
            for (std::size_t i = 0; i < rows; ++i) nrm += block(i, j) * block(i, j);
            nrm = std::sqrt(nrm);
            if (nrm < 1e-14) nrm = 1.0;  // degenerate column: leave as-is
            for (std::size_t i = 0; i < rows; ++i) block(i, j) /= nrm;
        }
    };
    orthonormalize(q);

    for (std::size_t it = 0; it < max_iterations; ++it) {
        matrix z = matmul(shifted, q);
        orthonormalize(z);
        q = std::move(z);
    }

    // Rayleigh–Ritz: orthogonal iteration converges the *subspace* but not
    // individual columns when eigenvalues are close. Diagonalising the
    // projected problem T = QᵀAQ and rotating Q recovers the eigenvectors.
    const matrix aq = matmul(a, q);
    const matrix t = matmul_tn(q, aq);
    matrix t_sym(block, block);
    for (std::size_t i = 0; i < block; ++i)
        for (std::size_t j = 0; j < block; ++j) t_sym(i, j) = 0.5 * (t(i, j) + t(j, i));
    const eigen_result small = jacobi_eigen(t_sym);
    const matrix rotated = matmul(q, small.vectors);

    // Keep the top k of the (k + guard)-dimensional Ritz set.
    eigen_result result;
    result.values.assign(small.values.begin(), small.values.begin() + static_cast<long>(k));
    result.vectors = matrix(n, k);
    for (std::size_t j = 0; j < k; ++j)
        for (std::size_t i = 0; i < n; ++i) result.vectors(i, j) = rotated(i, j);
    return result;
}

matrix classical_mds(const matrix& distances, std::size_t dim) {
    if (dim == 0) throw std::invalid_argument("classical_mds: dim must be > 0");
    const matrix b = double_center(distances);
    const std::size_t n = distances.rows();
    const std::size_t k = std::min(dim, n);
    // Jacobi costs O(n³) per sweep; switch to subspace iteration for the
    // sizes the experiments use.
    const eigen_result eig = n <= 96 ? jacobi_eigen(b) : subspace_eigen(b, k);

    matrix coords(n, dim, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
        const double lambda = std::max(eig.values[j], 0.0);
        const double scale = std::sqrt(lambda);
        for (std::size_t i = 0; i < n; ++i) coords(i, j) = eig.vectors(i, j) * scale;
    }
    return coords;
}

}  // namespace fisone::linalg
