#include "workspace.hpp"

#include <algorithm>
#include <utility>

namespace fisone::linalg {

matrix workspace::take(std::size_t rows, std::size_t cols) {
    const std::size_t need = rows * cols;
    if (pool_.empty()) {
        return matrix::uninit(rows, cols);
    }
    // Best fit: the smallest pooled capacity that holds the request, so a
    // 1×1 loss scratch never pins a layer-sized buffer.
    std::size_t best = pool_.size();
    std::size_t largest = 0;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        const std::size_t cap = pool_[i].capacity();
        if (cap >= need && (best == pool_.size() || cap < pool_[best].capacity())) best = i;
        if (pool_[i].capacity() >= pool_[largest].capacity()) largest = i;
    }
    if (best == pool_.size()) {
        // Nothing fits. Replace the largest buffer with a fresh allocation
        // rather than resize()-growing it, which would memcpy its garbage
        // scratch contents into the new block; the bigger buffer joins the
        // pool on recycle and serves later requests of this size.
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(largest));
        return matrix::uninit(rows, cols);
    }
    matrix m = std::move(pool_[best]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
    m.resize_uninit(rows, cols);
    return m;
}

matrix workspace::take_zero(std::size_t rows, std::size_t cols) {
    matrix m = take(rows, cols);
    m.fill(0.0);
    return m;
}

matrix workspace::take_copy(const matrix& src) {
    matrix m = take(src.rows(), src.cols());
    std::copy(src.flat().begin(), src.flat().end(), m.flat().begin());
    return m;
}

void workspace::recycle(matrix&& m) noexcept {
    if (m.capacity() == 0) return;
    try {
        pool_.push_back(std::move(m));
    } catch (...) {
        // Out of memory growing the pool vector: drop the buffer instead
        // (freeing memory is the right response to allocation pressure).
    }
}

}  // namespace fisone::linalg
