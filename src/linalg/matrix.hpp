#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles — the numeric workhorse shared by the
/// autodiff engine, the classical-MDS baseline and the evaluation code.
/// Deliberately small: only the operations the library needs, all bounds-
/// checked at API boundaries. Storage is 64-byte aligned (one cache line)
/// and the dense products route through the cache-blocked kernel layer in
/// kernels.hpp, whose results are bit-identical to the scalar reference
/// kernels at any thread count.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "linalg/kernels.hpp"

namespace fisone::util {
class thread_pool;
}

namespace fisone::linalg {

/// Dense row-major matrix. Value-semantic; copies are deep.
class matrix {
public:
    using storage = std::vector<double, kernels::aligned_allocator<double>>;

    matrix() = default;
    matrix(const matrix&) = default;
    matrix& operator=(const matrix&) = default;

    /// Moves leave the source as a clean 0×0 matrix, so a moved-from
    /// matrix never reports stale dimensions over empty storage (the
    /// workspace recycles matrices by move and tape::grad exposes them).
    matrix(matrix&& other) noexcept
        : rows_(std::exchange(other.rows_, 0)),
          cols_(std::exchange(other.cols_, 0)),
          data_(std::move(other.data_)) {
        other.data_.clear();
    }
    matrix& operator=(matrix&& other) noexcept {
        rows_ = std::exchange(other.rows_, 0);
        cols_ = std::exchange(other.cols_, 0);
        data_ = std::move(other.data_);
        other.data_.clear();
        return *this;
    }

    /// Construct a \p rows × \p cols matrix filled with \p fill.
    matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Construct a \p rows × \p cols matrix with **uninitialised** cells —
    /// the allocation path for outputs that are fully overwritten before
    /// any read (matmul results, gathers, workspace scratch). Never read
    /// an element before writing it.
    [[nodiscard]] static matrix uninit(std::size_t rows, std::size_t cols) {
        matrix m;
        m.rows_ = rows;
        m.cols_ = cols;
        m.data_.resize(rows * cols);  // default-init: aligned_allocator leaves cells untouched
        return m;
    }

    /// Construct from nested braces: `matrix{{1,2},{3,4}}`.
    /// \throws std::invalid_argument on ragged rows.
    matrix(std::initializer_list<std::initializer_list<double>> init) {
        rows_ = init.size();
        cols_ = rows_ == 0 ? 0 : init.begin()->size();
        data_.reserve(rows_ * cols_);
        for (const auto& r : init) {
            if (r.size() != cols_) throw std::invalid_argument("matrix: ragged initializer");
            data_.insert(data_.end(), r.begin(), r.end());
        }
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Allocated capacity in elements (used by the workspace recycler).
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

    /// Unchecked element access (hot paths).
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Checked element access.
    [[nodiscard]] double& at(std::size_t r, std::size_t c) {
        check_index(r, c);
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const double& at(std::size_t r, std::size_t c) const {
        check_index(r, c);
        return data_[r * cols_ + c];
    }

    /// Non-owning view of row \p r.
    [[nodiscard]] std::span<double> row(std::size_t r) {
        if (r >= rows_) throw std::out_of_range("matrix::row");
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<const double> row(std::size_t r) const {
        if (r >= rows_) throw std::out_of_range("matrix::row");
        return {data_.data() + r * cols_, cols_};
    }

    /// Flat storage (row-major).
    [[nodiscard]] std::span<double> flat() noexcept { return data_; }
    [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }
    [[nodiscard]] double* data() noexcept { return data_.data(); }
    [[nodiscard]] const double* data() const noexcept { return data_.data(); }

    /// Fill every element with \p value.
    void fill(double value) noexcept { data_.assign(data_.size(), value); }

    /// Reshape in place; total size must be preserved.
    void reshape(std::size_t rows, std::size_t cols) {
        if (rows * cols != data_.size()) throw std::invalid_argument("matrix::reshape: size change");
        rows_ = rows;
        cols_ = cols;
    }

    /// Re-shape to \p rows × \p cols, reusing the allocation when it is
    /// large enough; any newly exposed cells are **uninitialised**. This
    /// is how the workspace turns a recycled buffer into fresh scratch
    /// without paying a zero-fill.
    void resize_uninit(std::size_t rows, std::size_t cols) {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);  // default-init via aligned_allocator
    }

    // --- elementwise arithmetic (shape-checked) ---
    matrix& operator+=(const matrix& other);
    matrix& operator-=(const matrix& other);
    matrix& operator*=(double scalar) noexcept;
    [[nodiscard]] friend matrix operator+(matrix lhs, const matrix& rhs) { return lhs += rhs; }
    [[nodiscard]] friend matrix operator-(matrix lhs, const matrix& rhs) { return lhs -= rhs; }
    [[nodiscard]] friend matrix operator*(matrix lhs, double s) noexcept { return lhs *= s; }
    [[nodiscard]] friend matrix operator*(double s, matrix rhs) noexcept { return rhs *= s; }

    /// Exact elementwise equality (used by tests).
    [[nodiscard]] friend bool operator==(const matrix& a, const matrix& b) noexcept {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

private:
    void check_index(std::size_t r, std::size_t c) const {
        if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix::at");
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    storage data_;
};

/// Matrix product A·B. \throws std::invalid_argument on inner-dim mismatch.
/// All three products optionally split work over \p pool by *output rows*;
/// each output element keeps its serial accumulation order, so pooled
/// results are bit-identical to the single-threaded ones (kernels.hpp).
[[nodiscard]] matrix matmul(const matrix& a, const matrix& b, util::thread_pool* pool = nullptr);

/// A·Bᵀ without materialising the transpose.
[[nodiscard]] matrix matmul_nt(const matrix& a, const matrix& b,
                               util::thread_pool* pool = nullptr);

/// Aᵀ·B without materialising the transpose.
[[nodiscard]] matrix matmul_tn(const matrix& a, const matrix& b,
                               util::thread_pool* pool = nullptr);

/// Destination-passing forms of the three products: \p out is reshaped
/// (allocation-free when its capacity suffices — the workspace path) and
/// fully overwritten. \p out must not alias \p a or \p b.
void matmul_into(matrix& out, const matrix& a, const matrix& b, util::thread_pool* pool = nullptr);
void matmul_nt_into(matrix& out, const matrix& a, const matrix& b,
                    util::thread_pool* pool = nullptr);
void matmul_tn_into(matrix& out, const matrix& a, const matrix& b,
                    util::thread_pool* pool = nullptr);

/// Destination-passing Hadamard product, same contract as the products
/// above. \throws std::invalid_argument on shape mismatch.
void hadamard_into(matrix& out, const matrix& a, const matrix& b);

/// Transpose.
[[nodiscard]] matrix transpose(const matrix& a);

/// Identity matrix of order n.
[[nodiscard]] matrix identity(std::size_t n);

/// Elementwise (Hadamard) product. \throws std::invalid_argument on shape mismatch.
[[nodiscard]] matrix hadamard(const matrix& a, const matrix& b);

/// Euclidean distance between two equal-length vectors.
[[nodiscard]] double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length vectors.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// L2 norm of a vector.
[[nodiscard]] double norm2(std::span<const double> a);

/// Cosine similarity; returns 0 when either vector is all-zero.
[[nodiscard]] double cosine_similarity(std::span<const double> a, std::span<const double> b);

}  // namespace fisone::linalg
