#pragma once

/// \file workspace.hpp
/// Scratch-buffer arena for matrix temporaries. The autodiff tape and the
/// RF-GNN inference path used to allocate (and zero) a fresh matrix for
/// every operation of every training step; with a workspace the storage of
/// finished temporaries is recycled, so a steady-state forward+backward
/// pass performs no heap allocation for matrix data at all.
///
/// Usage pattern:
///   matrix t = ws.take(r, c);      // uninitialised scratch — write first!
///   ...                            // t behaves like any matrix
///   ws.recycle(std::move(t));      // storage returns to the arena
///
/// `take` hands back the pooled buffer whose capacity fits best (smallest
/// capacity ≥ the request, else the largest available, which then grows
/// once and stays). Matrices that escape (e.g. into a layer cache) simply
/// keep their storage — recycling is optional, never required.
///
/// Not thread-safe: one workspace per tape / per model, like the tape
/// itself.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace fisone::linalg {

class workspace {
public:
    workspace() = default;
    workspace(const workspace&) = delete;
    workspace& operator=(const workspace&) = delete;
    workspace(workspace&&) = default;
    workspace& operator=(workspace&&) = default;

    /// Scratch matrix of \p rows × \p cols with **uninitialised** cells.
    [[nodiscard]] matrix take(std::size_t rows, std::size_t cols);

    /// Scratch matrix of \p rows × \p cols with every cell set to 0.0.
    [[nodiscard]] matrix take_zero(std::size_t rows, std::size_t cols);

    /// Scratch copy of \p src (shape and bits).
    [[nodiscard]] matrix take_copy(const matrix& src);

    /// Return a matrix's storage to the arena. Empty matrices are
    /// dropped, and if growing the arena itself fails the buffer is
    /// simply freed — recycling is an optimisation, so this never throws.
    void recycle(matrix&& m) noexcept;

    /// Drop every pooled buffer (frees the memory).
    void clear() noexcept { pool_.clear(); }

    /// Number of buffers currently pooled (observability + tests).
    [[nodiscard]] std::size_t pooled() const noexcept { return pool_.size(); }

private:
    std::vector<matrix> pool_;
};

}  // namespace fisone::linalg
