#pragma once

/// \file eigen.hpp
/// Symmetric eigendecomposition via the cyclic Jacobi rotation method,
/// plus the double-centering step of classical (Torgerson) MDS. These are
/// the numeric substrate for the MDS baseline (paper §V-A).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "matrix.hpp"

namespace fisone::linalg {

/// Result of a symmetric eigendecomposition: A = V · diag(λ) · Vᵀ.
/// Eigenpairs are sorted by descending eigenvalue.
struct eigen_result {
    std::vector<double> values;  ///< eigenvalues, descending
    matrix vectors;              ///< column j is the eigenvector of values[j]
};

/// Jacobi eigensolver for a symmetric matrix.
/// \param a symmetric input (symmetry is validated up to a tolerance).
/// \param max_sweeps upper bound on full Jacobi sweeps (each sweep visits
///        every off-diagonal pair once).
/// \throws std::invalid_argument if \p a is not square or not symmetric.
[[nodiscard]] eigen_result jacobi_eigen(const matrix& a, std::size_t max_sweeps = 64);

/// Double-center a squared-distance matrix: B = -½ · J · D² · J with
/// J = I - (1/n)·11ᵀ. Input is the matrix of *plain* distances; squaring
/// happens internally (classical MDS convention).
/// \throws std::invalid_argument if \p distances is not square.
[[nodiscard]] matrix double_center(const matrix& distances);

/// Top-k eigenpairs of a symmetric matrix by shifted orthogonal (subspace)
/// iteration — O(n²·k) per sweep, used when full Jacobi would be too slow.
/// The Gershgorin shift biases convergence toward the *algebraically*
/// largest eigenvalues. Eigenpairs are returned in descending order.
/// \throws std::invalid_argument if \p a is not symmetric or k > n.
[[nodiscard]] eigen_result subspace_eigen(const matrix& a, std::size_t k,
                                          std::size_t max_iterations = 64,
                                          std::uint64_t seed = 12345);

/// Classical (Torgerson) MDS: embed n points into \p dim dimensions from a
/// pairwise distance matrix. Negative eigenvalues are clamped to zero (the
/// standard treatment for non-Euclidean dissimilarities such as 1−cosine).
/// Uses Jacobi for small n and subspace iteration for large n.
/// \returns an n × dim coordinate matrix.
[[nodiscard]] matrix classical_mds(const matrix& distances, std::size_t dim);

}  // namespace fisone::linalg
