#pragma once

/// \file parallel_policy.hpp
/// The single place where the numeric kernels decide *whether* and *how
/// finely* to use a thread pool. Before this header existed the
/// thresholds were duplicated per kernel (a `kMinParallelFlops` inside
/// matrix.cpp, a `row_grain` inside thread_pool.hpp); tuning one of them
/// meant hunting through every hot path. Everything below is a pure
/// function of the problem size, never of the pool size, so the
/// decomposition — and therefore the bits — stay identical at every
/// thread count (see thread_pool.hpp for the determinism contract).

#include <cstddef>

namespace fisone::util {
class thread_pool;
}

namespace fisone::linalg {

struct parallel_policy {
    /// Minimum flop count before a kernel dispatches onto the pool at
    /// all. Pool hand-off (queue lock, condition-variable wake, future
    /// join) costs on the order of ten microseconds — tens of thousands
    /// of scalar flops. The tape's small matmuls (e.g. a 512×64 · 64×32
    /// dense layer ≈ 2·10⁶ flops) should still parallelise, but the tiny
    /// per-row products of inductive inference (1×2d · 2d×d ≈ 4·10³
    /// flops) must not pay dispatch for less math than the dispatch
    /// itself. 2¹⁸ ≈ 2.6·10⁵ flops ≈ the break-even point with a healthy
    /// margin; the old 2¹⁵ threshold made sub-dispatch-cost products
    /// eligible.
    static constexpr std::size_t min_parallel_flops = std::size_t{1} << 18;

    /// Rows per `parallel_for` chunk for row-partitioned kernels. Any
    /// grain is bit-exact (rows are independent); this one balances
    /// scheduling overhead against load skew: ~32 chunks keeps every
    /// worker busy on skewed rows without flooding the queue.
    [[nodiscard]] static constexpr std::size_t row_grain(std::size_t rows) noexcept {
        const std::size_t g = rows / 32;
        return g == 0 ? 1 : g;
    }

    /// Elements per chunk for flat O(n) sweeps (e.g. the UPGMA
    /// Lance–Williams row update). A chunk below this span moves less
    /// memory than the dispatch costs; `span_grain` therefore never
    /// returns less, which makes `parallel_for` collapse small sweeps
    /// into one chunk — and a one-chunk parallel_for runs inline on the
    /// caller, paying no pool overhead at all.
    static constexpr std::size_t min_span = std::size_t{8} << 10;

    [[nodiscard]] static constexpr std::size_t span_grain(std::size_t items) noexcept {
        const std::size_t g = row_grain(items);
        return g < min_span ? min_span : g;
    }

    /// Gate a kernel's pool on the flop budget: below the threshold the
    /// serial path wins, so the kernel gets a null pool and runs inline.
    [[nodiscard]] static util::thread_pool* effective(util::thread_pool* pool,
                                                     std::size_t flops) noexcept {
        return flops >= min_parallel_flops ? pool : nullptr;
    }
};

}  // namespace fisone::linalg
