#include "matrix.hpp"

#include <cmath>

#include "linalg/parallel_policy.hpp"
#include "util/thread_pool.hpp"

namespace fisone::linalg {

namespace {
void check_same_shape(const matrix& a, const matrix& b, const char* what) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument(std::string(what) + ": shape mismatch");
}
void check_same_length(std::span<const double> a, std::span<const double> b, const char* what) {
    if (a.size() != b.size()) throw std::invalid_argument(std::string(what) + ": length mismatch");
}

constexpr std::size_t row_grain(std::size_t rows) noexcept {
    return parallel_policy::row_grain(rows);
}
}  // namespace

matrix& matrix::operator+=(const matrix& other) {
    check_same_shape(*this, other, "matrix::operator+=");
    kernels::axpy(data_.size(), 1.0, other.data_.data(), data_.data());
    return *this;
}

matrix& matrix::operator-=(const matrix& other) {
    check_same_shape(*this, other, "matrix::operator-=");
    kernels::axpy(data_.size(), -1.0, other.data_.data(), data_.data());
    return *this;
}

matrix& matrix::operator*=(double scalar) noexcept {
    kernels::scale(data_.size(), scalar, data_.data());
    return *this;
}

void matmul_into(matrix& out, const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dimension mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.resize_uninit(m, n);
    pool = parallel_policy::effective(pool, m * k * n);
    util::parallel_for(pool, 0, m, row_grain(m), [&](std::size_t r0, std::size_t r1) {
        kernels::matmul_blocked(a.data(), b.data(), out.data(), m, k, n, r0, r1);
    });
}

void matmul_nt_into(matrix& out, const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: dimension mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    out.resize_uninit(m, n);
    pool = parallel_policy::effective(pool, m * k * n);
    util::parallel_for(pool, 0, m, row_grain(m), [&](std::size_t r0, std::size_t r1) {
        kernels::matmul_nt_blocked(a.data(), b.data(), out.data(), m, k, n, r0, r1);
    });
}

void matmul_tn_into(matrix& out, const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: dimension mismatch");
    const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
    out.resize_uninit(m, n);
    pool = parallel_policy::effective(pool, m * k * n);
    util::parallel_for(pool, 0, m, row_grain(m), [&](std::size_t r0, std::size_t r1) {
        kernels::matmul_tn_blocked(a.data(), b.data(), out.data(), m, k, n, r0, r1);
    });
}

matrix matmul(const matrix& a, const matrix& b, util::thread_pool* pool) {
    matrix out;
    matmul_into(out, a, b, pool);
    return out;
}

matrix matmul_nt(const matrix& a, const matrix& b, util::thread_pool* pool) {
    matrix out;
    matmul_nt_into(out, a, b, pool);
    return out;
}

matrix matmul_tn(const matrix& a, const matrix& b, util::thread_pool* pool) {
    matrix out;
    matmul_tn_into(out, a, b, pool);
    return out;
}

matrix transpose(const matrix& a) {
    matrix out = matrix::uninit(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
    return out;
}

matrix identity(std::size_t n) {
    matrix out(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
    return out;
}

void hadamard_into(matrix& out, const matrix& a, const matrix& b) {
    check_same_shape(a, b, "hadamard");
    out.resize_uninit(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) out.flat()[i] = a.flat()[i] * b.flat()[i];
}

matrix hadamard(const matrix& a, const matrix& b) {
    matrix out;
    hadamard_into(out, a, b);
    return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "squared_distance");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
    return std::sqrt(squared_distance(a, b));
}

double dot(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "dot");
    return kernels::dot(a.size(), a.data(), b.data());
}

double norm2(std::span<const double> a) {
    double acc = 0.0;
    for (const double x : a) acc += x * x;
    return std::sqrt(acc);
}

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "cosine_similarity");
    const double na = norm2(a);
    const double nb = norm2(b);
    if (na == 0.0 || nb == 0.0) return 0.0;
    return dot(a, b) / (na * nb);
}

}  // namespace fisone::linalg
