#include "matrix.hpp"

#include <cmath>

#include "util/thread_pool.hpp"

namespace fisone::linalg {

namespace {
void check_same_shape(const matrix& a, const matrix& b, const char* what) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument(std::string(what) + ": shape mismatch");
}
void check_same_length(std::span<const double> a, std::span<const double> b, const char* what) {
    if (a.size() != b.size()) throw std::invalid_argument(std::string(what) + ": length mismatch");
}

/// Pooled products only pay off above a work threshold; below it the
/// chunk hand-off costs more than the arithmetic.
constexpr std::size_t kMinParallelFlops = 1 << 15;

util::thread_pool* effective_pool(util::thread_pool* pool, std::size_t flops) noexcept {
    return flops >= kMinParallelFlops ? pool : nullptr;
}

using util::row_grain;
}  // namespace

matrix& matrix::operator+=(const matrix& other) {
    check_same_shape(*this, other, "matrix::operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

matrix& matrix::operator-=(const matrix& other) {
    check_same_shape(*this, other, "matrix::operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

matrix& matrix::operator*=(double scalar) noexcept {
    for (double& x : data_) x *= scalar;
    return *this;
}

matrix matmul(const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dimension mismatch");
    matrix out(a.rows(), b.cols(), 0.0);
    pool = effective_pool(pool, a.rows() * a.cols() * b.cols());
    // i-k-j loop order keeps the inner loop contiguous over both b and out.
    util::parallel_for(pool, 0, a.rows(), row_grain(a.rows()),
                       [&](std::size_t r0, std::size_t r1) {
                           for (std::size_t i = r0; i < r1; ++i) {
                               for (std::size_t k = 0; k < a.cols(); ++k) {
                                   const double aik = a(i, k);
                                   if (aik == 0.0) continue;
                                   const double* brow = &b(k, 0);
                                   double* orow = &out(i, 0);
                                   for (std::size_t j = 0; j < b.cols(); ++j)
                                       orow[j] += aik * brow[j];
                               }
                           }
                       });
    return out;
}

matrix matmul_nt(const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: dimension mismatch");
    matrix out(a.rows(), b.rows(), 0.0);
    pool = effective_pool(pool, a.rows() * a.cols() * b.rows());
    util::parallel_for(pool, 0, a.rows(), row_grain(a.rows()),
                       [&](std::size_t r0, std::size_t r1) {
                           for (std::size_t i = r0; i < r1; ++i) {
                               const double* arow = &a(i, 0);
                               for (std::size_t j = 0; j < b.rows(); ++j) {
                                   const double* brow = &b(j, 0);
                                   double acc = 0.0;
                                   for (std::size_t k = 0; k < a.cols(); ++k)
                                       acc += arow[k] * brow[k];
                                   out(i, j) = acc;
                               }
                           }
                       });
    return out;
}

matrix matmul_tn(const matrix& a, const matrix& b, util::thread_pool* pool) {
    if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: dimension mismatch");
    matrix out(a.cols(), b.cols(), 0.0);
    pool = effective_pool(pool, a.rows() * a.cols() * b.cols());
    // Each output row i accumulates over k in ascending order exactly as the
    // serial k-outer loop did, so splitting by output rows stays bit-exact.
    util::parallel_for(pool, 0, a.cols(), row_grain(a.cols()),
                       [&](std::size_t r0, std::size_t r1) {
                           for (std::size_t k = 0; k < a.rows(); ++k) {
                               const double* arow = &a(k, 0);
                               const double* brow = &b(k, 0);
                               for (std::size_t i = r0; i < r1; ++i) {
                                   const double aki = arow[i];
                                   if (aki == 0.0) continue;
                                   double* orow = &out(i, 0);
                                   for (std::size_t j = 0; j < b.cols(); ++j)
                                       orow[j] += aki * brow[j];
                               }
                           }
                       });
    return out;
}

matrix transpose(const matrix& a) {
    matrix out(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
    return out;
}

matrix identity(std::size_t n) {
    matrix out(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
    return out;
}

matrix hadamard(const matrix& a, const matrix& b) {
    check_same_shape(a, b, "hadamard");
    matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) out.flat()[i] = a.flat()[i] * b.flat()[i];
    return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "squared_distance");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
    return std::sqrt(squared_distance(a, b));
}

double dot(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "dot");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm2(std::span<const double> a) {
    double acc = 0.0;
    for (const double x : a) acc += x * x;
    return std::sqrt(acc);
}

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
    check_same_length(a, b, "cosine_similarity");
    const double na = norm2(a);
    const double nb = norm2(b);
    if (na == 0.0 || nb == 0.0) return 0.0;
    return dot(a, b) / (na * nb);
}

}  // namespace fisone::linalg
