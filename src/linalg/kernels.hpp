#pragma once

/// \file kernels.hpp
/// The raw numeric kernel layer under `linalg::matrix`: cache-blocked,
/// register-tiled dense products plus the fused vector primitives
/// (axpy / dot / scale) everything above builds on. Kernels work on raw
/// row-major buffers so they carry no matrix dependency and can be
/// benchmarked / tested against the scalar reference in isolation.
///
/// ## The bit-identity contract
///
/// Every blocked kernel produces output that is **bit-identical** to its
/// scalar reference for finite inputs, at any thread count. The rule
/// that makes this possible: for every output cell, the sequence of
/// floating-point additions is exactly `c = 0; c += a·b` over the depth
/// index in ascending order — the same sequence the scalar i-k-j loop
/// performs. Blocking merely changes *where* the running value lives:
///  - the j-loop is register-tiled (kKernelCols-wide accumulator rows),
///    which is pure loop unrolling — each cell keeps its own accumulator;
///  - the k-loop is split into kBlockK-sized blocks processed in
///    ascending order; between blocks the accumulators round-trip
///    through the output buffer, which does not change the value
///    (storing and reloading a double is exact);
///  - threads split by *output rows*, and no cell is ever touched by two
///    threads.
/// Hence blocked, scalar, serial and pooled runs all agree to the bit.

#include <cstddef>
#include <new>
#include <utility>

namespace fisone::linalg::kernels {

/// Alignment of every matrix/buffer allocation: one full cache line, so
/// a 64-byte SIMD load/store never straddles lines and row starts of
/// power-of-two widths land on line boundaries.
inline constexpr std::size_t kAlignment = 64;

/// Register tile geometry of the blocked axpy-style products:
/// kKernelRows output rows × kKernelCols output columns accumulate in
/// registers per k-block. 4×4 doubles = 16 accumulators = 8 SSE2
/// registers, spill-free on baseline x86-64. The tall tile matters:
/// every loaded B vector feeds 4 output rows, so a full B sweep happens
/// once per 4 rows of C — half the B-panel traffic of a 2-row tile,
/// which is what large (≥256³) products are bound by.
inline constexpr std::size_t kKernelRows = 4;
inline constexpr std::size_t kKernelCols = 4;

/// Depth (k) block: 256 iterations × a 64-byte B row per iteration keeps
/// the streamed B panel ≈16 KiB — comfortably L1-resident — while the
/// accumulators stay in registers for the whole block.
inline constexpr std::size_t kBlockK = 256;

/// STL allocator returning kAlignment-aligned storage whose *default*
/// construction is a no-op: `std::vector<double, aligned_allocator<double>>(n)`
/// yields uninitialised storage (the uninit-alloc path used for buffers
/// that are fully overwritten), while the `(n, value)` form still fills.
template <class T>
class aligned_allocator {
public:
    using value_type = T;

    aligned_allocator() noexcept = default;
    template <class U>
    aligned_allocator(const aligned_allocator<U>&) noexcept {}

    [[nodiscard]] T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
    }
    void deallocate(T* p, std::size_t n) noexcept {
        ::operator delete(p, n * sizeof(T), std::align_val_t{kAlignment});
    }

    /// Default construction leaves trivially-destructible elements
    /// uninitialised — this is what makes `vector(n)` an uninit alloc.
    template <class U>
    void construct(U* p) noexcept {
        ::new (static_cast<void*>(p)) U;
    }
    template <class U, class... Args>
    void construct(U* p, Args&&... args) {
        ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }

    template <class U>
    struct rebind {
        using other = aligned_allocator<U>;
    };

    friend bool operator==(const aligned_allocator&, const aligned_allocator&) noexcept {
        return true;
    }
};

// ---------------------------------------------------------------------------
// Dense products. All buffers are row-major. Each call computes output
// rows [r0, r1) only, so a caller can split work across threads by rows;
// the output range needs no pre-zeroing (the kernels fully define it).
// Output must not alias either input.
// ---------------------------------------------------------------------------

/// C(m×n) = A(m×k) · B(k×n) — scalar i-k-j reference.
void matmul_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                   std::size_t n, std::size_t r0, std::size_t r1) noexcept;

/// C(m×n) = A(m×k) · B(k×n) — cache-blocked, register-tiled.
void matmul_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t r0, std::size_t r1) noexcept;

/// C(m×n) = A(m×k) · B(n×k)ᵀ — scalar i-j-k reference.
void matmul_nt_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                      std::size_t n, std::size_t r0, std::size_t r1) noexcept;

/// C(m×n) = A(m×k) · B(n×k)ᵀ — register-tiled dot kernel.
void matmul_nt_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                       std::size_t n, std::size_t r0, std::size_t r1) noexcept;

/// C(m×n) = A(k×m)ᵀ · B(k×n) — scalar k-outer reference.
void matmul_tn_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                      std::size_t n, std::size_t r0, std::size_t r1) noexcept;

/// C(m×n) = A(k×m)ᵀ · B(k×n) — cache-blocked, register-tiled.
void matmul_tn_blocked(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                       std::size_t n, std::size_t r0, std::size_t r1) noexcept;

// ---------------------------------------------------------------------------
// Fused vector primitives. Plain contiguous loops with restrict-style
// signatures that the compiler auto-vectorises; shared by the matrix
// elementwise operators, the tape's pointwise backprops and the row
// transforms. `dot` accumulates strictly left-to-right (it feeds
// bit-identity-sensitive paths), so it vectorises only across calls.
// ---------------------------------------------------------------------------

/// y[i] += alpha * x[i].
void axpy(std::size_t n, double alpha, const double* x, double* y) noexcept;

/// Σ x[i]·y[i], accumulated in index order.
[[nodiscard]] double dot(std::size_t n, const double* x, const double* y) noexcept;

/// x[i] *= alpha (row-scale when handed one row).
void scale(std::size_t n, double alpha, double* x) noexcept;

}  // namespace fisone::linalg::kernels
