/// \file mall_survey.cpp
/// The paper's deployment scenario: three large shopping malls (two with 5
/// floors, one with 7) surveyed by crowdsourcing. For each mall this
/// example:
///   1. synthesises the crowdsourced scans (open atrium included — the
///      paper notes a few MACs visible on many floors);
///   2. prints the signal-spillover profile (the Fig. 1(b) statistic);
///   3. runs FIS-ONE end-to-end with one bottom-floor label;
///   4. reports ARI / NMI / edit distance and the inferred floor of each
///      cluster.
///
/// Run:  ./mall_survey [--samples-per-floor M] [--seed S]

#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 150));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

    const data::corpus malls = sim::make_malls_corpus(samples, seed);
    for (const data::building& mall : malls.buildings) {
        std::cout << "=== " << mall.name << ": " << mall.num_floors << " floors, "
                  << mall.samples.size() << " scans, " << mall.num_macs << " deployed APs ===\n";

        // Spillover profile (paper Fig. 1(b)).
        const auto hist = sim::spillover_histogram(mall);
        std::cout << "spillover (MACs by #floors detected):";
        for (std::size_t f = 0; f < hist.size(); ++f) std::cout << ' ' << hist[f];
        std::cout << '\n';

        // FIS-ONE with the one bottom-floor label.
        core::fis_one_config cfg;
        cfg.gnn.seed = seed;
        cfg.seed = seed;
        const core::fis_one_result r = core::fis_one(cfg).run(mall);

        util::table_printer table("cluster → floor indexing");
        table.header({"cluster", "scans", "inferred floor", "majority true floor"});
        std::vector<std::size_t> sizes(mall.num_floors, 0);
        std::vector<std::vector<std::size_t>> floor_votes(mall.num_floors,
                                                          std::vector<std::size_t>(mall.num_floors, 0));
        for (std::size_t i = 0; i < mall.samples.size(); ++i) {
            const auto c = static_cast<std::size_t>(r.assignment[i]);
            ++sizes[c];
            ++floor_votes[c][static_cast<std::size_t>(mall.samples[i].true_floor)];
        }
        for (std::size_t c = 0; c < mall.num_floors; ++c) {
            std::size_t best_floor = 0;
            for (std::size_t f = 1; f < mall.num_floors; ++f)
                if (floor_votes[c][f] > floor_votes[c][best_floor]) best_floor = f;
            table.row({std::to_string(c), std::to_string(sizes[c]),
                       "F" + std::to_string(r.cluster_to_floor[c] + 1),
                       "F" + std::to_string(best_floor + 1)});
        }
        table.print(std::cout);
        std::cout << "ARI=" << r.ari << "  NMI=" << r.nmi
                  << "  edit distance=" << r.edit_distance << "\n\n";
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "mall_survey: " << e.what() << '\n';
    return EXIT_FAILURE;
}
