/// \file fleet_campaign.cpp
/// Deterministic campaign client for chaos drills against a running
/// `serve_tcp` front door: synthesize `--count` buildings from a fixed
/// seed schedule, submit them over TCP with pinned corpus indices
/// `[--first, --first + --count)`, collect every response, and write the
/// reports as input-order NDJSON (no timing) to `--out`.
///
/// Pinned indices + a fixed profile/seed make the output byte-identical
/// across runs, restarts, thread counts, and fault plans — which is what
/// the kill-and-restart CI smoke compares. The same pinning makes resent
/// requests result-cache hits, so `--min-cache-hits` can assert that a
/// warm-restarted fleet actually reloaded its spilled cache shards.
///
/// Run:  ./fleet_campaign --port P [--host A] [--count N] [--first N]
///                        [--base-seed S] [--window N] [--out PATH]
///                        [--min-cache-hits N] [--quiet] [--help]
///
/// Exits nonzero when any request fails, any response goes missing, or
/// the server-side cache-hit delta falls short of `--min-cache-hits`.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/codec.hpp"
#include "api/message.hpp"
#include "net/socket.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"

namespace {

using namespace fisone;

/// Correlation id for the pre/post stats probes, far above any campaign id.
constexpr std::uint64_t k_stats_corr = 0x00FFFFFF00000001ull;

/// The campaign's deterministic building schedule: global index -> one
/// small synthetic building. Mirrors the shape the federation tests use
/// (tiny floors, few APs) so a campaign stays fast on one core.
data::building campaign_building(std::uint64_t base_seed, std::uint64_t index) {
    sim::building_spec spec;
    spec.name = "fleet-" + std::to_string(index);
    spec.num_floors = 3 + index % 2;
    spec.samples_per_floor = 20;
    spec.aps_per_floor = 6;
    spec.seed = base_seed + index;
    return sim::generate_building(spec).building;
}

void print_usage() {
    std::cerr <<
        "usage: fleet_campaign --port P [--host A] [--count N] [--first N]\n"
        "                      [--base-seed S] [--window N] [--out PATH]\n"
        "                      [--min-cache-hits N] [--quiet] [--help]\n"
        "\n"
        "  --count N           buildings to submit (default 24)\n"
        "  --first N           first pinned corpus index (default 0)\n"
        "  --base-seed S       building i is generated from seed S+i (default 900)\n"
        "  --window N          max requests in flight (default 8; keep under the\n"
        "                      server's --max-inflight to avoid shed errors)\n"
        "  --out PATH          write input-order NDJSON here (default stdout)\n"
        "  --min-cache-hits N  fail unless the server's cache-hit counter grew\n"
        "                      by at least N over the campaign (default 0)\n";
}

/// Ask the server for its stats snapshot and return the cache-hit total.
std::uint64_t cache_hits_now(net::frame_conn& conn) {
    conn.send(api::encode(api::request{api::get_stats_request{k_stats_corr}}));
    while (true) {
        const std::optional<std::string> frame = conn.read_frame();
        if (!frame) throw std::runtime_error("connection closed awaiting stats");
        const auto r = api::decode_response(*frame);
        if (!r.ok()) throw std::runtime_error("undecodable stats frame");
        if (const auto* s = std::get_if<api::stats_response>(&*r.value))
            return s->stats.cache_hits;
        throw std::runtime_error("unexpected frame while awaiting stats");
    }
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    if (args.has("help")) {
        print_usage();
        return EXIT_SUCCESS;
    }
    const bool quiet = args.has("quiet");
    const std::string host = args.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
    const auto count = static_cast<std::uint64_t>(args.get_int("count", 24));
    const auto first = static_cast<std::uint64_t>(args.get_int("first", 0));
    const auto base_seed = static_cast<std::uint64_t>(args.get_int("base-seed", 900));
    const auto window = static_cast<std::size_t>(args.get_int("window", 8));
    const std::string out_path = args.get("out", "");
    const auto min_cache_hits = static_cast<std::uint64_t>(args.get_int("min-cache-hits", 0));
    if (port == 0) {
        std::cerr << "fleet_campaign: --port is required\n";
        print_usage();
        return EXIT_FAILURE;
    }
    if (window == 0) {
        std::cerr << "fleet_campaign: --window must be positive\n";
        return EXIT_FAILURE;
    }

    net::frame_conn conn(host, port);
    const std::uint64_t hits_before = cache_hits_now(conn);

    // Submit with a bounded window; collect building_responses keyed by
    // corpus index (correlation id = index + 1, so id 0 stays reserved for
    // pre-decode failures).
    std::map<std::uint64_t, runtime::building_report> reports;
    std::size_t errors = 0;
    std::size_t outstanding = 0;

    const auto consume_one = [&] {
        const std::optional<std::string> frame = conn.read_frame();
        if (!frame) throw std::runtime_error("connection closed mid-campaign");
        const auto r = api::decode_response(*frame);
        if (!r.ok())
            throw std::runtime_error("undecodable response frame: " +
                                     (r.error ? r.error->message : std::string("eof")));
        if (const auto* b = std::get_if<api::building_response>(&*r.value)) {
            reports.emplace(b->report.index, b->report);
            --outstanding;
        } else if (const auto* e = std::get_if<api::error_response>(&*r.value)) {
            ++errors;
            if (e->correlation_id != 0) --outstanding;
            std::cerr << "fleet_campaign: request " << e->correlation_id
                      << " failed: " << api::error_code_name(e->code) << ": "
                      << e->message << '\n';
        } else {
            throw std::runtime_error("unexpected response tag mid-campaign");
        }
    };

    for (std::uint64_t i = first; i < first + count; ++i) {
        while (outstanding >= window) consume_one();
        api::identify_building_request req;
        req.correlation_id = i + 1;
        req.has_index = true;
        req.corpus_index = i;
        req.b = campaign_building(base_seed, i);
        conn.send(api::encode(api::request{std::move(req)}));
        ++outstanding;
    }
    while (outstanding > 0) consume_one();

    const std::uint64_t hits_after = cache_hits_now(conn);
    const std::uint64_t hits_delta = hits_after - hits_before;
    conn.shutdown_write();

    std::vector<runtime::building_report> ordered;
    ordered.reserve(reports.size());
    for (auto& [index, report] : reports) ordered.push_back(std::move(report));
    if (!out_path.empty()) {
        std::ofstream f(out_path);
        service::export_input_order(f, std::move(ordered));
        f.close();
        if (!f) {
            std::cerr << "fleet_campaign: cannot write " << out_path << '\n';
            return EXIT_FAILURE;
        }
    } else {
        service::export_input_order(std::cout, std::move(ordered));
    }

    const std::size_t missing = static_cast<std::size_t>(count) - reports.size();
    if (!quiet)
        std::cerr << "fleet_campaign: " << reports.size() << '/' << count
                  << " reports, " << errors << " errors, " << hits_delta
                  << " cache hits\n";
    if (errors > 0 || missing > 0) return EXIT_FAILURE;
    if (hits_delta < min_cache_hits) {
        std::cerr << "fleet_campaign: cache hits " << hits_delta << " < required "
                  << min_cache_hits << '\n';
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "fleet_campaign: " << e.what() << '\n';
    return EXIT_FAILURE;
}
