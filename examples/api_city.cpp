/// \file api_city.cpp
/// End-to-end walkthrough of the versioned request/response API — the one
/// public surface over the whole system:
///
///   1. synthesise a small city and shard it to an on-disk corpus store;
///   2. speak the *framed wire path*: a typed `api::client` encodes
///      `identify_shard` + `get_stats` + `flush` request frames into a
///      byte stream, `api::server::serve` decodes them from any
///      `std::istream`, runs the jobs on its `floor_service`, and streams
///      response frames back in completion order with correlation ids;
///   3. re-export the decoded building responses as input-order NDJSON —
///      byte-identical to a direct `floor_service` run by the determinism
///      contract;
///   4. resubmit one building twice through the in-process loopback
///      transport: the second submission is served from the
///      content-addressed result cache without touching the pipeline
///      (watch `cache_hits` in the stats response).
///
/// A real network front-end is "step 2 with sockets": the codec, server
/// and cache are transport-agnostic by construction.
///
/// Run:  ./api_city [--buildings N] [--samples-per-floor M] [--shard-size K]
///                  [--threads T] [--seed S] [--dir PATH] [--quiet]

#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "api/client.hpp"
#include "api/server.hpp"
#include "data/corpus_store.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto num_buildings = static_cast<std::size_t>(args.get_int("buildings", 12));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 40));
    const auto shard_size = static_cast<std::size_t>(args.get_int("shard-size", 4));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
    const std::string dir = args.get(
        "dir", (std::filesystem::temp_directory_path() / "fisone_api_store").string());
    const bool quiet = args.has("quiet");

    // --- 1. simulate and shard ------------------------------------------------
    data::building first;  // kept around for the cache demo
    {
        data::corpus city;
        city.name = "api-city";
        city.buildings.reserve(num_buildings);
        for (std::size_t i = 0; i < num_buildings; ++i) {
            sim::building_spec spec;
            spec.name = "city-" + std::to_string(i);
            spec.num_floors = 3 + i % 5;
            spec.samples_per_floor = samples;
            spec.aps_per_floor = 10;
            spec.seed = seed + i;
            city.buildings.push_back(sim::generate_building(spec).building);
        }
        first = city.buildings.front();
        static_cast<void>(data::write_corpus_store(city, dir, shard_size));
    }
    const data::corpus_store store = data::corpus_store::open(dir);
    std::cerr << "Sharded " << num_buildings << " buildings into " << store.num_shards()
              << " shards under " << dir << "\n";

    api::server_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 16;
    cfg.service.pipeline.gnn.epochs = 3;
    cfg.service.seed = seed;
    cfg.service.num_threads = threads;
    api::server srv(cfg);

    // --- 2. the framed wire path ---------------------------------------------
    // One stringstream per direction stands in for a socket; the frames
    // are the same bytes a network transport would carry.
    std::stringstream wire_in, wire_out;
    api::client cli(static_cast<std::ostream&>(wire_in));
    for (std::size_t s = 0; s < store.num_shards(); ++s)
        static_cast<void>(cli.identify_shard(service::make_shard_ref(store, s)));
    static_cast<void>(cli.get_stats());
    static_cast<void>(cli.flush());
    std::cerr << "Encoded " << wire_in.str().size() << " request bytes; serving...\n";

    srv.serve(wire_in, wire_out);
    static_cast<void>(cli.ingest(wire_out));
    if (!cli.errors().empty()) {
        std::cerr << "api_city: protocol error: " << cli.errors().front().message << "\n";
        return EXIT_FAILURE;
    }

    // --- 3. deterministic NDJSON re-export ------------------------------------
    std::ostringstream ndjson;
    service::export_input_order(ndjson, cli.reports());
    if (!quiet) std::cout << ndjson.str();
    std::cerr << "Decoded " << cli.reports().size() << " building responses ("
              << wire_out.str().size() << " response bytes)\n";

    // --- 4. warm-cache resubmission over loopback -----------------------------
    // Shard jobs stream from disk and bypass the cache; building
    // submissions are content-addressed. The first loopback submission
    // runs and fills the cache, the identical resubmission is served from
    // it without touching the pipeline.
    api::client warm(srv);
    static_cast<void>(warm.identify(first, 0));
    static_cast<void>(warm.flush());
    static_cast<void>(warm.identify(first, 0));
    static_cast<void>(warm.get_stats());
    const auto stats = warm.last_stats();
    std::cerr << "Resubmitted " << first.name << " twice: cache "
              << (stats ? stats->cache_hits : 0) << " hit / "
              << (stats ? stats->cache_misses : 0) << " miss\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "api_city: " << e.what() << '\n';
    return EXIT_FAILURE;
}
