/// \file service_city.cpp
/// End-to-end walkthrough of the `fisone::service` subsystem — the ROADMAP
/// north star in one program:
///
///   1. synthesise a city of buildings (offices, towers, malls);
///   2. shard it to an on-disk corpus store (`manifest.csv` + shard files)
///      — after this step the in-memory city is dropped;
///   3. serve the store through the async `floor_service`: shard jobs
///      stream buildings from disk one at a time, so peak resident corpus
///      is one building per worker, whatever the corpus size;
///   4. stream every finished building as NDJSON (completion order) and
///      finally re-export deterministically in input order.
///
/// The input-order re-export is byte-identical for any `--threads` and any
/// `--shard-size` — try it:
///
///   ./service_city --threads 1 --out a.ndjson
///   ./service_city --threads 4 --shard-size 4 --out b.ndjson
///   diff a.ndjson b.ndjson      # no output: identical
///
/// Run:  ./service_city [--buildings N] [--samples-per-floor M]
///                      [--shard-size K] [--threads T] [--seed S]
///                      [--dir PATH] [--out PATH] [--quiet]

#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/corpus_store.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto num_buildings = static_cast<std::size_t>(args.get_int("buildings", 32));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 60));
    const auto shard_size = static_cast<std::size_t>(args.get_int("shard-size", 8));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
    const std::string dir = args.get(
        "dir", (std::filesystem::temp_directory_path() / "fisone_city_store").string());
    const std::string out_path = args.get("out", "");
    const bool quiet = args.has("quiet");

    // --- 1+2. simulate the city and shard it to disk ------------------------
    {
        data::corpus city;
        city.name = "city";
        city.buildings.reserve(num_buildings);
        for (std::size_t i = 0; i < num_buildings; ++i) {
            sim::building_spec spec;
            spec.name = "city-";
            spec.name += std::to_string(i);
            spec.num_floors = 3 + i % 6;
            spec.samples_per_floor = samples;
            spec.aps_per_floor = 14;
            spec.atrium = i % 7 == 0;  // every 7th building is mall-like
            spec.seed = seed * 1000 + i;
            city.buildings.push_back(sim::generate_building(spec).building);
        }
        std::filesystem::remove_all(dir);
        const data::corpus_manifest manifest = data::write_corpus_store(city, dir, shard_size);
        std::cerr << "Sharded " << manifest.total_buildings() << " buildings into "
                  << manifest.shards.size() << " shards under " << dir << "\n";
        // `city` goes out of scope here: from now on the corpus lives only
        // on disk and is streamed back one building at a time.
    }

    // --- 3. serve the store asynchronously ----------------------------------
    const data::corpus_store store = data::corpus_store::open(dir);

    service::ndjson_options live_opts;  // completion-order stream keeps timing
    service::ndjson_exporter live(std::cout, live_opts);

    service::service_config cfg;
    cfg.pipeline.gnn.embedding_dim = 16;
    cfg.pipeline.gnn.epochs = 5;
    cfg.seed = seed;
    cfg.num_threads = threads;
    if (!quiet)
        cfg.on_report = [&live](const runtime::building_report& report) {
            live.write(report);  // one NDJSON line per building, as they finish
        };

    service::floor_service svc(cfg);
    std::cerr << "Serving on " << svc.num_workers()
              << " workers; streaming NDJSON to stdout...\n";
    std::vector<service::floor_service::job> jobs;
    jobs.reserve(store.num_shards());
    for (std::size_t s = 0; s < store.num_shards(); ++s)
        jobs.push_back(svc.submit(service::make_shard_ref(store, s)));
    svc.wait_all();

    // --- 4. deterministic input-order re-export ------------------------------
    std::vector<runtime::building_report> reports;
    reports.reserve(store.manifest().total_buildings());
    std::size_t failed = 0;
    for (const auto& job : jobs)
        for (const auto& report : job.reports()) {
            if (!report.ok) ++failed;
            reports.push_back(report);
        }

    const std::string reexport_path =
        out_path.empty() ? (std::filesystem::path(dir) / "results.ndjson").string() : out_path;
    {
        std::ofstream out(reexport_path);
        if (!out) throw std::ios_base::failure("cannot open " + reexport_path);
        service::export_input_order(out, reports);
    }

    // --- summary -------------------------------------------------------------
    const service::service_stats stats = svc.stats();
    std::cerr << "\nServed " << stats.buildings_ok << "/" << stats.buildings_done
              << " buildings ok across " << stats.jobs_done << " shard jobs.\n"
              << "Per-building latency: p50 "
              << util::table_printer::num(stats.latency_p50, 3) << "s, p90 "
              << util::table_printer::num(stats.latency_p90, 3) << "s, p99 "
              << util::table_printer::num(stats.latency_p99, 3) << "s\n"
              << "Input-order NDJSON (timing stripped, byte-stable across thread counts "
              << "and shard sizes): " << reexport_path << "\n";
    return failed == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
} catch (const std::exception& e) {
    std::cerr << "service_city: " << e.what() << '\n';
    return EXIT_FAILURE;
}
