/// \file streaming_inference.cpp
/// The motivating use case of the paper's introduction: "identify the
/// floor number of a new RF signal upon its measurement". This example
///   1. builds the floor-identification model from a crowdsourced corpus
///      with a single bottom-floor label (the offline phase), through the
///      `core::floor_predictor` API;
///   2. persists the dataset to disk and re-loads it (the data round-trip
///      a deployment would use);
///   3. streams *new* scans that were never part of the training graph
///      through RF-GNN's inductive embedding and reports per-scan floor
///      predictions with confidences (the online phase);
///   4. scores online accuracy against the simulator's ground truth.
///
/// Run:  ./streaming_inference [--new-scans N] [--seed S]

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/floor_predictor.hpp"
#include "data/dataset_io.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto num_new = static_cast<std::size_t>(args.get_int("new-scans", 60));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 33));

    // --- offline: crowdsourced corpus + one label ---
    sim::building_spec spec;
    spec.name = "deployment-site";
    spec.num_floors = 5;
    spec.samples_per_floor = 150;
    spec.seed = seed;
    const data::building b = sim::generate_building(spec).building;

    // Persist + reload (deployments exchange corpora as files).
    const std::string path = "/tmp/fisone_deployment_site.csv";
    data::save_building_file(b, path);
    const data::building loaded = data::load_building_file(path);
    std::cout << "Corpus: " << loaded.samples.size() << " scans / " << loaded.num_macs
              << " APs saved to " << path << " and reloaded.\n";

    core::fis_one_config cfg;
    cfg.gnn.seed = seed;
    cfg.seed = seed;
    core::floor_predictor predictor(cfg);
    const core::fis_one_result offline = predictor.fit(loaded);
    std::cout << "Offline model: ARI=" << offline.ari
              << " edit distance=" << offline.edit_distance << "\n";

    // --- online: stream new scans from the same site ---
    // Regenerating with the same seed reproduces the same AP deployment and
    // device pool; the per-floor surplus scans are fresh measurements that
    // were never nodes of the training graph.
    const std::size_t extra = std::max<std::size_t>(1, num_new / spec.num_floors);
    sim::building_spec stream_spec = spec;
    stream_spec.samples_per_floor += extra;
    const data::building extended = sim::generate_building(stream_spec).building;

    std::size_t streamed = 0, correct = 0;
    double confidence_sum = 0.0;
    for (std::size_t i = 0; i < extended.samples.size(); ++i) {
        if (i % stream_spec.samples_per_floor < spec.samples_per_floor) continue;  // not new
        const data::rf_sample& scan = extended.samples[i];
        const core::floor_prediction p = predictor.predict(scan.observations);
        ++streamed;
        confidence_sum += p.confidence;
        if (p.floor == scan.true_floor) ++correct;
    }

    std::cout << "Online phase: " << streamed << " new scans classified, accuracy = "
              << (streamed ? static_cast<double>(correct) / streamed : 0.0)
              << ", mean confidence = "
              << (streamed ? confidence_sum / static_cast<double>(streamed) : 0.0) << "\n";
    std::cout << "(each prediction = inductive RF-GNN embedding + k-NN vote over the\n"
                 " one-label-indexed corpus; see core/floor_predictor.hpp)\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "streaming_inference: " << e.what() << '\n';
    return EXIT_FAILURE;
}
