/// \file batch_campus.cpp
/// Batch runtime walkthrough: identify floors across a simulated campus of
/// 32 buildings concurrently with `runtime::batch_runner`, streaming
/// progress as buildings finish and summarising quality at the end.
///
/// This is the "serve a whole city" shape of the ROADMAP north star in
/// miniature: one campaign seed, per-building seeds derived
/// deterministically, all cores busy, results independent of scheduling.
///
/// Run:  ./batch_campus [--buildings N] [--samples-per-floor M]
///                      [--threads T] [--seed S]

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/batch_runner.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    const fisone::util::cli_args args(argc, argv);
    const auto num_buildings = static_cast<std::size_t>(args.get_int("buildings", 32));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 80));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));

    // --- 1. simulate the campus: offices, a tower, a couple of malls ---
    std::vector<fisone::data::building> campus;
    campus.reserve(num_buildings);
    for (std::size_t i = 0; i < num_buildings; ++i) {
        fisone::sim::building_spec spec;
        spec.name = "campus-";
        spec.name += std::to_string(i);
        spec.num_floors = 3 + i % 6;
        spec.samples_per_floor = samples;
        spec.aps_per_floor = 14;
        spec.atrium = i % 7 == 0;  // every 7th building is mall-like
        spec.seed = seed * 1000 + i;
        campus.push_back(fisone::sim::generate_building(spec).building);
    }
    std::cout << "Campus of " << campus.size() << " buildings, one floor label each. Running "
              << "FIS-ONE on " << (threads == 0 ? "all hardware" : std::to_string(threads))
              << " threads...\n\n";

    // --- 2. run the batch with live progress ---
    fisone::runtime::batch_config cfg;
    cfg.pipeline.gnn.embedding_dim = 16;
    cfg.pipeline.gnn.epochs = 5;
    cfg.seed = seed;
    cfg.num_threads = threads;
    cfg.on_progress = [](const fisone::runtime::batch_progress& p) {
        std::cerr << "  [" << p.completed << "/" << p.total << "] " << p.last->name
                  << (p.last->ok ? "" : " FAILED: " + p.last->error) << " ("
                  << fisone::util::table_printer::num(p.last->seconds, 2) << "s)\n";
    };
    const fisone::runtime::batch_result result =
        fisone::runtime::batch_runner(cfg).run(campus);

    // --- 3. summarise ---
    std::cout << "\nFinished " << result.num_ok << "/" << result.reports.size() << " buildings in "
              << fisone::util::table_printer::num(result.wall_seconds, 2) << "s ("
              << fisone::util::table_printer::num(result.buildings_per_second, 2)
              << " buildings/s)\n";
    if (result.num_failed > 0) std::cout << result.num_failed << " buildings failed.\n";

    fisone::util::table_printer table("Worst five buildings by ARI");
    table.header({"building", "floors", "ARI", "NMI", "edit"});
    std::vector<const fisone::runtime::building_report*> ranked;
    for (const auto& report : result.reports)
        if (report.ok && report.result.has_ground_truth) ranked.push_back(&report);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto* a, const auto* b) { return a->result.ari < b->result.ari; });
    for (std::size_t i = 0; i < ranked.size() && i < 5; ++i)
        table.row({ranked[i]->name, std::to_string(ranked[i]->result.num_clusters),
                   fisone::util::table_printer::num(ranked[i]->result.ari, 3),
                   fisone::util::table_printer::num(ranked[i]->result.nmi, 3),
                   fisone::util::table_printer::num(ranked[i]->result.edit_distance, 3)});
    table.print(std::cout);
    std::cout << "\nCampaign metrics: ARI "
              << fisone::util::table_printer::mean_std(result.ari.mean(), result.ari.stddev())
              << ", NMI "
              << fisone::util::table_printer::mean_std(result.nmi.mean(), result.nmi.stddev())
              << " over " << result.ari.count() << " buildings.\n";
    return result.num_failed == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
} catch (const std::exception& e) {
    std::cerr << "batch_campus: " << e.what() << '\n';
    return EXIT_FAILURE;
}
