/// \file quickstart.cpp
/// Minimal end-to-end use of the FIS-ONE library:
///   1. synthesise a 5-floor building with crowdsourced RF scans;
///   2. run the full pipeline (graph → RF-GNN → UPGMA → TSP indexing)
///      with exactly one labeled sample on the bottom floor;
///   3. print per-floor prediction quality and the paper's three metrics.
///
/// Run:  ./quickstart [--floors N] [--samples-per-floor M] [--seed S]

#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    const fisone::util::cli_args args(argc, argv);

    // --- 1. simulate a building ---
    fisone::sim::building_spec spec;
    spec.name = "quickstart-tower";
    spec.num_floors = static_cast<std::size_t>(args.get_int("floors", 5));
    spec.samples_per_floor = static_cast<std::size_t>(args.get_int("samples-per-floor", 120));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
    const fisone::data::building building = fisone::sim::generate_building(spec).building;

    std::cout << "Building '" << building.name << "': " << building.num_floors << " floors, "
              << building.samples.size() << " crowdsourced scans, " << building.num_macs
              << " APs. Exactly one scan is floor-labeled (bottom floor).\n\n";

    // --- 2. run FIS-ONE ---
    fisone::core::fis_one_config config;
    config.gnn.seed = spec.seed;
    const fisone::core::fis_one system(config);
    const fisone::core::fis_one_result result = system.run(building);

    // --- 3. report ---
    fisone::util::table_printer table("Per-floor prediction accuracy");
    table.header({"floor", "scans", "correct", "accuracy"});
    std::vector<std::size_t> total(building.num_floors, 0), correct(building.num_floors, 0);
    for (std::size_t i = 0; i < building.samples.size(); ++i) {
        const auto f = static_cast<std::size_t>(building.samples[i].true_floor);
        ++total[f];
        if (result.predicted_floor[i] == building.samples[i].true_floor) ++correct[f];
    }
    for (std::size_t f = 0; f < building.num_floors; ++f) {
        table.row({"F" + std::to_string(f + 1), std::to_string(total[f]),
                   std::to_string(correct[f]),
                   fisone::util::table_printer::num(
                       total[f] ? static_cast<double>(correct[f]) / total[f] : 0.0)});
    }
    table.print(std::cout);

    std::cout << "\nARI           = " << result.ari << "\nNMI           = " << result.nmi
              << "\nEdit distance = " << result.edit_distance << "\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "quickstart: " << e.what() << '\n';
    return EXIT_FAILURE;
}
