/// \file live_ingest.cpp
/// Live-ingestion acceptance driver. With no arguments it runs a
/// self-contained drill — temp corpus store, in-process federated fleet
/// behind a real TCP front door, two client connections — and proves the
/// three ingestion guarantees end to end:
///
///  (a) after an append, the served NDJSON is byte-identical to a cold
///      rebuild over the concatenated (base + delta) corpus;
///  (b) buildings the append left clean are re-served from the result
///      cache with zero pipeline re-runs (cache-hit delta probe);
///  (c) a subscribed connection receives exactly one pushed
///      re-identification, for the dirty building only.
///
/// The same binary exposes each leg as a `--mode` for the CI chaos smoke,
/// which kills the server mid-append and checks the warm restart:
///
///   live_ingest --mode make-store --dir DIR [--count N] [--base-seed S]
///   live_ingest --mode append --port P [--host A] [--corpus NAME]
///               [--touch I] [--new K] [--extra-seed S] [--expect-crash]
///   live_ingest --mode campaign --port P --dir DIR [--out PATH]
///               [--min-cache-hits N]
///   live_ingest --mode cold-rebuild --dir DIR [--out PATH]
///
/// `campaign` submits the store's *effective* (delta-applied) corpus over
/// TCP pinned at its global indices; `cold-rebuild` runs the same corpus
/// through a fresh in-process server. Both write input-order NDJSON, so
/// `cmp` between them is the acceptance check. Defaults (profile quick,
/// seed 7, threads 2) match `serve_tcp`'s, so the two sides derive the
/// same per-building pipeline seeds.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "api/codec.hpp"
#include "api/message.hpp"
#include "api/server.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "net/socket.hpp"
#include "net/tcp_server.hpp"
#include "service/ndjson_export.hpp"
#include "service/profiles.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"

namespace {

using namespace fisone;

/// Correlation id for stats probes, far above any campaign id.
constexpr std::uint64_t k_stats_corr = 0x00FFFFFF00000002ull;

void print_usage() {
    std::cerr <<
        "usage: live_ingest [--quiet]                      (self-contained drill)\n"
        "       live_ingest --mode make-store --dir DIR [--count N] [--base-seed S]\n"
        "       live_ingest --mode append --port P [--host A] [--corpus NAME]\n"
        "                   [--touch I] [--new K] [--extra-seed S] [--expect-crash]\n"
        "       live_ingest --mode campaign --port P --dir DIR [--out PATH]\n"
        "                   [--min-cache-hits N]\n"
        "       live_ingest --mode cold-rebuild --dir DIR [--out PATH]\n"
        "\n"
        "  make-store    write a base corpus store of --count buildings\n"
        "  append        send one append_scans batch: new scans for building\n"
        "                --touch plus --new brand-new buildings; with\n"
        "                --expect-crash, succeed only if the server dies\n"
        "                before answering (crash_on_append drills)\n"
        "  campaign      submit the store's effective corpus over TCP pinned\n"
        "                at its global indices; write input-order NDJSON\n"
        "  cold-rebuild  run the same effective corpus through a fresh\n"
        "                in-process server; write input-order NDJSON\n";
}

/// The deterministic base-corpus schedule (index -> building). Small
/// buildings so the drill stays fast on one core.
data::building schedule_building(const std::string& name, std::uint64_t seed,
                                 std::uint64_t index) {
    sim::building_spec spec;
    spec.name = name;
    spec.num_floors = 3 + index % 2;
    spec.samples_per_floor = 20;
    spec.aps_per_floor = 6;
    spec.seed = seed;
    return sim::generate_building(spec).building;
}

data::corpus make_base_corpus(std::size_t count, std::uint64_t base_seed) {
    data::corpus c;
    c.name = "live";
    c.buildings.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        c.buildings.push_back(
            schedule_building("bldg-" + std::to_string(i), base_seed + i, i));
    return c;
}

/// The append batch: fresh scans for base building \p touch (same name,
/// different seed — the merged content hash changes, so it goes dirty)
/// plus \p fresh brand-new buildings appended at the corpus tail.
std::vector<data::building> make_append_batch(std::size_t touch, std::size_t fresh,
                                              std::uint64_t extra_seed) {
    std::vector<data::building> records;
    records.push_back(
        schedule_building("bldg-" + std::to_string(touch), extra_seed, touch));
    for (std::size_t k = 0; k < fresh; ++k)
        records.push_back(
            schedule_building("bldg-new-" + std::to_string(k), extra_seed + 1 + k, k));
    return records;
}

/// Read + decode one response frame; throws on EOF or undecodable bytes.
api::response read_response(net::frame_conn& conn) {
    const std::optional<std::string> frame = conn.read_frame();
    if (!frame) throw std::runtime_error("connection closed by server");
    auto r = api::decode_response(*frame);
    if (!r.ok())
        throw std::runtime_error("undecodable response frame: " +
                                 (r.error ? r.error->message : std::string("eof")));
    return *std::move(r.value);
}

service::service_stats stats_now(net::frame_conn& conn) {
    conn.send(api::encode(api::request{api::get_stats_request{k_stats_corr}}));
    const api::response r = read_response(conn);
    if (const auto* s = std::get_if<api::stats_response>(&r)) return s->stats;
    throw std::runtime_error("unexpected frame while awaiting stats");
}

/// Submit \p buildings over \p conn pinned at indices [0, N) and collect
/// one report per building, in index order.
std::vector<runtime::building_report> campaign_over(net::frame_conn& conn,
                                                    const std::vector<data::building>& bs,
                                                    std::size_t window = 8) {
    std::map<std::uint64_t, runtime::building_report> by_index;
    std::size_t outstanding = 0;
    const auto consume_one = [&] {
        const api::response r = read_response(conn);
        if (const auto* b = std::get_if<api::building_response>(&r)) {
            by_index.emplace(b->report.index, b->report);
            --outstanding;
        } else if (const auto* e = std::get_if<api::error_response>(&r)) {
            throw std::runtime_error("request " + std::to_string(e->correlation_id) +
                                     " failed: " + e->message);
        } else {
            throw std::runtime_error("unexpected response tag mid-campaign");
        }
    };
    for (std::size_t i = 0; i < bs.size(); ++i) {
        while (outstanding >= window) consume_one();
        api::identify_building_request req;
        req.correlation_id = i + 1;
        req.has_index = true;
        req.corpus_index = i;
        req.b = bs[i];
        conn.send(api::encode(api::request{std::move(req)}));
        ++outstanding;
    }
    while (outstanding > 0) consume_one();
    std::vector<runtime::building_report> ordered;
    ordered.reserve(by_index.size());
    for (auto& [index, report] : by_index) ordered.push_back(std::move(report));
    return ordered;
}

/// Cold rebuild: run \p bs through a fresh in-process server (same profile,
/// seed, and worker count as the fleet) and return input-order reports.
std::vector<runtime::building_report> cold_rebuild(const std::vector<data::building>& bs,
                                                   const std::string& profile,
                                                   std::uint64_t seed, std::size_t threads) {
    api::server_config cfg;
    cfg.service = service::profile_by_name(profile, seed, threads);
    api::server srv(cfg);
    api::client cli(srv);
    for (std::size_t i = 0; i < bs.size(); ++i) cli.identify(bs[i], i);
    cli.flush();
    std::vector<runtime::building_report> out = cli.reports();
    if (out.size() != bs.size())
        throw std::runtime_error("cold rebuild: expected " + std::to_string(bs.size()) +
                                 " reports, got " + std::to_string(out.size()));
    return out;
}

std::string ndjson_of(std::vector<runtime::building_report> reports) {
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    return out.str();
}

void write_ndjson(const std::string& out_path, std::vector<runtime::building_report> reports) {
    if (!out_path.empty()) {
        std::ofstream f(out_path);
        service::export_input_order(f, std::move(reports));
        f.close();
        if (!f) throw std::runtime_error("cannot write " + out_path);
    } else {
        service::export_input_order(std::cout, std::move(reports));
    }
}

int run_make_store(const util::cli_args& args) {
    const std::string dir = args.get("dir", "");
    if (dir.empty()) throw std::runtime_error("--mode make-store needs --dir");
    const auto count = static_cast<std::size_t>(args.get_int("count", 6));
    const auto base_seed = static_cast<std::uint64_t>(args.get_int("base-seed", 900));
    const data::corpus c = make_base_corpus(count, base_seed);
    data::write_corpus_store(c, dir, 3);
    std::cerr << "live_ingest: wrote store " << dir << " (" << count << " buildings)\n";
    return EXIT_SUCCESS;
}

int run_append(const util::cli_args& args) {
    const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
    if (port == 0) throw std::runtime_error("--mode append needs --port");
    const std::string host = args.get("host", "127.0.0.1");
    const std::string corpus = args.get("corpus", "live");
    const auto touch = static_cast<std::size_t>(args.get_int("touch", 2));
    const auto fresh = static_cast<std::size_t>(args.get_int("new", 1));
    const auto extra_seed = static_cast<std::uint64_t>(args.get_int("extra-seed", 7700));
    const bool expect_crash = args.has("expect-crash");

    net::frame_conn conn(host, port);
    api::append_scans_request req;
    req.correlation_id = 1;
    req.corpus_name = corpus;
    req.records = make_append_batch(touch, fresh, extra_seed);
    conn.send(api::encode(api::request{std::move(req)}));

    bool crashed = false;
    std::optional<api::append_response> ack;
    try {
        const api::response r = read_response(conn);
        if (const auto* a = std::get_if<api::append_response>(&r))
            ack = *a;
        else if (const auto* e = std::get_if<api::error_response>(&r))
            throw std::runtime_error("append failed: " + e->message);
        else
            throw std::runtime_error("unexpected frame awaiting append_result");
    } catch (const std::system_error&) {
        crashed = true;  // connection reset: the server died mid-append
    } catch (const std::runtime_error& e) {
        if (std::string(e.what()) != "connection closed by server") throw;
        crashed = true;  // clean EOF: ditto
    }

    if (expect_crash) {
        if (!crashed) {
            std::cerr << "live_ingest: expected the server to die mid-append, "
                         "but it answered\n";
            return EXIT_FAILURE;
        }
        std::cerr << "live_ingest: server died mid-append as planned\n";
        return EXIT_SUCCESS;
    }
    if (crashed) throw std::runtime_error("server died during append");
    std::cerr << "live_ingest: append durable: version " << ack->version << ", "
              << ack->accepted << " records, " << ack->dirty << " dirty buildings\n";
    return EXIT_SUCCESS;
}

int run_campaign(const util::cli_args& args) {
    const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
    const std::string dir = args.get("dir", "");
    if (port == 0 || dir.empty())
        throw std::runtime_error("--mode campaign needs --port and --dir");
    const std::string host = args.get("host", "127.0.0.1");
    const auto min_cache_hits = static_cast<std::uint64_t>(args.get_int("min-cache-hits", 0));

    const data::corpus effective = data::corpus_store::open(dir).load_all_effective();
    net::frame_conn conn(host, port);
    const std::uint64_t hits_before = stats_now(conn).cache_hits;
    std::vector<runtime::building_report> reports = campaign_over(conn, effective.buildings);
    const std::uint64_t hits_delta = stats_now(conn).cache_hits - hits_before;
    conn.shutdown_write();

    const std::size_t got = reports.size();
    write_ndjson(args.get("out", ""), std::move(reports));
    std::cerr << "live_ingest: campaign served " << got << '/' << effective.buildings.size()
              << " buildings, " << hits_delta << " cache hits\n";
    if (got != effective.buildings.size()) return EXIT_FAILURE;
    if (hits_delta < min_cache_hits) {
        std::cerr << "live_ingest: cache hits " << hits_delta << " < required "
                  << min_cache_hits << '\n';
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
}

int run_cold_rebuild(const util::cli_args& args) {
    const std::string dir = args.get("dir", "");
    if (dir.empty()) throw std::runtime_error("--mode cold-rebuild needs --dir");
    const std::string profile = args.get("profile", "quick");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 2));
    const data::corpus effective = data::corpus_store::open(dir).load_all_effective();
    write_ndjson(args.get("out", ""),
                 cold_rebuild(effective.buildings, profile, seed, threads));
    std::cerr << "live_ingest: cold rebuild over " << effective.buildings.size()
              << " effective buildings\n";
    return EXIT_SUCCESS;
}

/// Scoped temp directory for the self-contained drill.
struct temp_dir {
    std::filesystem::path path;
    explicit temp_dir(const std::string& stem) {
        path = std::filesystem::temp_directory_path() /
               (stem + "-" + std::to_string(static_cast<unsigned>(::getpid())));
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~temp_dir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

void check(bool ok, const std::string& what) {
    if (!ok) throw std::runtime_error("FAILED: " + what);
    std::cerr << "live_ingest: ok — " << what << '\n';
}

int run_demo(bool quiet) {
    const std::string profile = "quick";
    const std::uint64_t seed = 7;
    const std::size_t threads = 2;
    const std::size_t count = 6;
    const std::size_t touch = 2;

    temp_dir store("fisone-live-ingest");
    const std::string dir = store.path.string();
    data::write_corpus_store(make_base_corpus(count, 900), dir, 3);

    federation::federation_config cfg;
    cfg.service = service::profile_by_name(profile, seed, threads);
    cfg.num_backends = 2;
    cfg.store_dirs = {dir};
    federation::federated_server fleet(cfg);
    net::tcp_server_config net_cfg;
    net_cfg.host = "127.0.0.1";
    net_cfg.port = 0;
    net::tcp_server srv(net::make_backend(fleet), net_cfg);
    std::thread loop([&srv] { srv.run(); });
    if (!quiet) std::cerr << "live_ingest: fleet on 127.0.0.1:" << srv.port() << '\n';

    try {
        net::frame_conn watcher("127.0.0.1", srv.port());
        net::frame_conn worker("127.0.0.1", srv.port());

        // Warm campaign over the base corpus: every building's result lands
        // in the fleet's result caches.
        const data::corpus base = data::corpus_store::open(dir).load_all_effective();
        static_cast<void>(campaign_over(worker, base.buildings));

        // Stand a subscription on the building the append will touch.
        watcher.send(api::encode(
            api::request{api::watch_request{50, "bldg-" + std::to_string(touch), true}}));
        {
            const api::response r = read_response(watcher);
            const auto* a = std::get_if<api::watch_ack_response>(&r);
            check(a && a->active && a->correlation_id == 50, "watch subscription acknowledged");
        }

        // Append: new scans for bldg-2 plus one brand-new building.
        api::append_scans_request areq;
        areq.correlation_id = 60;
        areq.corpus_name = "live";
        areq.records = make_append_batch(touch, 1, 7700);
        worker.send(api::encode(api::request{std::move(areq)}));
        {
            const api::response r = read_response(worker);
            const auto* a = std::get_if<api::append_response>(&r);
            check(a != nullptr, "append answered with append_result");
            check(a->version == 1 && a->accepted == 2 && a->dirty == 2,
                  "append durable at version 1: 2 records, 2 dirty buildings");
        }

        // Barrier: flush waits for the dirty re-runs to finish and cache.
        worker.send(api::encode(api::request{api::flush_request{61}}));
        {
            const api::response r = read_response(worker);
            check(std::get_if<api::flush_response>(&r) != nullptr,
                  "flush drained the re-identification runs");
        }

        // (c) the watcher got a push for the dirty building it subscribed
        // to — and nothing else (the stats answer arriving next proves no
        // second push was buffered ahead of it).
        {
            const api::response r = read_response(watcher);
            const auto* p = std::get_if<api::push_response>(&r);
            check(p != nullptr, "watcher received a push_update");
            check(p->correlation_id == 50 && p->version == 1,
                  "push carries the watch correlation id and store version 1");
            check(p->report.ok && p->report.index == touch &&
                      p->report.name == "bldg-" + std::to_string(touch),
                  "push re-identifies the dirty building only");
            const service::service_stats ws = stats_now(watcher);
            check(ws.watch_subscribers == 1, "exactly one live watch subscription");
            check(ws.ingest_appends == 1 && ws.ingest_dirty_buildings == 2,
                  "ingest counters: 1 append, 2 dirty buildings");
        }

        // (b) re-serve the effective corpus: every building answers from
        // cache — zero pipeline re-runs.
        const data::corpus effective = data::corpus_store::open(dir).load_all_effective();
        check(effective.buildings.size() == count + 1,
              "effective corpus is base + 1 appended building");
        const service::service_stats before = stats_now(worker);
        std::vector<runtime::building_report> served =
            campaign_over(worker, effective.buildings);
        const service::service_stats after = stats_now(worker);
        check(after.cache_hits - before.cache_hits >= effective.buildings.size(),
              "clean re-serve: every building was a cache hit");
        check(after.buildings_done == before.buildings_done,
              "clean re-serve: zero pipeline re-runs");

        // (a) served NDJSON is byte-identical to a cold rebuild over the
        // concatenated (base + delta) corpus.
        const std::string served_ndjson = ndjson_of(std::move(served));
        const std::string cold_ndjson =
            ndjson_of(cold_rebuild(effective.buildings, profile, seed, threads));
        check(!served_ndjson.empty() && served_ndjson == cold_ndjson,
              "served NDJSON byte-identical to cold rebuild");

        // Unsubscribe tears the watch down.
        watcher.send(api::encode(api::request{api::watch_request{51, "bldg-2", false}}));
        {
            const api::response r = read_response(watcher);
            const auto* a = std::get_if<api::watch_ack_response>(&r);
            check(a && !a->active && a->correlation_id == 51, "unsubscribe acknowledged");
            check(stats_now(watcher).watch_subscribers == 0, "subscriber gauge back to zero");
        }

        watcher.close();
        worker.close();
    } catch (...) {
        srv.drain();
        loop.join();
        throw;
    }
    srv.drain();
    loop.join();
    std::cerr << "live_ingest: all acceptance checks passed\n";
    return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    if (args.has("help")) {
        print_usage();
        return EXIT_SUCCESS;
    }
    const std::string mode = args.get("mode", "");
    if (mode.empty()) return run_demo(args.has("quiet"));
    if (mode == "make-store") return run_make_store(args);
    if (mode == "append") return run_append(args);
    if (mode == "campaign") return run_campaign(args);
    if (mode == "cold-rebuild") return run_cold_rebuild(args);
    std::cerr << "live_ingest: unknown --mode " << mode << '\n';
    print_usage();
    return EXIT_FAILURE;
} catch (const std::exception& e) {
    std::cerr << "live_ingest: " << e.what() << '\n';
    return EXIT_FAILURE;
}
