/// \file federation_city.cpp
/// End-to-end walkthrough of the federation layer — one API front-end over
/// many corpus stores and many floor_service backends:
///
///   1. synthesise a small city and split it across THREE on-disk corpus
///      stores (three collection campaigns, in FIS-ONE's crowdsourced
///      setting);
///   2. mount the stores in a `federation::store_registry` — one namespace,
///      global corpus indices = the concatenated corpus;
///   3. serve every mounted shard through a `federation::federated_server`
///      fronting TWO `api::server` backends (each a floor_service plus its
///      own result cache) over the framed wire path, with `get_stats`
///      merged across the fleet;
///   4. re-export the responses as input-order NDJSON and verify byte
///      identity against a single floor_service run over the whole city —
///      the federation determinism contract (exits non-zero on divergence,
///      so CI can smoke-run this example as a check).
///
/// Run:  ./federation_city [--buildings N] [--samples-per-floor M]
///                         [--stores S] [--backends B] [--shard-size K]
///                         [--threads T] [--seed S] [--dir PATH] [--quiet]

#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto num_buildings = static_cast<std::size_t>(args.get_int("buildings", 9));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 30));
    const auto num_stores = static_cast<std::size_t>(args.get_int("stores", 3));
    const auto num_backends = static_cast<std::size_t>(args.get_int("backends", 2));
    const auto shard_size = static_cast<std::size_t>(args.get_int("shard-size", 2));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
    const std::string dir = args.get(
        "dir", (std::filesystem::temp_directory_path() / "fisone_federation_city").string());
    const bool quiet = args.has("quiet");

    // --- 1. simulate one city, split across collection campaigns -------------
    data::corpus city;
    city.name = "fed-city";
    city.buildings.reserve(num_buildings);
    for (std::size_t i = 0; i < num_buildings; ++i) {
        sim::building_spec spec;
        spec.name = "city-" + std::to_string(i);
        spec.num_floors = 3 + i % 5;
        spec.samples_per_floor = samples;
        spec.aps_per_floor = 10;
        spec.seed = seed + i;
        city.buildings.push_back(sim::generate_building(spec).building);
    }
    if (num_stores == 0 || num_stores > num_buildings) {
        std::cerr << "federation_city: need 1 <= --stores <= --buildings (got " << num_stores
                  << " stores for " << num_buildings << " buildings)\n";
        return EXIT_FAILURE;
    }
    std::filesystem::remove_all(dir);
    std::vector<std::string> store_dirs;
    {
        const std::size_t base = num_buildings / num_stores;
        std::size_t first = 0;
        for (std::size_t k = 0; k < num_stores; ++k) {
            const std::size_t count = base + (k < num_buildings % num_stores ? 1 : 0);
            data::corpus part;
            part.name = city.name + "-campaign-" + std::to_string(k);
            part.buildings.assign(
                city.buildings.begin() + static_cast<std::ptrdiff_t>(first),
                city.buildings.begin() + static_cast<std::ptrdiff_t>(first + count));
            const std::string store_dir =
                (std::filesystem::path(dir) / ("store-" + std::to_string(k))).string();
            static_cast<void>(data::write_corpus_store(part, store_dir, shard_size));
            store_dirs.push_back(store_dir);
            first += count;
        }
    }
    std::cerr << "Split " << num_buildings << " buildings across " << num_stores
              << " stores under " << dir << "\n";

    // --- 2 + 3. mount the stores, serve through the fleet ---------------------
    federation::federation_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 16;
    cfg.service.pipeline.gnn.epochs = 3;
    cfg.service.seed = seed;
    cfg.service.num_threads = threads;
    cfg.num_backends = num_backends;
    cfg.policy = federation::routing_policy::content_hash_affinity;
    cfg.store_dirs = store_dirs;
    federation::federated_server srv(cfg);
    std::cerr << "Mounted " << srv.registry().num_stores() << " stores ("
              << srv.registry().total_buildings() << " buildings, "
              << srv.registry().shards().size() << " shards); serving via "
              << srv.num_backends() << " backends ["
              << federation::routing_policy_name(cfg.policy) << "]\n";

    std::stringstream wire_in, wire_out;
    api::client cli(static_cast<std::ostream&>(wire_in));
    for (const federation::mounted_shard& ms : srv.registry().shards())
        static_cast<void>(cli.identify_shard(ms.ref));
    static_cast<void>(cli.flush());
    static_cast<void>(cli.get_stats());
    srv.serve(wire_in, wire_out);
    static_cast<void>(cli.ingest(wire_out));
    if (!cli.errors().empty()) {
        std::cerr << "federation_city: protocol error: " << cli.errors().front().message
                  << "\n";
        return EXIT_FAILURE;
    }

    // --- 4. deterministic NDJSON + byte-identity against a single service ----
    std::ostringstream federated_ndjson;
    service::export_input_order(federated_ndjson, cli.reports());
    if (!quiet) std::cout << federated_ndjson.str();

    std::string single_ndjson;
    {
        const std::string whole_dir = (std::filesystem::path(dir) / "whole").string();
        static_cast<void>(data::write_corpus_store(city, whole_dir, shard_size));
        const data::corpus_store whole = data::corpus_store::open(whole_dir);
        service::service_config scfg = cfg.service;
        service::floor_service svc(scfg);
        std::vector<service::floor_service::job> jobs;
        for (std::size_t s = 0; s < whole.num_shards(); ++s)
            jobs.push_back(svc.submit(service::make_shard_ref(whole, s)));
        svc.wait_all();
        std::vector<runtime::building_report> reports;
        for (const auto& job : jobs)
            for (const auto& report : job.reports()) reports.push_back(report);
        std::ostringstream out;
        service::export_input_order(out, std::move(reports));
        single_ndjson = out.str();
    }
    const bool identical = federated_ndjson.str() == single_ndjson;

    const auto stats = cli.last_stats();
    std::cerr << "Fleet stats (merged over " << srv.num_backends()
              << " backends): " << (stats ? stats->buildings_done : 0) << " done, "
              << (stats ? stats->buildings_ok : 0) << " ok, p50 "
              << (stats ? stats->latency_p50 : 0.0) << "s\n";
    std::cerr << "Federated NDJSON byte-identical to a single-service run: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical) {
        std::cerr << "federation_city: determinism contract violated\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "federation_city: " << e.what() << '\n';
    return EXIT_FAILURE;
}
