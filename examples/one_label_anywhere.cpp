/// \file one_label_anywhere.cpp
/// Demonstrates the paper's §VI extension: the single labeled sample comes
/// from an *arbitrary* floor instead of the bottom one. The example walks
/// every possible labeled floor of a building and shows:
///   - Case 2 (any non-middle floor): FIS-ONE excludes the labeled sample
///     from clustering, solves the free-start TSP, and orients the path by
///     the labeled sample's embedding distance to the two candidate
///     clusters — accuracy stays close to the bottom-floor protocol;
///   - Case 1 (middle floor of an odd-floor building): the orientation is
///     provably ambiguous, and the pipeline reports it rather than guess.
///
/// Run:  ./one_label_anywhere [--floors N] [--seed S]

#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    const auto floors = static_cast<std::size_t>(args.get_int("floors", 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

    sim::building_spec spec;
    spec.name = "anywhere-tower";
    spec.num_floors = floors;
    spec.samples_per_floor = 120;
    spec.seed = seed;
    data::building b = sim::generate_building(spec).building;

    // Reference: the standard bottom-floor protocol.
    core::fis_one_config bottom_cfg;
    bottom_cfg.gnn.seed = seed;
    bottom_cfg.seed = seed;
    const auto bottom = core::fis_one(bottom_cfg).run(b);
    std::cout << "Bottom-floor protocol reference: ARI=" << bottom.ari
              << " edit distance=" << bottom.edit_distance << "\n\n";

    core::fis_one_config any_cfg = bottom_cfg;
    any_cfg.label = core::label_mode::arbitrary_floor;
    const core::fis_one system(any_cfg);

    util::table_printer table("Arbitrary-floor label (§VI)");
    table.header({"labeled floor", "case", "ARI", "edit distance"});
    util::rng gen(seed ^ 0x5eed);
    for (std::size_t f = 0; f < floors; ++f) {
        sim::relabel_floor(b, static_cast<int>(f), gen);
        const auto r = system.run(b);
        const bool middle = floors % 2 == 1 && f == floors / 2;
        table.row({"F" + std::to_string(f + 1),
                   r.ambiguous ? "Case 1 (ambiguous)" : "Case 2",
                   util::table_printer::num(r.ari),
                   middle && r.ambiguous ? util::table_printer::num(r.edit_distance) + " (coin flip)"
                                         : util::table_printer::num(r.edit_distance)});
    }
    table.print(std::cout);

    std::cout << "\nExpected: every Case-2 row is within a few percent of the bottom-floor\n"
                 "reference; the middle floor of an odd building is flagged Case 1, where\n"
                 "no algorithm can orient the path (paper Fig. 13).\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "one_label_anywhere: " << e.what() << '\n';
    return EXIT_FAILURE;
}
