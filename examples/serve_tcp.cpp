/// \file serve_tcp.cpp
/// The network front door, running: bind a `net::tcp_server` on a real
/// socket, front either a single `api::server` or a federated fleet, and
/// serve FIS1 frames to any number of concurrent connections until a
/// SIGTERM/SIGINT triggers a graceful drain (stop accepting, finish
/// in-flight jobs, flush, exit 0).
///
/// While it runs, the same port answers plaintext probes:
///
///     curl http://127.0.0.1:PORT/metrics
///
/// returns the Prometheus text-format page (transport counters, admission
/// and shed totals, request latency quantiles, service + cache stats).
///
/// Run:  ./serve_tcp [--host A] [--port P] [--port-file PATH]
///                   [--stores DIR,DIR,...] [--backends N]
///                   [--threads T] [--seed S] [--profile quick|full]
///                   [--max-inflight N] [--max-connections N]
///                   [--request-timeout-ms N] [--cache-dir DIR]
///                   [--fault-plan SPEC] [--trace-out PATH] [--slow-ms N]
///                   [--telemetry-window-ms N] [--quiet] [--help]
///
///  --port 0       (default) binds a kernel-assigned port; pair with
///                 --port-file so a driving script can discover it.
///  --stores       mount on-disk corpus stores behind a federated fleet
///                 of --backends services; without it (and without
///                 --backends/--fault-plan/--request-timeout-ms), a
///                 single `api::server` serves wire-supplied buildings
///                 only.
///  --profile      pins the pipeline profile (`service::profiles`), so a
///                 client process using the same profile + seed gets
///                 byte-identical results to an in-process run.
///  --request-timeout-ms
///                 per-request deadline. A building request that hasn't
///                 answered within N ms is cancelled on its backend and
///                 retried elsewhere; exhausted retries answer a typed
///                 `deadline_exceeded` error. 0 (default) disables
///                 deadlines. Fleet mode only; arms fault tolerance.
///  --cache-dir    persist the result cache(s) under DIR (crash-safe
///                 write-then-rename spill). On start each backend warm
///                 loads only its own cache-affinity shard, so a
///                 restarted fleet resumes with warm caches.
///  --fault-plan   deterministic fault injection, e.g.
///                 `0:fail_every=3;1:hang_ms=200` (keys: fail_every,
///                 fail_first, hang_ms, crash_on_submit, slow_read_ms,
///                 crash_on_append). Fleet mode only; arms fault
///                 tolerance (retry/failover + circuit breakers).
///                 crash_on_append=1 aborts the process after an
///                 appended delta shard is durable but before the
///                 manifest tmp is written; =2 aborts after the tmp is
///                 written but before the rename — both for drilling
///                 the warm-restart torn-manifest guarantee.
///  --trace-out    enable span tracing for the whole run and write the
///                 tape as Chrome trace-event JSON (Perfetto-loadable) to
///                 PATH after the drain completes. While the server runs,
///                 `curl http://host:port/dump_trace` serves the same JSON
///                 live.
///  --slow-ms      log one structured JSON line to stderr for every
///                 request at or over N milliseconds, with the request's
///                 span breakdown inline when tracing is on. 0 (default)
///                 disables the log.
///  --telemetry-window-ms
///                 length of the front door's telemetry windows (the
///                 cadence `subscribe_stats` streams and the capacity
///                 bench closes its loop on). Default 1000; 0 disables
///                 ticking entirely.

#include <pthread.h>
#include <signal.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/server.hpp"
#include "federation/federated_server.hpp"
#include "net/tcp_server.hpp"
#include "obs/trace.hpp"
#include "service/fault_plan.hpp"
#include "service/profiles.hpp"
#include "util/cli.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string part =
            csv.substr(start, comma == std::string::npos ? comma : comma - start);
        if (!part.empty()) out.push_back(part);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

void print_usage() {
    std::cerr <<
        "usage: serve_tcp [--host A] [--port P] [--port-file PATH]\n"
        "                 [--stores DIR,DIR,...] [--backends N]\n"
        "                 [--threads T] [--seed S] [--profile quick|full]\n"
        "                 [--max-inflight N] [--max-connections N]\n"
        "                 [--request-timeout-ms N] [--cache-dir DIR]\n"
        "                 [--fault-plan SPEC] [--trace-out PATH]\n"
        "                 [--slow-ms N] [--telemetry-window-ms N]\n"
        "                 [--quiet] [--help]\n"
        "\n"
        "  --request-timeout-ms N   per-request deadline; late attempts are\n"
        "                           cancelled and retried on another backend,\n"
        "                           exhausted retries answer deadline_exceeded.\n"
        "                           0 disables (default). Fleet mode only.\n"
        "  --cache-dir DIR          crash-safe persistent result-cache spill;\n"
        "                           each backend warm-loads its own affinity\n"
        "                           shard on restart.\n"
        "  --fault-plan SPEC        deterministic fault injection, e.g.\n"
        "                           0:fail_every=3;1:hang_ms=200 (keys:\n"
        "                           fail_every, fail_first, hang_ms,\n"
        "                           crash_on_submit, slow_read_ms,\n"
        "                           crash_on_append). Fleet mode only;\n"
        "                           arms retry/failover.\n"
        "\n"
        "Fleet mode runs when --stores, --backends, --fault-plan, or\n"
        "--request-timeout-ms is given; otherwise a single api::server\n"
        "serves wire-supplied buildings. SIGTERM/SIGINT drains gracefully;\n"
        "curl http://host:port/metrics scrapes Prometheus text format.\n";
}

}  // namespace

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    if (args.has("help")) {
        print_usage();
        return EXIT_SUCCESS;
    }
    const bool quiet = args.has("quiet");
    const std::string host = args.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
    const std::string port_file = args.get("port-file", "");
    const std::vector<std::string> stores = split_csv(args.get("stores", ""));
    const auto backends = static_cast<std::size_t>(args.get_int("backends", 2));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 2));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::string profile = args.get("profile", "quick");
    const auto max_inflight = static_cast<std::size_t>(args.get_int("max-inflight", 32));
    const auto max_conns = static_cast<std::size_t>(args.get_int("max-connections", 64));
    const auto request_timeout_ms = args.get_int("request-timeout-ms", 0);
    const std::string cache_dir = args.get("cache-dir", "");
    const std::string fault_plan = args.get("fault-plan", "");
    const std::string trace_out = args.get("trace-out", "");
    const auto slow_ms = args.get_int("slow-ms", 0);
    const auto telemetry_window_ms = args.get_int("telemetry-window-ms", 1000);

    if (!trace_out.empty()) obs::set_tracing_enabled(true);

    // Block the shutdown signals in every thread *before* any thread is
    // spawned, then collect them with sigwait below — no async handler,
    // no async-signal-safety constraints on the drain path.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
        std::cerr << "serve_tcp: pthread_sigmask failed\n";
        return EXIT_FAILURE;
    }

    const service::service_config svc_cfg =
        service::profile_by_name(profile, seed, threads);

    // Fault tolerance needs peers to fail over to, so any fault-plan or
    // deadline flag (and an explicit --backends) selects fleet mode even
    // without on-disk stores.
    const bool fleet_mode = !stores.empty() || args.has("backends") ||
                            !fault_plan.empty() || request_timeout_ms > 0;

    // The backend must outlive the tcp_server, so both live here.
    std::unique_ptr<api::server> single;
    std::unique_ptr<federation::federated_server> fleet;
    net::backend be;
    if (!fleet_mode) {
        api::server_config cfg;
        cfg.service = svc_cfg;
        if (!cache_dir.empty()) cfg.cache_spill = api::cache_spill_config{cache_dir, 1, 0};
        single = std::make_unique<api::server>(cfg);
        be = net::make_backend(*single);
    } else {
        federation::federation_config cfg;
        cfg.service = svc_cfg;
        cfg.num_backends = backends;
        cfg.store_dirs = stores;
        cfg.cache_dir = cache_dir;
        if (request_timeout_ms > 0)
            cfg.fault_tolerance.request_timeout = std::chrono::milliseconds(request_timeout_ms);
        if (!fault_plan.empty())
            cfg.fault_plans = service::parse_fault_plans(fault_plan, backends);
        fleet = std::make_unique<federation::federated_server>(cfg);
        be = net::make_backend(*fleet);
    }

    net::tcp_server_config net_cfg;
    net_cfg.host = host;
    net_cfg.port = port;
    net_cfg.max_inflight_requests = max_inflight;
    net_cfg.max_connections = max_conns;
    net_cfg.slow_request_seconds = slow_ms > 0 ? static_cast<double>(slow_ms) / 1000.0 : 0.0;
    net_cfg.telemetry_window_ms =
        telemetry_window_ms > 0 ? static_cast<std::uint32_t>(telemetry_window_ms) : 0;
    net::tcp_server srv(std::move(be), net_cfg);

    if (!port_file.empty()) {
        // Write-then-rename so a polling script never reads a torn file.
        const std::string tmp = port_file + ".tmp";
        std::ofstream f(tmp);
        f << srv.port() << '\n';
        f.close();
        if (!f || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
            std::cerr << "serve_tcp: cannot write port file " << port_file << '\n';
            return EXIT_FAILURE;
        }
    }
    if (!quiet)
        std::cerr << "serve_tcp: listening on " << host << ':' << srv.port() << " ("
                  << (!fleet_mode ? "single server"
                                  : std::to_string(backends) + "-backend fleet")
                  << ", profile " << profile << ", seed " << seed << ", "
                  << max_inflight << " in-flight max"
                  << (cache_dir.empty() ? "" : ", cache spill " + cache_dir)
                  << (request_timeout_ms > 0
                          ? ", " + std::to_string(request_timeout_ms) + "ms deadline"
                          : "")
                  << (fault_plan.empty() ? "" : ", fault plan armed") << ")\n"
                  << "serve_tcp: scrape http://" << host << ':' << srv.port()
                  << "/metrics — SIGTERM drains\n";

    std::thread loop([&srv] { srv.run(); });
    int sig = 0;
    sigwait(&sigs, &sig);
    if (!quiet)
        std::cerr << "serve_tcp: " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                  << " — draining (no new connections; finishing in-flight)\n";
    srv.drain();
    loop.join();

    const net::tcp_server_stats s = srv.stats();
    if (!quiet)
        std::cerr << "serve_tcp: drained. " << s.connections_accepted << " connections, "
                  << s.requests_admitted << " requests admitted, "
                  << s.requests_shed_overload + s.requests_shed_draining << " shed, "
                  << s.responses_sent << " responses\n";

    if (!trace_out.empty()) {
        std::ofstream f(trace_out);
        obs::dump_chrome_trace(f);
        f.close();
        if (!f) {
            std::cerr << "serve_tcp: cannot write trace file " << trace_out << '\n';
            return EXIT_FAILURE;
        }
        const obs::trace_stats ts = obs::stats();
        if (!quiet)
            std::cerr << "serve_tcp: wrote " << ts.recorded << " spans ("
                      << ts.dropped << " dropped) to " << trace_out << '\n';
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "serve_tcp: " << e.what() << '\n';
    return EXIT_FAILURE;
}
