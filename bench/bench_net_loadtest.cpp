/// \file bench_net_loadtest.cpp
/// Open-loop load test of the network front door, and the proof that the
/// TCP path changes nothing: many concurrent connections blast
/// `identify_building` frames at a `net::tcp_server` (each connection
/// deliberately reusing correlation ids 1..k, so the per-connection id
/// remap is on the hot path), per-request wall latency is recorded
/// client-side, and at the end the merged input-order NDJSON re-export is
/// compared **byte for byte** against an in-process loopback run of the
/// same corpus. Then an overload phase pauses the backing service, blasts
/// more requests than the admission bound, and checks the shed contract:
/// every submitted request is answered — a result or a typed
/// `error_response{overloaded}` — with nothing hung and nothing dropped.
///
/// Run:  ./bench_net_loadtest [--quick] [--json] [--out BENCH_net.json]
///                            [--buildings N] [--samples-per-floor M]
///                            [--connections C] [--threads T] [--seed S]
///                            [--connect HOST:PORT]
///
///  --quick    CI-sized corpus (seconds)
///  --json     write the JSON report (schema `fisone-bench-net/v1`)
///  --connect  drive an external `serve_tcp` (same profile + seed!)
///             instead of an in-process server; the parity check then
///             spans two processes. The overload phase needs to pause the
///             backing service, so it only runs in-process.
///
/// Exits non-zero on NDJSON divergence or an unaccounted overload request.

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "api/client.hpp"
#include "api/server.hpp"
#include "net/socket.hpp"
#include "net/tcp_server.hpp"
#include "obs/trace.hpp"
#include "service/ndjson_export.hpp"
#include "service/profiles.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/percentile.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

data::corpus make_fleet(std::size_t count, std::size_t samples_per_floor,
                        std::uint64_t seed) {
    data::corpus fleet;
    fleet.name = "net-fleet";
    fleet.buildings.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "net-fleet-" + std::to_string(i);
        spec.num_floors = 3 + i % 5;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.buildings.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

/// The reference run: same corpus, same explicit indices, loopback
/// transport. Returns (wall seconds, input-order NDJSON).
std::pair<double, std::string> run_loopback(const data::corpus& fleet, std::uint64_t seed,
                                            std::size_t threads) {
    const clock_type::time_point start = clock_type::now();
    api::server_config cfg;
    cfg.service = service::quick_profile(seed, threads);
    api::server srv(cfg);
    api::client cli(srv);
    for (std::size_t i = 0; i < fleet.buildings.size(); ++i)
        static_cast<void>(cli.identify(fleet.buildings[i], i));
    static_cast<void>(cli.flush());
    const double wall = std::chrono::duration<double>(clock_type::now() - start).count();
    std::ostringstream out;
    service::export_input_order(out, cli.reports());
    return {wall, out.str()};
}

struct tcp_run {
    double wall = 0.0;
    std::string ndjson;
    util::percentile_accumulator latency;
    std::size_t responses = 0;
    std::size_t protocol_errors = 0;
};

/// Blast \p fleet at host:port over \p connections concurrent connections
/// (building i rides connection i % C under the connection-local
/// correlation id for its position — every connection counts 1, 2, 3...,
/// so ids collide across connections by construction).
tcp_run run_tcp(const std::string& host, std::uint16_t port, const data::corpus& fleet,
                std::size_t connections) {
    struct conn_state {
        std::vector<std::size_t> indices;  ///< corpus indices on this connection
        std::vector<runtime::building_report> reports;
        util::percentile_accumulator latency;
        std::size_t errors = 0;
        std::mutex m;  ///< guards send_at between writer and reader thread
        std::vector<clock_type::time_point> send_at;  ///< [corr-1]
        std::string failure;
    };
    std::vector<conn_state> conns(connections);
    for (std::size_t i = 0; i < fleet.buildings.size(); ++i)
        conns[i % connections].indices.push_back(i);

    const clock_type::time_point start = clock_type::now();
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            conn_state& st = conns[c];
            try {
                net::frame_conn conn(host, port);
                st.send_at.resize(st.indices.size());
                std::thread writer([&] {
                    for (std::size_t j = 0; j < st.indices.size(); ++j) {
                        api::identify_building_request req;
                        req.correlation_id = j + 1;  // local id space, collides across conns
                        req.has_index = true;
                        req.corpus_index = st.indices[j];
                        req.b = fleet.buildings[st.indices[j]];
                        const std::string frame = api::encode(api::request(req));
                        {
                            const std::lock_guard<std::mutex> lock(st.m);
                            st.send_at[j] = clock_type::now();
                        }
                        conn.send(frame);
                    }
                    conn.shutdown_write();
                });
                while (std::optional<std::string> frame = conn.read_frame()) {
                    const api::decode_result<api::response> r = api::decode_response(*frame);
                    if (!r.ok()) {
                        ++st.errors;
                        continue;
                    }
                    if (const auto* b = std::get_if<api::building_response>(&*r.value)) {
                        const clock_type::time_point now = clock_type::now();
                        {
                            const std::lock_guard<std::mutex> lock(st.m);
                            if (b->correlation_id >= 1 &&
                                b->correlation_id <= st.send_at.size())
                                st.latency.add(std::chrono::duration<double>(
                                                   now - st.send_at[b->correlation_id - 1])
                                                   .count());
                        }
                        st.reports.push_back(b->report);
                    } else if (std::get_if<api::error_response>(&*r.value)) {
                        ++st.errors;
                    }
                }
                writer.join();
            } catch (const std::exception& e) {
                st.failure = e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    tcp_run out;
    out.wall = std::chrono::duration<double>(clock_type::now() - start).count();
    std::vector<runtime::building_report> reports;
    for (conn_state& st : conns) {
        if (!st.failure.empty())
            throw std::runtime_error("connection failed: " + st.failure);
        for (auto& r : st.reports) reports.push_back(std::move(r));
        out.latency.merge(st.latency);
        out.responses += st.reports.size();
        out.protocol_errors += st.errors;
    }
    std::ostringstream nd;
    service::export_input_order(nd, std::move(reports));
    out.ndjson = nd.str();
    return out;
}

struct overload_result {
    std::size_t submitted = 0;
    std::size_t results = 0;
    std::size_t shed = 0;
    std::size_t other = 0;
    [[nodiscard]] bool accounted() const {
        return submitted == results + shed && other == 0 && shed > 0;
    }
};

/// Pause the backing service, submit far more than the admission bound,
/// and verify every request is answered: a building result or a typed
/// `overloaded` shed — no hangs, no silent drops.
overload_result run_overload(const data::corpus& fleet, std::uint64_t seed) {
    constexpr std::size_t k_bound = 2;
    constexpr std::size_t k_conns = 2;
    constexpr std::size_t k_per_conn = 8;

    api::server_config scfg;
    scfg.service = service::quick_profile(seed, 1);
    api::server srv(scfg);
    srv.backing_service().pause();

    net::tcp_server_config ncfg;
    ncfg.max_inflight_requests = k_bound;
    net::tcp_server front(net::make_backend(srv), ncfg);
    std::thread loop([&front] { front.run(); });

    overload_result out;
    std::mutex m;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < k_conns; ++c) {
        clients.emplace_back([&, c] {
            net::frame_conn conn("127.0.0.1", front.port());
            for (std::size_t j = 0; j < k_per_conn; ++j) {
                api::identify_building_request req;
                req.correlation_id = j + 1;
                req.has_index = true;
                // Unique indices per request so nothing is served by cache.
                req.corpus_index = c * k_per_conn + j;
                req.b = fleet.buildings[(c * k_per_conn + j) % fleet.buildings.size()];
                conn.send(api::encode(api::request(req)));
            }
            conn.shutdown_write();
            std::size_t results = 0, shed = 0, other = 0;
            while (std::optional<std::string> frame = conn.read_frame()) {
                const api::decode_result<api::response> r = api::decode_response(*frame);
                if (r.ok() && std::holds_alternative<api::building_response>(*r.value))
                    ++results;
                else if (r.ok() && std::holds_alternative<api::error_response>(*r.value) &&
                         std::get<api::error_response>(*r.value).code ==
                             api::error_code::overloaded)
                    ++shed;
                else
                    ++other;
            }
            const std::lock_guard<std::mutex> lock(m);
            out.submitted += k_per_conn;
            out.results += results;
            out.shed += shed;
            out.other += other;
        });
    }
    // Let the blast hit the (paused) bound, then release the gate: the
    // admitted requests complete, the readers see EOF after their last
    // response, and the clients join.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    srv.backing_service().resume();
    for (std::thread& t : clients) t.join();
    front.drain();
    loop.join();
    return out;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_net.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 6 : 16));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 60));
    const auto connections = static_cast<std::size_t>(args.get_int("connections", 4));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 2));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::string connect = args.get("connect", "");
    const std::string trace_out = args.get("trace-out", "");
    if (connections < 1) throw std::invalid_argument("--connections must be >= 1");

    // Tracing covers the whole load run (loopback reference included) so
    // the tape shows both transports side by side.
    if (!trace_out.empty()) obs::set_tracing_enabled(true);

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor)...\n";
    const data::corpus fleet = make_fleet(buildings, samples, seed);

    std::cerr << "Loopback reference run...\n";
    const auto [loop_s, loop_ndjson] = run_loopback(fleet, seed, threads);

    // The system under test: an external serve_tcp, or an in-process
    // front door over an identical server.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::unique_ptr<api::server> srv;
    std::unique_ptr<net::tcp_server> front;
    std::thread loop_thread;
    if (connect.empty()) {
        api::server_config cfg;
        cfg.service = service::quick_profile(seed, threads);
        srv = std::make_unique<api::server>(cfg);
        front = std::make_unique<net::tcp_server>(net::make_backend(*srv));
        port = front->port();
        loop_thread = std::thread([&front] { front->run(); });
    } else {
        const std::size_t colon = connect.rfind(':');
        if (colon == std::string::npos)
            throw std::invalid_argument("--connect wants HOST:PORT, got " + connect);
        host = connect.substr(0, colon);
        port = static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
    }

    std::cerr << "TCP run: " << connections << " connections against " << host << ':'
              << port << "...\n";
    const tcp_run tcp = run_tcp(host, port, fleet, connections);
    if (front) {
        front->drain();
        loop_thread.join();
    }
    const bool identical = tcp.ndjson == loop_ndjson;

    overload_result overload;
    const bool overload_ran = connect.empty();
    if (overload_ran) {
        std::cerr << "Overload phase: paused backend, bound 2, 16 requests...\n";
        overload = run_overload(fleet, seed);
    }

    const auto rate = [&](double s) {
        return s > 0.0 ? static_cast<double>(buildings) / s : 0.0;
    };
    const auto ms = [](double s) { return s * 1e3; };
    util::table_printer table("Network front door — " + std::to_string(buildings) +
                              " buildings over " + std::to_string(connections) +
                              " connections");
    table.header({"transport", "wall s", "buildings/s", "p50 ms", "p99 ms", "identical"});
    table.row({"loopback", util::table_printer::num(loop_s, 2),
               util::table_printer::num(rate(loop_s), 2), "-", "-", "reference"});
    table.row({connect.empty() ? "tcp (in-process)" : "tcp (external)",
               util::table_printer::num(tcp.wall, 2),
               util::table_printer::num(rate(tcp.wall), 2),
               util::table_printer::num(ms(tcp.latency.percentile_or_zero(50.0)), 1),
               util::table_printer::num(ms(tcp.latency.percentile_or_zero(99.0)), 1),
               identical ? "yes" : "NO"});
    table.print(std::cout);
    std::cout << "\nTCP NDJSON byte-identical to loopback: " << (identical ? "yes" : "NO")
              << "\n";
    if (overload_ran)
        std::cout << "Overload: " << overload.submitted << " submitted = " << overload.results
                  << " results + " << overload.shed << " typed sheds ("
                  << (overload.accounted() ? "fully accounted" : "NOT ACCOUNTED") << ")\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_net_loadtest: cannot open " << out_path << '\n';
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-net/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"transport\": \"" << (connect.empty() ? "in-process" : "external") << "\",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"connections\": " << connections << ",\n";
        f << "  \"backend_threads\": " << threads << ",\n";
        f << "  \"loopback_seconds\": " << bench::json_num(loop_s) << ",\n";
        f << "  \"tcp_seconds\": " << bench::json_num(tcp.wall) << ",\n";
        f << "  \"tcp_buildings_per_sec\": " << bench::json_num(rate(tcp.wall)) << ",\n";
        f << "  \"latency_p50_ms\": " << bench::json_num(ms(tcp.latency.percentile_or_zero(50.0)))
          << ",\n";
        f << "  \"latency_p90_ms\": " << bench::json_num(ms(tcp.latency.percentile_or_zero(90.0)))
          << ",\n";
        f << "  \"latency_p99_ms\": " << bench::json_num(ms(tcp.latency.percentile_or_zero(99.0)))
          << ",\n";
        f << "  \"ndjson_identical\": " << (identical ? "true" : "false") << ",\n";
        f << "  \"overload_ran\": " << (overload_ran ? "true" : "false") << ",\n";
        f << "  \"overload_submitted\": " << overload.submitted << ",\n";
        f << "  \"overload_results\": " << overload.results << ",\n";
        f << "  \"overload_shed\": " << overload.shed << ",\n";
        f << "  \"overload_accounted\": "
          << (!overload_ran || overload.accounted() ? "true" : "false") << "\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!trace_out.empty()) {
        std::ofstream f(trace_out);
        obs::dump_chrome_trace(f);
        f.close();
        if (!f) {
            std::cerr << "bench_net_loadtest: cannot write trace file " << trace_out << '\n';
            return EXIT_FAILURE;
        }
        const obs::trace_stats ts = obs::stats();
        std::cout << "Chrome trace (" << ts.recorded << " spans, " << ts.dropped
                  << " dropped): " << trace_out << "\n";
    }

    if (!identical) {
        std::cerr << "bench_net_loadtest: TCP NDJSON diverged from the loopback run\n";
        return EXIT_FAILURE;
    }
    if (overload_ran && !overload.accounted()) {
        std::cerr << "bench_net_loadtest: overload accounting failed: " << overload.submitted
                  << " submitted, " << overload.results << " results, " << overload.shed
                  << " shed, " << overload.other << " other\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_net_loadtest: " << e.what() << '\n';
    return EXIT_FAILURE;
}
