/// \file bench_batch_throughput.cpp
/// Batch-runtime throughput: run the FIS-ONE pipeline over a fleet of
/// simulated buildings through `runtime::batch_runner` at 1/2/4/8 worker
/// threads and report buildings/sec plus the speedup over the serial run.
/// After each pooled run the per-building outputs are checked bit-for-bit
/// against the serial baseline — the runtime's determinism contract.
///
/// Run:  ./bench_batch_throughput [--buildings N] [--samples-per-floor M]
///                                [--seed S] [--max-threads T]
///                                [--json] [--out BENCH_batch.json]
///
/// `--json` writes a machine-readable perf trajectory (schema
/// `fisone-bench-batch/v1`, same conventions as BENCH_kernels.json) to
/// `--out`; CI uploads it per compiler.
///
/// Expect ≳2× buildings/sec at 4 threads on a ≥4-core machine; on fewer
/// cores the speedup saturates at the core count.

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/batch_runner.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;

std::vector<data::building> make_fleet(std::size_t count, std::size_t samples_per_floor,
                                       std::uint64_t seed) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "fleet-";
        spec.name += std::to_string(i);
        spec.num_floors = 3 + i % 5;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

runtime::batch_config make_config(std::size_t num_threads, std::uint64_t seed) {
    runtime::batch_config cfg;
    cfg.pipeline.gnn.embedding_dim = 16;
    cfg.pipeline.gnn.epochs = 4;
    cfg.pipeline.gnn.walks.walks_per_node = 3;
    cfg.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.seed = seed;
    cfg.num_threads = num_threads;
    return cfg;
}

bool identical(const runtime::batch_result& a, const runtime::batch_result& b) {
    if (a.reports.size() != b.reports.size()) return false;
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const core::fis_one_result& ra = a.reports[i].result;
        const core::fis_one_result& rb = b.reports[i].result;
        if (a.reports[i].ok != b.reports[i].ok) return false;
        if (ra.assignment != rb.assignment) return false;
        if (ra.cluster_to_floor != rb.cluster_to_floor) return false;
        if (ra.predicted_floor != rb.predicted_floor) return false;
        if (!(ra.embeddings == rb.embeddings)) return false;
    }
    return true;
}

/// One thread-count measurement, as serialised into BENCH_batch.json.
struct thread_record {
    std::size_t threads = 0;
    double wall_seconds = 0.0;
    double buildings_per_second = 0.0;
    double speedup = 0.0;
    bool bit_identical = false;
};

void write_json(std::ostream& out, std::size_t buildings, std::size_t samples,
                const std::vector<thread_record>& runs, double mean_ari) {
    out << "{\n";
    out << "  \"schema\": \"fisone-bench-batch/v1\",\n";
    out << "  \"buildings\": " << buildings << ",\n";
    out << "  \"samples_per_floor\": " << samples << ",\n";
    out << "  \"hardware_threads\": " << fisone::util::resolve_num_threads(0) << ",\n";
    out << "  \"mean_ari\": " << bench::json_num(mean_ari) << ",\n";
    out << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const thread_record& r = runs[i];
        out << "    {\"threads\": " << r.threads
            << ", \"wall_seconds\": " << bench::json_num(r.wall_seconds)
            << ", \"buildings_per_sec\": " << bench::json_num(r.buildings_per_second)
            << ", \"speedup\": " << bench::json_num(r.speedup)
            << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
            << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 16));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 60));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto max_threads = static_cast<std::size_t>(args.get_int("max-threads", 8));
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_batch.json");

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor), hardware_concurrency="
              << util::resolve_num_threads(0) << "...\n";
    const std::vector<data::building> fleet = make_fleet(buildings, samples, seed);

    util::table_printer table("Batch throughput — FIS-ONE pipeline over " +
                              std::to_string(buildings) + " buildings");
    table.header({"threads", "wall s", "buildings/s", "speedup", "bit-identical"});

    runtime::batch_result baseline;
    double baseline_rate = 0.0;
    std::vector<thread_record> records;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        const runtime::batch_runner runner(make_config(threads, seed));
        const runtime::batch_result result = runner.run(fleet);
        if (result.num_failed != 0) {
            std::cerr << "bench_batch_throughput: " << result.num_failed
                      << " buildings failed\n";
            return EXIT_FAILURE;
        }
        const bool matches = threads == 1 ? true : identical(baseline, result);
        if (threads == 1) {
            baseline = result;
            baseline_rate = result.buildings_per_second;
        }
        thread_record rec;
        rec.threads = threads;
        rec.wall_seconds = result.wall_seconds;
        rec.buildings_per_second = result.buildings_per_second;
        rec.speedup =
            baseline_rate > 0.0 ? result.buildings_per_second / baseline_rate : 1.0;
        rec.bit_identical = matches;
        records.push_back(rec);
        table.row({std::to_string(threads), util::table_printer::num(result.wall_seconds, 2),
                   util::table_printer::num(result.buildings_per_second, 2),
                   baseline_rate > 0.0
                       ? util::table_printer::num(result.buildings_per_second / baseline_rate, 2)
                       : "-",
                   matches ? "yes" : "NO"});
        if (!matches) {
            table.print(std::cout);
            std::cerr << "bench_batch_throughput: pooled result diverged from serial\n";
            return EXIT_FAILURE;
        }
    }
    table.print(std::cout);
    std::cout << "\nMean ARI over fleet: " << util::table_printer::num(baseline.ari.mean(), 3)
              << "  (identical at every thread count by construction)\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_batch_throughput: cannot open " << out_path
                      << " for writing\n";
            return EXIT_FAILURE;
        }
        write_json(f, buildings, samples, records, baseline.ari.mean());
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_batch_throughput: " << e.what() << '\n';
    return EXIT_FAILURE;
}
