#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the table/figure harnesses: corpus synthesis from
/// CLI flags, mean/std aggregation of pipeline scores over buildings, and
/// the number formatting shared by every BENCH_*.json emitter.

#include <charconv>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace fisone::bench {

/// Shortest-round-trip JSON number token for the BENCH_*.json schemas.
/// JSON has no inf/nan tokens, so non-finite values serialise as null.
inline std::string json_num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    return ec == std::errc{} ? std::string(buf, p) : std::string("0");
}

/// The two corpora of the paper, synthesised at CLI-selected scale.
struct corpora {
    data::corpus microsoft;
    data::corpus ours;
};

/// Default bench scale: 8 Microsoft-like buildings + the 3 malls, 240
/// scans/floor (abundance matters: average-linkage needs the paper's dense
/// crowdsourcing regime). `--buildings`, `--samples-per-floor`, `--seed`
/// rescale; the paper-scale run is `--buildings 152 --samples-per-floor 1000`.
inline corpora make_corpora(const util::cli_args& args) {
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 6));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 240));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::cerr << "Synthesising corpora (" << buildings << " buildings + 3 malls, " << samples
              << " scans/floor)...\n";
    return corpora{sim::make_microsoft_corpus(buildings, samples, seed),
                   sim::make_malls_corpus(samples, seed + 1)};
}

/// Aggregated ARI/NMI/edit-distance over a corpus.
struct aggregate {
    util::running_stats ari, nmi, edit;

    void add(double a, double n, double e) {
        ari.add(a);
        nmi.add(n);
        edit.add(e);
    }
};

/// Run the FIS-ONE pipeline with \p configure applied to the default config
/// on every building of \p corpus; aggregates the three metrics.
inline aggregate run_fis_one_over(
    const data::corpus& corpus,
    const std::function<void(core::fis_one_config&, std::uint64_t)>& configure) {
    aggregate agg;
    for (std::size_t bi = 0; bi < corpus.buildings.size(); ++bi) {
        const std::uint64_t bseed = 7919 * (bi + 1);
        core::fis_one_config cfg;
        cfg.gnn.seed = bseed;
        cfg.seed = bseed;
        configure(cfg, bseed);
        const core::fis_one_result r = core::fis_one(cfg).run(corpus.buildings[bi]);
        agg.add(r.ari, r.nmi, r.edit_distance);
        std::cerr << corpus.name << " " << (bi + 1) << "/" << corpus.buildings.size()
                  << " ARI=" << r.ari << "\n";
    }
    return agg;
}

}  // namespace fisone::bench
