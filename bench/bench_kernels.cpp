/// \file bench_kernels.cpp
/// google-benchmark micro-benchmarks for the library's computational
/// kernels: propagation + building synthesis, bipartite-graph build,
/// RF-GNN training epochs, UPGMA, k-means, Held–Karp vs 2-opt, adapted
/// Jaccard, and the metrics. These quantify where pipeline time goes and
/// back the complexity claims in DESIGN.md (e.g. O(N²·2^N) Held–Karp).

#include <benchmark/benchmark.h>

#include "cluster/hierarchical.hpp"
#include "cluster/kmeans.hpp"
#include "core/fis_one.hpp"
#include "eval/metrics.hpp"
#include "gnn/rf_gnn.hpp"
#include "graph/bipartite_graph.hpp"
#include "indexing/similarity.hpp"
#include "sim/building_generator.hpp"
#include "tsp/tsp.hpp"

namespace {

using namespace fisone;

data::building cached_building(std::size_t floors, std::size_t samples_per_floor) {
    sim::building_spec spec;
    spec.num_floors = floors;
    spec.samples_per_floor = samples_per_floor;
    spec.aps_per_floor = 16;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = 17;
    return sim::generate_building(spec).building;
}

void bm_building_synthesis(benchmark::State& state) {
    sim::building_spec spec;
    spec.num_floors = static_cast<std::size_t>(state.range(0));
    spec.samples_per_floor = 100;
    spec.seed = 1;
    for (auto _ : state) {
        spec.seed++;
        benchmark::DoNotOptimize(sim::generate_building(spec));
    }
}
BENCHMARK(bm_building_synthesis)->Arg(3)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void bm_graph_construction(benchmark::State& state) {
    const auto b = cached_building(5, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(graph::bipartite_graph::from_building(b));
}
BENCHMARK(bm_graph_construction)->Arg(50)->Arg(150)->Arg(400)->Unit(benchmark::kMillisecond);

void bm_gnn_train_epoch(benchmark::State& state) {
    const auto b = cached_building(5, static_cast<std::size_t>(state.range(0)));
    const auto g = graph::bipartite_graph::from_building(b);
    gnn::rf_gnn_config cfg;
    cfg.seed = 3;
    gnn::rf_gnn model(g, cfg);
    for (auto _ : state) benchmark::DoNotOptimize(model.train_epoch());
}
BENCHMARK(bm_gnn_train_epoch)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

void bm_gnn_inference(benchmark::State& state) {
    const auto b = cached_building(5, 150);
    const auto g = graph::bipartite_graph::from_building(b);
    gnn::rf_gnn_config cfg;
    cfg.seed = 3;
    cfg.epochs = 1;
    gnn::rf_gnn model(g, cfg);
    model.train();
    const auto& obs = b.samples[7].observations;
    (void)model.embed_new_sample(obs);  // warm the layer cache
    for (auto _ : state) benchmark::DoNotOptimize(model.embed_new_sample(obs));
}
BENCHMARK(bm_gnn_inference)->Unit(benchmark::kMicrosecond);

void bm_upgma(benchmark::State& state) {
    util::rng gen(5);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    linalg::matrix pts(n, 16);
    for (double& x : pts.flat()) x = gen.normal();
    for (auto _ : state) benchmark::DoNotOptimize(cluster::upgma_cluster(pts, 5));
}
BENCHMARK(bm_upgma)->Arg(250)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

void bm_kmeans(benchmark::State& state) {
    util::rng gen(6);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    linalg::matrix pts(n, 16);
    for (double& x : pts.flat()) x = gen.normal();
    for (auto _ : state) benchmark::DoNotOptimize(cluster::kmeans(pts, 5, gen));
}
BENCHMARK(bm_kmeans)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

linalg::matrix random_distances(std::size_t n, util::rng& gen) {
    linalg::matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double w = gen.uniform(0.1, 1.0);
            d(i, j) = w;
            d(j, i) = w;
        }
    return d;
}

void bm_held_karp(benchmark::State& state) {
    util::rng gen(7);
    const auto d = random_distances(static_cast<std::size_t>(state.range(0)), gen);
    for (auto _ : state) benchmark::DoNotOptimize(tsp::held_karp_path(d, 0));
}
BENCHMARK(bm_held_karp)->Arg(5)->Arg(10)->Arg(15)->Arg(18)->Unit(benchmark::kMicrosecond);

void bm_two_opt(benchmark::State& state) {
    util::rng gen(8);
    const auto d = random_distances(static_cast<std::size_t>(state.range(0)), gen);
    for (auto _ : state) benchmark::DoNotOptimize(tsp::two_opt_path(d, 0, gen));
}
BENCHMARK(bm_two_opt)->Arg(10)->Arg(18)->Arg(40)->Unit(benchmark::kMicrosecond);

void bm_adapted_jaccard_matrix(benchmark::State& state) {
    const auto b = cached_building(static_cast<std::size_t>(state.range(0)), 150);
    std::vector<int> assignment;
    assignment.reserve(b.samples.size());
    for (const auto& s : b.samples) assignment.push_back(s.true_floor);
    const auto profiles = indexing::build_profiles(b, assignment, b.num_floors);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            indexing::similarity_matrix(profiles, indexing::similarity_kind::adapted_jaccard));
}
BENCHMARK(bm_adapted_jaccard_matrix)->Arg(5)->Arg(8)->Unit(benchmark::kMicrosecond);

void bm_metrics(benchmark::State& state) {
    util::rng gen(9);
    const std::size_t n = 2000;
    std::vector<int> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int>(gen.uniform_index(8));
        b[i] = static_cast<int>(gen.uniform_index(8));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval::adjusted_rand_index(a, b));
        benchmark::DoNotOptimize(eval::normalized_mutual_information(a, b));
    }
}
BENCHMARK(bm_metrics)->Unit(benchmark::kMicrosecond);

void bm_full_pipeline(benchmark::State& state) {
    const auto b = cached_building(4, static_cast<std::size_t>(state.range(0)));
    core::fis_one_config cfg;
    cfg.gnn.seed = 11;
    const core::fis_one system(cfg);
    for (auto _ : state) benchmark::DoNotOptimize(system.run(b));
}
BENCHMARK(bm_full_pipeline)->Arg(60)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
