/// \file bench_kernels.cpp
/// Kernel-layer throughput harness with a machine-readable perf
/// trajectory. For every shape it times the scalar reference kernels
/// against the cache-blocked ones (GFLOP/s + speedup, serial and pooled),
/// verifies the bit-identity contract (`memcmp`, not epsilon), and runs a
/// small `batch_runner` fleet so the JSON also carries end-to-end
/// buildings/sec deltas. Any bitwise divergence makes the process exit
/// non-zero — CI runs this in quick mode, so a kernel that silently
/// changes bits fails the build.
///
/// Run:  ./bench_kernels [--quick] [--json] [--out BENCH_kernels.json]
///                       [--seed S] [--reps R]
///
///  --quick   CI-sized shapes and fleet (a few seconds total)
///  --json    write the JSON report to --out (and echo the path)
///
/// The JSON schema is documented in README.md § Performance.

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/parallel_policy.hpp"
#include "runtime/batch_runner.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;
using linalg::matrix;

using kernel_fn = void (*)(const double*, const double*, double*, std::size_t, std::size_t,
                           std::size_t, std::size_t, std::size_t) noexcept;
using wrapper_fn = matrix (*)(const matrix&, const matrix&, util::thread_pool*);

struct op_spec {
    const char* name;
    kernel_fn scalar;
    kernel_fn blocked;
    wrapper_fn wrapper;  // the public pooled entry point
};

constexpr op_spec kOps[] = {
    {"matmul", linalg::kernels::matmul_scalar, linalg::kernels::matmul_blocked, linalg::matmul},
    {"matmul_nt", linalg::kernels::matmul_nt_scalar, linalg::kernels::matmul_nt_blocked,
     linalg::matmul_nt},
    {"matmul_tn", linalg::kernels::matmul_tn_scalar, linalg::kernels::matmul_tn_blocked,
     linalg::matmul_tn},
};

struct shape {
    std::size_t m, k, n;
};

struct kernel_record {
    std::string op;
    shape s{};
    double flops = 0.0;
    double scalar_gflops = 0.0;
    double blocked_gflops = 0.0;
    double speedup = 0.0;
    std::size_t pool_threads = 1;
    double pooled_gflops = 0.0;
    double pooled_speedup = 0.0;
    bool bit_identical = false;
};

struct pipeline_record {
    std::size_t buildings = 0;
    std::size_t samples_per_floor = 0;
    double serial_buildings_per_sec = 0.0;
    std::size_t pooled_threads = 0;
    double pooled_buildings_per_sec = 0.0;
    double speedup = 0.0;
    bool bit_identical = false;
};

matrix random_matrix(std::size_t r, std::size_t c, util::rng& gen) {
    matrix m = matrix::uninit(r, c);
    for (double& x : m.flat()) x = gen.uniform(-1.0, 1.0);
    return m;
}

/// Best-of-\p reps wall seconds of \p fn (one untimed warm-up call).
template <class F>
double time_best(F&& fn, int reps) {
    fn();
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool bits_equal(const matrix& a, const matrix& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

kernel_record bench_one(const op_spec& op, const shape& s, util::thread_pool& pool, int reps,
                        util::rng& gen) {
    // Operand shapes per op: matmul A(m×k)·B(k×n); nt A(m×k)·B(n×k)ᵀ;
    // tn A(k×m)ᵀ·B(k×n). Output is always m×n.
    const bool tn = std::strcmp(op.name, "matmul_tn") == 0;
    const bool nt = std::strcmp(op.name, "matmul_nt") == 0;
    const matrix a = tn ? random_matrix(s.k, s.m, gen) : random_matrix(s.m, s.k, gen);
    const matrix b = nt ? random_matrix(s.n, s.k, gen) : random_matrix(s.k, s.n, gen);

    matrix c_scalar = matrix::uninit(s.m, s.n);
    matrix c_blocked = matrix::uninit(s.m, s.n);

    kernel_record rec;
    rec.op = op.name;
    rec.s = s;
    rec.flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                static_cast<double>(s.n);

    const double t_scalar = time_best(
        [&] { op.scalar(a.data(), b.data(), c_scalar.data(), s.m, s.k, s.n, 0, s.m); }, reps);
    const double t_blocked = time_best(
        [&] { op.blocked(a.data(), b.data(), c_blocked.data(), s.m, s.k, s.n, 0, s.m); }, reps);

    rec.scalar_gflops = rec.flops / t_scalar / 1e9;
    rec.blocked_gflops = rec.flops / t_blocked / 1e9;
    rec.speedup = t_scalar / t_blocked;
    rec.bit_identical = bits_equal(c_scalar, c_blocked);

    // The production entry point: policy-gated pool dispatch over rows.
    rec.pool_threads = pool.size();
    matrix c_pooled;
    const double t_pooled = time_best([&] { c_pooled = op.wrapper(a, b, &pool); }, reps);
    rec.pooled_gflops = rec.flops / t_pooled / 1e9;
    rec.pooled_speedup = t_scalar / t_pooled;
    rec.bit_identical = rec.bit_identical && bits_equal(c_scalar, c_pooled);
    return rec;
}

// --- end-to-end fleet deltas (the bench_batch_throughput path) --------------

std::vector<data::building> make_fleet(std::size_t count, std::size_t samples_per_floor,
                                       std::uint64_t seed) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "kernel-fleet-" + std::to_string(i);
        spec.num_floors = 3 + i % 4;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

bool reports_identical(const runtime::batch_result& a, const runtime::batch_result& b) {
    if (a.reports.size() != b.reports.size()) return false;
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const core::fis_one_result& ra = a.reports[i].result;
        const core::fis_one_result& rb = b.reports[i].result;
        if (a.reports[i].ok != b.reports[i].ok) return false;
        if (ra.assignment != rb.assignment) return false;
        if (ra.predicted_floor != rb.predicted_floor) return false;
        if (!(ra.embeddings == rb.embeddings)) return false;
    }
    return true;
}

pipeline_record bench_pipeline(std::size_t buildings, std::size_t samples, std::uint64_t seed) {
    const std::vector<data::building> fleet = make_fleet(buildings, samples, seed);

    auto run_at = [&](std::size_t num_threads) {
        runtime::batch_config cfg;
        cfg.pipeline.gnn.embedding_dim = 16;
        cfg.pipeline.gnn.epochs = 3;
        cfg.pipeline.gnn.walks.walks_per_node = 3;
        cfg.pipeline.num_threads = 1;  // building-level parallelism only
        cfg.seed = seed;
        cfg.num_threads = num_threads;
        const runtime::batch_runner runner(cfg);
        return runner.run(fleet);
    };

    pipeline_record rec;
    rec.buildings = buildings;
    rec.samples_per_floor = samples;
    const runtime::batch_result serial = run_at(1);
    rec.serial_buildings_per_sec = serial.buildings_per_second;
    rec.pooled_threads = std::max<std::size_t>(2, util::resolve_num_threads(0));
    const runtime::batch_result pooled = run_at(rec.pooled_threads);
    rec.pooled_buildings_per_sec = pooled.buildings_per_second;
    rec.speedup = rec.serial_buildings_per_sec > 0.0
                      ? rec.pooled_buildings_per_sec / rec.serial_buildings_per_sec
                      : 0.0;
    rec.bit_identical = serial.num_failed == 0 && pooled.num_failed == 0 &&
                        reports_identical(serial, pooled);
    return rec;
}

// --- JSON emission ----------------------------------------------------------

void write_json(std::ostream& out, bool quick, const std::vector<kernel_record>& kernels,
                const pipeline_record& pipe) {
    out << "{\n";
    out << "  \"schema\": \"fisone-bench-kernels/v1\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"hardware_threads\": " << util::resolve_num_threads(0) << ",\n";
    out << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const kernel_record& r = kernels[i];
        out << "    {\"op\": \"" << r.op << "\", \"m\": " << r.s.m << ", \"k\": " << r.s.k
            << ", \"n\": " << r.s.n << ", \"flops\": " << bench::json_num(r.flops)
            << ", \"scalar_gflops\": " << bench::json_num(r.scalar_gflops)
            << ", \"blocked_gflops\": " << bench::json_num(r.blocked_gflops)
            << ", \"speedup\": " << bench::json_num(r.speedup)
            << ", \"pool_threads\": " << r.pool_threads
            << ", \"pooled_gflops\": " << bench::json_num(r.pooled_gflops)
            << ", \"pooled_speedup\": " << bench::json_num(r.pooled_speedup)
            << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
            << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"pipeline\": {\"buildings\": " << pipe.buildings
        << ", \"samples_per_floor\": " << pipe.samples_per_floor
        << ", \"serial_buildings_per_sec\": " << bench::json_num(pipe.serial_buildings_per_sec)
        << ", \"pooled_threads\": " << pipe.pooled_threads
        << ", \"pooled_buildings_per_sec\": " << bench::json_num(pipe.pooled_buildings_per_sec)
        << ", \"speedup\": " << bench::json_num(pipe.speedup)
        << ", \"bit_identical\": " << (pipe.bit_identical ? "true" : "false") << "}\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_kernels.json");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
    const int reps = static_cast<int>(args.get_int("reps", quick ? 3 : 5));

    std::vector<shape> shapes{{64, 64, 64}, {256, 256, 256}, {203, 97, 151}};
    if (!quick) {
        shapes.push_back({128, 128, 128});
        shapes.push_back({384, 384, 384});
        shapes.push_back({512, 64, 32});   // tape dense-layer shape
        shapes.push_back({1024, 32, 64});  // propagation shape
    }

    util::rng gen(seed);
    util::thread_pool pool(std::max<std::size_t>(2, util::resolve_num_threads(0)));

    std::vector<kernel_record> records;
    bool all_identical = true;
    for (const shape& s : shapes)
        for (const op_spec& op : kOps) {
            const kernel_record rec = bench_one(op, s, pool, reps, gen);
            all_identical = all_identical && rec.bit_identical;
            records.push_back(rec);
            std::cerr << rec.op << " " << s.m << "x" << s.k << "x" << s.n << " done\n";
        }

    std::cerr << "pipeline fleet...\n";
    const pipeline_record pipe = quick ? bench_pipeline(3, 20, seed)
                                       : bench_pipeline(8, 40, seed);
    all_identical = all_identical && pipe.bit_identical;

    util::table_printer table("Kernel throughput — scalar vs cache-blocked (best of " +
                              std::to_string(reps) + ")");
    table.header({"op", "shape", "scalar GF/s", "blocked GF/s", "speedup", "pooled GF/s",
                  "bit-identical"});
    for (const kernel_record& r : records)
        table.row({r.op,
                   std::to_string(r.s.m) + "x" + std::to_string(r.s.k) + "x" +
                       std::to_string(r.s.n),
                   util::table_printer::num(r.scalar_gflops, 2),
                   util::table_printer::num(r.blocked_gflops, 2),
                   util::table_printer::num(r.speedup, 2),
                   util::table_printer::num(r.pooled_gflops, 2),
                   r.bit_identical ? "yes" : "NO"});
    table.print(std::cout);
    std::cout << "\nPipeline fleet (" << pipe.buildings << " buildings): serial "
              << util::table_printer::num(pipe.serial_buildings_per_sec, 2) << " b/s, "
              << pipe.pooled_threads << " threads "
              << util::table_printer::num(pipe.pooled_buildings_per_sec, 2) << " b/s ("
              << util::table_printer::num(pipe.speedup, 2) << "x, bit-identical: "
              << (pipe.bit_identical ? "yes" : "NO") << ")\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_kernels: cannot open " << out_path << " for writing\n";
            return EXIT_FAILURE;
        }
        write_json(f, quick, records, pipe);
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!all_identical) {
        std::cerr << "bench_kernels: blocked kernels diverged bitwise from the scalar "
                     "reference\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_kernels: " << e.what() << '\n';
    return EXIT_FAILURE;
}
