/// \file bench_fig8_ablation.cpp
/// Reproduces paper Figure 8 — two ablations of FIS-ONE on both corpora:
///  (a,b) RF-GNN *without* the attention mechanism (uniform neighbour
///        sampling + mean aggregation) vs full FIS-ONE;
///  (c,d) k-means replacing the hierarchical clusterer vs full FIS-ONE.
/// The paper reports attention as the largest single contributor (up to
/// 80% ARI improvement) and hierarchical clustering as a smaller but
/// consistent gain (~4-6%). The attention result reproduces; the
/// clustering one diverges on synthetic data (see the footer note and
/// EXPERIMENTS.md).

#include <cstdlib>
#include <exception>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace fisone;

void print_block(const char* title, const bench::aggregate& full,
                 const bench::aggregate& ablated, const char* ablated_name) {
    util::table_printer table(title);
    table.header({"variant", "ARI", "NMI", "Edit Distance"});
    table.row({"FIS-ONE", util::table_printer::mean_std(full.ari.mean(), full.ari.stddev()),
               util::table_printer::mean_std(full.nmi.mean(), full.nmi.stddev()),
               util::table_printer::mean_std(full.edit.mean(), full.edit.stddev())});
    table.row({ablated_name,
               util::table_printer::mean_std(ablated.ari.mean(), ablated.ari.stddev()),
               util::table_printer::mean_std(ablated.nmi.mean(), ablated.nmi.stddev()),
               util::table_printer::mean_std(ablated.edit.mean(), ablated.edit.stddev())});
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto corpora = bench::make_corpora(args);

    const auto baseline_cfg = [](core::fis_one_config&, std::uint64_t) {};
    const auto no_attention = [](core::fis_one_config& cfg, std::uint64_t) {
        cfg.gnn.use_attention = false;
    };
    const auto kmeans = [](core::fis_one_config& cfg, std::uint64_t) {
        cfg.clustering = core::clustering_algorithm::kmeans;
    };

    std::cout << "Figure 8 — ablation study of FIS-ONE, mean(std)\n\n";
    for (const data::corpus* corpus : {&corpora.microsoft, &corpora.ours}) {
        const auto full = bench::run_fis_one_over(*corpus, baseline_cfg);
        const auto no_att = bench::run_fis_one_over(*corpus, no_attention);
        const auto km = bench::run_fis_one_over(*corpus, kmeans);

        print_block(("(a/b) " + corpus->name + ": with vs without attention").c_str(), full,
                    no_att, "FIS-ONE (without attention)");
        print_block(("(c/d) " + corpus->name + ": hierarchical vs k-means").c_str(), full, km,
                    "FIS-ONE (K-means)");
    }
    std::cout
        << "Paper shape check: removing attention costs the most (paper: up to 80%\n"
           "relative ARI) — reproduced on both corpora.\n"
           "Known divergence (see EXPERIMENTS.md): on these synthetic corpora k-means\n"
           "matches or beats UPGMA. The paper's ~4% hierarchical advantage relied on\n"
           "multi-modal per-floor signal distributions in its real buildings; the\n"
           "simulator's floors form compact unimodal clusters in embedding space,\n"
           "which is k-means' best case.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig8_ablation: " << e.what() << '\n';
    return EXIT_FAILURE;
}
