/// \file bench_fig10_11_embedding_dim.cpp
/// Reproduces paper Figures 10 and 11: sensitivity of every scheme to the
/// embedding dimension (8, 16, 32, 64) on both corpora — Fig. 10 reports
/// ARI and NMI, Fig. 11 the edit distance. METIS has no embedding
/// dimension; the paper plots it flat for consistency and so do we.
/// SDCN/DAEGC are expensive at four dimensions; pass --skip-deep for a
/// quick FIS-ONE/MDS/METIS-only run.

#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/daegc.hpp"
#include "baselines/mds.hpp"
#include "baselines/metis_partitioner.hpp"
#include "baselines/sdcn.hpp"
#include "bench_common.hpp"

namespace {

using namespace fisone;

struct series {
    std::map<std::size_t, bench::aggregate> by_dim;
};

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool skip_deep = args.has("skip-deep");
    const std::vector<std::size_t> dims{8, 16, 32, 64};

    // Smaller default corpus: this sweep multiplies work by |dims| × schemes.
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 4));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 120));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::cerr << "Synthesising corpora (" << buildings << " buildings + 3 malls)...\n";
    const data::corpus microsoft = sim::make_microsoft_corpus(buildings, samples, seed);
    const data::corpus ours = sim::make_malls_corpus(samples, seed + 1);

    for (const data::corpus* corpus : {&microsoft, &ours}) {
        std::map<std::string, series> all;
        for (const std::size_t dim : dims) {
            // FIS-ONE at this dimension.
            all["FIS-ONE"].by_dim[dim] = bench::run_fis_one_over(
                *corpus, [dim](core::fis_one_config& cfg, std::uint64_t) {
                    cfg.gnn.embedding_dim = dim;
                });

            // Baselines: cluster, index with FIS-ONE's machinery, score.
            const auto eval_baseline =
                [&](const std::string& name,
                    const std::function<std::vector<int>(const data::building&, std::uint64_t)>&
                        fn) {
                    bench::aggregate agg;
                    for (std::size_t bi = 0; bi < corpus->buildings.size(); ++bi) {
                        const std::uint64_t bseed = 7919 * (bi + 1);
                        const auto& b = corpus->buildings[bi];
                        const auto s = core::evaluate_with_indexing(
                            b, fn(b, bseed), indexing::similarity_kind::adapted_jaccard,
                            indexing::tsp_solver::exact, bseed);
                        agg.add(s.ari, s.nmi, s.edit_distance);
                    }
                    all[name].by_dim[dim] = agg;
                };

            eval_baseline("MDS", [dim](const data::building& b, std::uint64_t) {
                baselines::mds_config c;
                c.embedding_dim = dim;
                return baselines::mds_cluster(b, c);
            });
            // METIS has no embedding dimension (constant series, as in the paper).
            eval_baseline("METIS", [](const data::building& b, std::uint64_t s) {
                baselines::metis_config c;
                c.seed = s;
                return baselines::metis_cluster(b, c);
            });
            if (!skip_deep) {
                eval_baseline("SDCN", [dim](const data::building& b, std::uint64_t s) {
                    baselines::sdcn_config c;
                    c.embedding_dim = dim;
                    c.seed = s;
                    return baselines::sdcn_cluster(b, c);
                });
                eval_baseline("DAEGC", [dim](const data::building& b, std::uint64_t s) {
                    baselines::daegc_config c;
                    c.embedding_dim = dim;
                    c.seed = s;
                    return baselines::daegc_cluster(b, c);
                });
            }
            std::cerr << corpus->name << ": dim " << dim << " done\n";
        }

        for (const char* metric : {"ARI", "NMI", "Edit Distance"}) {
            std::cout << "\nFigures 10/11 — " << metric << " vs embedding dimension ("
                      << corpus->name << ")\n\n";
            util::table_printer table;
            table.header({"scheme", "dim 8", "dim 16", "dim 32", "dim 64"});
            for (auto& [name, s] : all) {
                std::vector<std::string> row{name};
                for (const std::size_t dim : dims) {
                    bench::aggregate& a = s.by_dim[dim];
                    const util::running_stats& st = metric == std::string("ARI") ? a.ari
                                                   : metric == std::string("NMI")
                                                       ? a.nmi
                                                       : a.edit;
                    row.push_back(util::table_printer::mean_std(st.mean(), st.stddev()));
                }
                table.row(std::move(row));
            }
            table.print(std::cout);
        }
    }
    std::cout << "\nPaper shape check: FIS-ONE is flat (robust) across 8-64 and above\n"
                 "every baseline at every dimension; METIS is constant by construction.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig10_11_embedding_dim: " << e.what() << '\n';
    return EXIT_FAILURE;
}
