/// \file bench_fig1b_spillover.cpp
/// Reproduces paper Figure 1(b): the histogram of MACs by the number of
/// floors on which they are detected, in an 8-floor shopping mall carrying
/// ~168 MAC addresses. The paper's shape: most MACs are confined to few
/// adjacent floors (strong spillover locality), with a small long tail of
/// atrium-visible MACs detected on many floors.

#include <cstdlib>
#include <exception>
#include <iostream>

#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    const fisone::util::cli_args args(argc, argv);

    fisone::sim::building_spec spec;
    spec.name = "fig1b-mall";
    spec.num_floors = static_cast<std::size_t>(args.get_int("floors", 8));
    spec.aps_per_floor = static_cast<std::size_t>(args.get_int("aps-per-floor", 21));
    spec.samples_per_floor = static_cast<std::size_t>(args.get_int("samples-per-floor", 200));
    spec.floor_width_m = 120.0;
    spec.floor_depth_m = 80.0;
    spec.atrium = true;
    spec.atrium_radius_m = 15.0;
    // This specific mall is shop-partitioned (unlike the open-space "Ours"
    // corpus): higher in-floor path loss and slab attenuation, plus a wide
    // per-AP power spread, reproduce Fig. 1(b)'s concentration of MACs on
    // 1-3 floors with the atrium long tail. Note one semantic difference
    // with the paper: our histogram is the union over *all* scans, so the
    // symmetric ±1-floor bridge makes the 3-floor bin slightly heavier.
    spec.model.path_loss_exponent = 3.7;
    spec.model.floor_attenuation_db = 28.0;
    spec.ap_power_sigma_db = 12.0;
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 88));

    const auto sim = fisone::sim::generate_building(spec);
    const auto hist = fisone::sim::spillover_histogram(sim.building);

    std::size_t detected = 0;
    for (const std::size_t c : hist) detected += c;
    std::cout << "Figure 1(b) — signal spillover in an " << spec.num_floors
              << "-floor mall (" << detected << " MACs detected of " << sim.building.num_macs
              << " deployed)\n\n";

    fisone::util::table_printer table;
    table.header({"floors detected", "number of MACs", "histogram"});
    for (std::size_t f = 0; f < hist.size(); ++f) {
        table.row({std::to_string(f + 1), std::to_string(hist[f]),
                   std::string(hist[f] / 2 + (hist[f] > 0 ? 1 : 0), '#')});
    }
    table.print(std::cout);

    std::cout << "\nPaper shape check: counts should peak at 1-3 floors and decay,\n"
                 "with a non-empty tail (atrium MACs) reaching many floors.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig1b_spillover: " << e.what() << '\n';
    return EXIT_FAILURE;
}
