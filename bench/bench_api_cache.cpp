/// \file bench_api_cache.cpp
/// API-layer result-cache throughput: submit a corpus through the
/// wire-framed API server (in-process loopback transport — the full
/// encode/decode path) twice, cold then warm, and measure the warm-cache
/// resubmission speedup. The harness asserts the PR's two contracts and
/// exits non-zero when either fails:
///  - the cold run, the warm (cache-served) run, and a cache-off run
///    produce byte-identical input-order NDJSON re-exports;
///  - warm resubmission is ≥ 10× faster than the cold run.
///
/// Run:  ./bench_api_cache [--quick] [--json] [--out BENCH_api.json]
///                         [--buildings N] [--samples-per-floor M] [--seed S]
///
///  --quick   CI-sized corpus (a few seconds total)
///  --json    write the JSON report (schema `fisone-bench-api/v1`) to --out
///
/// The JSON schema is documented in README.md § Performance.

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "api/client.hpp"
#include "api/server.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

std::vector<data::building> make_fleet(std::size_t count, std::size_t samples_per_floor,
                                       std::uint64_t seed) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "api-fleet-" + std::to_string(i);
        spec.num_floors = 3 + i % 4;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

api::server_config make_server_config(bool enable_cache, std::uint64_t seed) {
    api::server_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 16;
    cfg.service.pipeline.gnn.epochs = 3;
    cfg.service.pipeline.gnn.walks.walks_per_node = 3;
    cfg.service.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.service.seed = seed;
    cfg.enable_cache = enable_cache;
    return cfg;
}

/// Submit the whole fleet at pinned indices, flush, return (ndjson, wall s).
std::pair<std::string, double> run_pass(api::server& srv,
                                        const std::vector<data::building>& fleet) {
    api::client cli(srv);
    const clock_type::time_point start = clock_type::now();
    for (std::size_t i = 0; i < fleet.size(); ++i) static_cast<void>(cli.identify(fleet[i], i));
    static_cast<void>(cli.flush());
    const double wall = std::chrono::duration<double>(clock_type::now() - start).count();
    std::ostringstream out;
    service::export_input_order(out, cli.reports());
    return {out.str(), wall};
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_api.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 4 : 32));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 40));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor)...\n";
    const std::vector<data::building> fleet = make_fleet(buildings, samples, seed);

    api::server cached_srv(make_server_config(true, seed));
    std::cerr << "cold pass (cache empty)...\n";
    const auto [cold_ndjson, cold_s] = run_pass(cached_srv, fleet);
    std::cerr << "warm pass (cache full)...\n";
    const auto [warm_ndjson, warm_s] = run_pass(cached_srv, fleet);
    const api::result_cache_stats cache = cached_srv.cache_stats();

    std::cerr << "cache-off pass...\n";
    api::server uncached_srv(make_server_config(false, seed));
    const auto [uncached_ndjson, uncached_s] = run_pass(uncached_srv, fleet);

    const bool identical = cold_ndjson == warm_ndjson && cold_ndjson == uncached_ndjson;
    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;

    util::table_printer table("API result cache — " + std::to_string(buildings) +
                              " buildings through the loopback wire path");
    table.header({"pass", "wall s", "buildings/s", "speedup"});
    const auto rate = [&](double s) {
        return s > 0.0 ? util::table_printer::num(static_cast<double>(buildings) / s, 2) : "-";
    };
    table.row({"cold (cache miss)", util::table_printer::num(cold_s, 3), rate(cold_s), "1.00"});
    table.row({"warm (cache hit)", util::table_printer::num(warm_s, 3), rate(warm_s),
               util::table_printer::num(speedup, 1)});
    table.row({"cache off", util::table_printer::num(uncached_s, 3), rate(uncached_s),
               util::table_printer::num(uncached_s > 0.0 ? cold_s / uncached_s : 0.0, 2)});
    table.print(std::cout);
    std::cout << "\nCache: " << cache.hits << " hits, " << cache.misses << " misses, "
              << cache.entries << " entries.  NDJSON byte-identical across passes: "
              << (identical ? "yes" : "NO") << "\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_api_cache: cannot open " << out_path << " for writing\n";
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-api/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"hardware_threads\": " << util::resolve_num_threads(0) << ",\n";
        f << "  \"cold_seconds\": " << bench::json_num(cold_s) << ",\n";
        f << "  \"warm_seconds\": " << bench::json_num(warm_s) << ",\n";
        f << "  \"cache_off_seconds\": " << bench::json_num(uncached_s) << ",\n";
        f << "  \"warm_speedup\": " << bench::json_num(speedup) << ",\n";
        f << "  \"cache_hits\": " << cache.hits << ",\n";
        f << "  \"cache_misses\": " << cache.misses << ",\n";
        f << "  \"ndjson_identical\": " << (identical ? "true" : "false") << "\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!identical) {
        std::cerr << "bench_api_cache: cache-served responses diverged from cache-off runs\n";
        return EXIT_FAILURE;
    }
    if (speedup < 10.0) {
        std::cerr << "bench_api_cache: warm-cache resubmission only " << speedup
                  << "x faster than cold (contract: >= 10x)\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_api_cache: " << e.what() << '\n';
    return EXIT_FAILURE;
}
