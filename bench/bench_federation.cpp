/// \file bench_federation.cpp
/// Federation-layer throughput smoke: synthesise a fleet, shard it into
/// several corpus stores, then serve every store through a
/// `federation::federated_server` — once with 1 backend, once with N — and
/// compare buildings/sec. After every run the input-order NDJSON re-export
/// is checked byte-for-byte against a single `floor_service` run over the
/// concatenated corpus (the federation determinism contract); the harness
/// exits non-zero on divergence, so CI smoke keeps the contract honest.
///
/// Run:  ./bench_federation [--quick] [--json] [--out BENCH_federation.json]
///                          [--buildings N] [--samples-per-floor M]
///                          [--stores S] [--backends B] [--shard-size K]
///                          [--threads T] [--seed S] [--dir PATH]
///
///  --quick   CI-sized corpus (a few seconds total)
///  --json    write the JSON report (schema `fisone-bench-federation/v1`)
///
/// Speedup from backends needs a multi-core host (the dev container is
/// single-core); the determinism check is load-bearing everywhere.

#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "api/client.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "service/profiles.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

data::corpus make_fleet(std::size_t count, std::size_t samples_per_floor, std::uint64_t seed) {
    data::corpus fleet;
    fleet.name = "fed-fleet";
    fleet.buildings.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "fed-fleet-";
        spec.name += std::to_string(i);
        spec.num_floors = 3 + i % 5;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.buildings.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

service::service_config make_service_config(std::uint64_t seed, std::size_t threads) {
    return service::quick_profile(seed, threads);
}

/// Split \p c into \p parts contiguous sub-corpora stores under \p root.
std::vector<std::string> split_into_stores(const data::corpus& c, std::size_t parts,
                                           const std::string& root, std::size_t shard_size) {
    if (parts == 0 || parts > c.buildings.size())
        throw std::invalid_argument("split_into_stores: need 1 <= stores <= buildings, got " +
                                    std::to_string(parts) + " stores for " +
                                    std::to_string(c.buildings.size()) + " buildings");
    std::vector<std::string> dirs;
    const std::size_t n = c.buildings.size();
    const std::size_t base = n / parts;
    std::size_t first = 0;
    for (std::size_t k = 0; k < parts; ++k) {
        const std::size_t count = base + (k < n % parts ? 1 : 0);
        data::corpus part;
        part.name = c.name + "-part-" + std::to_string(k);
        part.buildings.assign(c.buildings.begin() + static_cast<std::ptrdiff_t>(first),
                              c.buildings.begin() + static_cast<std::ptrdiff_t>(first + count));
        const std::string dir =
            (std::filesystem::path(root) / ("store-" + std::to_string(k))).string();
        static_cast<void>(data::write_corpus_store(part, dir, shard_size));
        dirs.push_back(dir);
        first += count;
    }
    return dirs;
}

/// Serve every mounted shard through a federated fleet over the framed wire
/// path; returns (wall seconds, input-order NDJSON).
std::pair<double, std::string> serve_federated(const std::vector<std::string>& store_dirs,
                                               std::size_t backends, std::size_t threads,
                                               std::uint64_t seed) {
    federation::federation_config cfg;
    cfg.service = make_service_config(seed, threads);
    cfg.num_backends = backends;
    cfg.policy = federation::routing_policy::least_queue_depth;
    cfg.store_dirs = store_dirs;

    const clock_type::time_point start = clock_type::now();
    federation::federated_server srv(cfg);
    std::stringstream wire_in, wire_out;
    api::client cli(static_cast<std::ostream&>(wire_in));
    for (const federation::mounted_shard& ms : srv.registry().shards())
        static_cast<void>(cli.identify_shard(ms.ref));
    static_cast<void>(cli.flush());
    srv.serve(wire_in, wire_out);
    static_cast<void>(cli.ingest(wire_out));
    const double wall = std::chrono::duration<double>(clock_type::now() - start).count();

    if (!cli.errors().empty()) {
        std::cerr << "bench_federation: protocol error: " << cli.errors().front().message
                  << '\n';
        std::exit(EXIT_FAILURE);
    }
    std::ostringstream ndjson;
    service::export_input_order(ndjson, cli.reports());
    return {wall, ndjson.str()};
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_federation.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 6 : 16));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 60));
    const auto stores = static_cast<std::size_t>(args.get_int("stores", 3));
    const auto backends = static_cast<std::size_t>(args.get_int("backends", 2));
    const auto shard_size = static_cast<std::size_t>(args.get_int("shard-size", 2));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", quick ? 2 : 4));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const std::string dir = args.get(
        "dir", (std::filesystem::temp_directory_path() / "fisone_bench_federation").string());

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor), sharding into " << stores << " stores under " << dir
              << "...\n";
    const data::corpus fleet = make_fleet(buildings, samples, seed);
    std::filesystem::remove_all(dir);
    const std::vector<std::string> store_dirs =
        split_into_stores(fleet, stores, dir, shard_size);

    // The single-service baseline over the concatenated corpus — both the
    // throughput yardstick and the byte-identity reference.
    const std::string whole_dir = (std::filesystem::path(dir) / "whole").string();
    static_cast<void>(data::write_corpus_store(fleet, whole_dir, shard_size));
    const data::corpus_store whole = data::corpus_store::open(whole_dir);
    std::string baseline_ndjson;
    double baseline_s = 0.0;
    {
        const clock_type::time_point start = clock_type::now();
        service::floor_service svc(make_service_config(seed, threads));
        std::vector<service::floor_service::job> jobs;
        for (std::size_t s = 0; s < whole.num_shards(); ++s)
            jobs.push_back(svc.submit(service::make_shard_ref(whole, s)));
        svc.wait_all();
        baseline_s = std::chrono::duration<double>(clock_type::now() - start).count();
        std::vector<runtime::building_report> reports;
        for (const auto& job : jobs)
            for (const auto& report : job.reports()) reports.push_back(report);
        std::ostringstream out;
        service::export_input_order(out, std::move(reports));
        baseline_ndjson = out.str();
    }

    util::table_printer table("Federation throughput — " + std::to_string(buildings) +
                              " buildings, " + std::to_string(stores) + " stores, " +
                              std::to_string(threads) + " workers/backend");
    table.header({"fleet", "wall s", "buildings/s", "speedup", "identical"});
    const auto rate = [&](double s) {
        return s > 0.0 ? static_cast<double>(buildings) / s : 0.0;
    };
    table.row({"single service", util::table_printer::num(baseline_s, 2),
               util::table_printer::num(rate(baseline_s), 2), "1.00", "yes"});

    bool all_identical = true;
    double one_s = 0.0, many_s = 0.0;
    std::vector<std::size_t> fleet_sizes{1};
    if (backends > 1) fleet_sizes.push_back(backends);  // 1 backend: one run is both rows
    for (const std::size_t fleet_size : fleet_sizes) {
        const auto [wall, ndjson] = serve_federated(store_dirs, fleet_size, threads, seed);
        const bool identical = ndjson == baseline_ndjson;
        all_identical = all_identical && identical;
        (fleet_size == 1 ? one_s : many_s) = wall;
        table.row({std::to_string(fleet_size) + " backend" + (fleet_size == 1 ? "" : "s"),
                   util::table_printer::num(wall, 2), util::table_printer::num(rate(wall), 2),
                   baseline_s > 0.0 && wall > 0.0
                       ? util::table_printer::num(baseline_s / wall, 2)
                       : "-",
                   identical ? "yes" : "NO"});
    }
    if (backends == 1) many_s = one_s;
    table.print(std::cout);
    std::cout << "\nFederated NDJSON byte-identical to the single-service run: "
              << (all_identical ? "yes" : "NO") << "\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_federation: cannot open " << out_path << " for writing\n";
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-federation/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"stores\": " << stores << ",\n";
        f << "  \"backends\": " << backends << ",\n";
        f << "  \"threads_per_backend\": " << threads << ",\n";
        f << "  \"hardware_threads\": " << util::resolve_num_threads(0) << ",\n";
        f << "  \"single_service_seconds\": " << bench::json_num(baseline_s) << ",\n";
        f << "  \"one_backend_seconds\": " << bench::json_num(one_s) << ",\n";
        f << "  \"n_backend_seconds\": " << bench::json_num(many_s) << ",\n";
        f << "  \"n_backend_speedup\": "
          << bench::json_num(many_s > 0.0 ? one_s / many_s : 0.0) << ",\n";
        f << "  \"ndjson_identical\": " << (all_identical ? "true" : "false") << "\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!all_identical) {
        std::cerr << "bench_federation: federated NDJSON diverged from the single-service "
                     "run\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_federation: " << e.what() << '\n';
    return EXIT_FAILURE;
}
