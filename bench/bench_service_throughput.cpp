/// \file bench_service_throughput.cpp
/// Service-layer throughput: shard a simulated fleet to disk, then serve
/// the store through `service::floor_service` at 1/2/4/8 workers and
/// report buildings/sec, speedup over one worker, and latency percentiles
/// from `service_stats`. After every run the input-order NDJSON export is
/// compared byte-for-byte against the first run — the serving layer's
/// determinism contract (results independent of worker count, shard size
/// and completion order).
///
/// Run:  ./bench_service_throughput [--quick] [--json] [--out BENCH_service.json]
///                                  [--buildings N] [--samples-per-floor M]
///                                  [--shard-size K] [--seed S]
///                                  [--max-threads T] [--dir PATH]
///
///  --quick   CI-sized corpus (a few seconds total)
///  --json    write the JSON report (schema `fisone-bench-service/v1`, one
///            entry per worker count) to --out
///
/// The JSON schema is documented in README.md § Performance.

#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/corpus_store.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;

data::corpus make_fleet(std::size_t count, std::size_t samples_per_floor, std::uint64_t seed) {
    data::corpus fleet;
    fleet.name = "bench-fleet";
    fleet.buildings.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "fleet-";
        spec.name += std::to_string(i);
        spec.num_floors = 3 + i % 5;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.buildings.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

/// Serve the whole store once and return (wall seconds, input-order ndjson,
/// stats snapshot). Exits the process on building failures.
struct run_outcome {
    double wall_seconds = 0.0;
    std::string ndjson;
    service::service_stats stats;
};

run_outcome serve_store(const data::corpus_store& store, std::size_t threads,
                        std::uint64_t seed) {
    service::service_config cfg;
    cfg.pipeline.gnn.embedding_dim = 16;
    cfg.pipeline.gnn.epochs = 4;
    cfg.pipeline.gnn.walks.walks_per_node = 3;
    cfg.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.seed = seed;
    cfg.num_threads = threads;

    const auto start = std::chrono::steady_clock::now();
    service::floor_service svc(cfg);
    std::vector<service::floor_service::job> jobs;
    jobs.reserve(store.num_shards());
    for (std::size_t s = 0; s < store.num_shards(); ++s)
        jobs.push_back(svc.submit(service::make_shard_ref(store, s)));
    svc.wait_all();

    run_outcome out;
    out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                           .count();
    out.stats = svc.stats();

    std::vector<runtime::building_report> reports;
    for (const auto& job : jobs)
        for (const auto& report : job.reports()) {
            if (!report.ok) {
                std::cerr << "bench_service_throughput: building " << report.index
                          << " failed: " << report.error << '\n';
                std::exit(EXIT_FAILURE);
            }
            reports.push_back(report);
        }
    std::ostringstream ndjson;
    service::export_input_order(ndjson, std::move(reports));
    out.ndjson = ndjson.str();
    return out;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_service.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 4 : 16));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 60));
    const auto shard_size = static_cast<std::size_t>(args.get_int("shard-size", quick ? 2 : 4));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto max_threads =
        static_cast<std::size_t>(args.get_int("max-threads", quick ? 2 : 8));
    const std::string dir = args.get(
        "dir", (std::filesystem::temp_directory_path() / "fisone_bench_service").string());

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor), sharding to " << dir << " (" << shard_size
              << "/shard), hardware_concurrency=" << util::resolve_num_threads(0) << "...\n";
    const data::corpus fleet = make_fleet(buildings, samples, seed);
    std::filesystem::remove_all(dir);
    static_cast<void>(data::write_corpus_store(fleet, dir, shard_size));
    const data::corpus_store store = data::corpus_store::open(dir);

    util::table_printer table("Service throughput — " + std::to_string(buildings) +
                              " buildings served from " +
                              std::to_string(store.num_shards()) + " shards");
    table.header({"workers", "wall s", "buildings/s", "speedup", "p50 s", "p99 s", "identical"});

    /// One JSON entry per worker count.
    struct run_row {
        std::size_t workers = 0;
        double wall_seconds = 0.0;
        double rate = 0.0;
        double speedup = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
    };
    std::vector<run_row> rows;

    std::string baseline_ndjson;
    double baseline_rate = 0.0;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        const run_outcome out = serve_store(store, threads, seed);
        const double rate =
            out.wall_seconds > 0.0 ? static_cast<double>(buildings) / out.wall_seconds : 0.0;
        const bool matches = threads == 1 ? true : out.ndjson == baseline_ndjson;
        if (threads == 1) {
            baseline_ndjson = out.ndjson;
            baseline_rate = rate;
        }
        rows.push_back(run_row{threads, out.wall_seconds, rate,
                               baseline_rate > 0.0 ? rate / baseline_rate : 0.0,
                               out.stats.latency_p50, out.stats.latency_p99});
        table.row({std::to_string(threads), util::table_printer::num(out.wall_seconds, 2),
                   util::table_printer::num(rate, 2),
                   baseline_rate > 0.0 ? util::table_printer::num(rate / baseline_rate, 2) : "-",
                   util::table_printer::num(out.stats.latency_p50, 3),
                   util::table_printer::num(out.stats.latency_p99, 3),
                   matches ? "yes" : "NO"});
        if (!matches) {
            table.print(std::cout);
            std::cerr << "bench_service_throughput: served NDJSON diverged from 1-worker run\n";
            return EXIT_FAILURE;
        }
    }
    table.print(std::cout);
    std::cout << "\nNDJSON per building, input-order re-export: "
              << baseline_ndjson.size() / buildings << " bytes mean "
              << "(identical at every worker count by construction)\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_service_throughput: cannot open " << out_path
                      << " for writing\n";
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-service/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"shard_size\": " << shard_size << ",\n";
        f << "  \"num_shards\": " << store.num_shards() << ",\n";
        f << "  \"hardware_threads\": " << util::resolve_num_threads(0) << ",\n";
        f << "  \"ndjson_identical\": true,\n";
        f << "  \"runs\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const run_row& r = rows[i];
            f << "    {\"workers\": " << r.workers
              << ", \"wall_seconds\": " << bench::json_num(r.wall_seconds)
              << ", \"buildings_per_second\": " << bench::json_num(r.rate)
              << ", \"speedup\": " << bench::json_num(r.speedup)
              << ", \"latency_p50_seconds\": " << bench::json_num(r.p50)
              << ", \"latency_p99_seconds\": " << bench::json_num(r.p99) << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        f << "  ]\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_service_throughput: " << e.what() << '\n';
    return EXIT_FAILURE;
}
