/// \file bench_capacity.cpp
/// Closed-loop capacity explorer for the network front door. Where
/// `bench_net_loadtest` proves the TCP path is byte-identical and the
/// shed contract holds, this bench asks the quantitative question: **how
/// much offered load can the front door carry before it sheds, and what
/// does latency look like on the way there?**
///
/// The loop is closed through the server's own live telemetry, not
/// client-side bookkeeping: a control connection holds a standing
/// `subscribe_stats` stream, and every rung's goodput, shed rate, and
/// latency percentiles are read from the `stats_update` frames the server
/// pushes (one per telemetry window — per-window admission/shed deltas
/// and the window's latency histogram summary). The load itself uses the
/// resident-corpus request mode: `identify_resident` frames by building
/// name with `fresh = true`, so every request routes through a mounted
/// store and runs the real pipeline — the result cache cannot flatten the
/// frontier.
///
/// Rung protocol: offer a fixed request rate for `--rung-seconds`,
/// collect the telemetry windows that cover the rung, record
/// {offered rate, goodput, shed rate, p50, p99}, multiply the rate by
/// `--rate-multiplier`, repeat. The exploration stops when the shed rate
/// crosses `--shed-threshold` (after at least 3 rungs, so the frontier
/// has a below-knee, near-knee shape) or at `--max-rungs`. The recorded
/// frontier lands in the `"capacity"` section of `BENCH_net.json`
/// (spliced into `bench_net_loadtest`'s report when one exists).
///
/// Run:  ./bench_capacity [--quick] [--json] [--out BENCH_net.json]
///                        [--connect HOST:PORT --store DIR]
///                        [--buildings N] [--samples-per-floor M]
///                        [--connections C] [--backends B] [--threads T]
///                        [--max-inflight N] [--window-ms W] [--seed S]
///                        [--start-rate R] [--rate-multiplier X]
///                        [--rung-seconds S] [--shed-threshold F]
///                        [--max-rungs N]
///
///  --quick     CI-sized: small corpus, short rungs, 200 ms windows.
///  --connect   drive an external `serve_tcp` (started with --stores and
///              a telemetry window); --store names the same store
///              directory so the bench can learn the building names.
///              Without --connect the bench synthesises a corpus, writes
///              it to a temporary store, and runs a federated fleet +
///              front door in-process (--max-inflight bounds admission,
///              --window-ms sets the telemetry window).
///
/// Exits non-zero when the control stream dies, when fewer than 3 rungs
/// complete, or when the shed threshold is never crossed.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "api/codec.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "net/socket.hpp"
#include "net/tcp_server.hpp"
#include "service/profiles.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

// --- the telemetry control stream -------------------------------------------

/// A standing `subscribe_stats` stream on its own connection: subscribes
/// on construction, decodes pushed `stats_update` frames on a reader
/// thread, and hands them to the main thread through a queue.
class stats_stream {
public:
    stats_stream(const std::string& host, std::uint16_t port)
        : conn_(host, port) {
        api::subscribe_stats_request sub;
        sub.correlation_id = 1;
        sub.interval_ms = 0;  // every telemetry window the server closes
        sub.subscribe = true;
        conn_.send(api::encode(api::request(sub)));
        reader_ = std::thread([this] { read_loop(); });
    }

    ~stats_stream() {
        conn_.shutdown_write();
        if (reader_.joinable()) reader_.join();
    }

    /// The next pushed window, or nullopt when \p deadline passes (or the
    /// stream ended) first.
    std::optional<api::stats_update_response> next(clock_type::time_point deadline) {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait_until(lock, deadline, [this] { return !q_.empty() || done_; });
        if (q_.empty()) return std::nullopt;
        api::stats_update_response u = q_.front();
        q_.pop_front();
        return u;
    }

    /// Drop everything queued (called between rungs so stale windows from
    /// the settling gap never leak into the next rung's accounting).
    void drain_queue() {
        const std::lock_guard<std::mutex> lock(m_);
        q_.clear();
    }

    [[nodiscard]] bool acked() const {
        const std::lock_guard<std::mutex> lock(m_);
        return acked_;
    }

private:
    void read_loop() {
        while (std::optional<std::string> frame = conn_.read_frame()) {
            const api::decode_result<api::response> r = api::decode_response(*frame);
            if (!r.ok()) continue;
            if (const auto* u = std::get_if<api::stats_update_response>(&*r.value)) {
                const std::lock_guard<std::mutex> lock(m_);
                q_.push_back(*u);
                cv_.notify_all();
            } else if (std::holds_alternative<api::watch_ack_response>(*r.value)) {
                const std::lock_guard<std::mutex> lock(m_);
                acked_ = true;
                cv_.notify_all();
            }
        }
        const std::lock_guard<std::mutex> lock(m_);
        done_ = true;
        cv_.notify_all();
    }

    net::frame_conn conn_;
    std::thread reader_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<api::stats_update_response> q_;
    bool acked_ = false;
    bool done_ = false;
};

// --- the load generator ------------------------------------------------------

struct load_result {
    std::size_t sent = 0;
    std::size_t results = 0;  ///< building_result answers (client-side goodput)
    std::size_t shed = 0;     ///< typed overloaded/draining errors
    std::size_t other = 0;    ///< anything else (should stay 0)
};

/// Offer `identify_resident` frames at \p rate requests/sec for
/// \p seconds across \p connections fresh connections. Open-loop pacing:
/// each sender walks an absolute schedule with `sleep_until`, so a slow
/// server does not slow the offered rate — it sheds instead (which is the
/// point).
load_result run_load(const std::string& host, std::uint16_t port,
                     const std::vector<std::string>& names, double rate, double seconds,
                     std::size_t connections) {
    struct conn_state {
        load_result r;
        std::string failure;
    };
    std::vector<conn_state> states(connections);
    const auto per_conn_interval =
        std::chrono::duration<double>(static_cast<double>(connections) / rate);
    const auto sends_per_conn = static_cast<std::size_t>(
        std::max(1.0, seconds * rate / static_cast<double>(connections)));

    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            conn_state& st = states[c];
            try {
                net::frame_conn conn(host, port);
                std::thread writer([&] {
                    const clock_type::time_point t0 = clock_type::now();
                    for (std::size_t j = 0; j < sends_per_conn; ++j) {
                        std::this_thread::sleep_until(
                            t0 + std::chrono::duration_cast<clock_type::duration>(
                                     per_conn_interval * static_cast<double>(j)));
                        api::identify_resident_request req;
                        req.correlation_id = j + 1;
                        req.name = names[(c + j * connections) % names.size()];
                        req.fresh = true;  // no cache: every request is real work
                        conn.send(api::encode(api::request(req)));
                        ++st.r.sent;
                    }
                    conn.shutdown_write();
                });
                while (std::optional<std::string> frame = conn.read_frame()) {
                    const api::decode_result<api::response> r = api::decode_response(*frame);
                    if (!r.ok()) {
                        ++st.r.other;
                        continue;
                    }
                    if (std::holds_alternative<api::building_response>(*r.value)) {
                        ++st.r.results;
                    } else if (const auto* e = std::get_if<api::error_response>(&*r.value)) {
                        if (e->code == api::error_code::overloaded ||
                            e->code == api::error_code::draining)
                            ++st.r.shed;
                        else
                            ++st.r.other;
                    } else {
                        ++st.r.other;
                    }
                }
                writer.join();
            } catch (const std::exception& e) {
                st.failure = e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    load_result out;
    for (const conn_state& st : states) {
        if (!st.failure.empty())
            throw std::runtime_error("load connection failed: " + st.failure);
        out.sent += st.r.sent;
        out.results += st.r.results;
        out.shed += st.r.shed;
        out.other += st.r.other;
    }
    return out;
}

// --- rung accounting ---------------------------------------------------------

struct rung {
    double offered_per_sec = 0.0;
    std::size_t sent = 0;
    std::size_t client_results = 0;
    std::size_t client_shed = 0;
    // From the telemetry stream (windows with activity during the rung):
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;  ///< latency observations = finished requests
    std::uint64_t shed = 0;
    double active_seconds = 0.0;  ///< Σ duration of the active windows
    double latency_sum = 0.0;
    double p50 = 0.0;  ///< count-weighted mean of the window p50s
    double p99 = 0.0;  ///< worst window p99 (conservative)
    std::size_t windows = 0;

    [[nodiscard]] double goodput_per_sec() const {
        return active_seconds > 0.0 ? static_cast<double>(completed) / active_seconds : 0.0;
    }
    [[nodiscard]] double shed_rate() const {
        const double total = static_cast<double>(admitted + shed);
        return total > 0.0 ? static_cast<double>(shed) / total : 0.0;
    }
    [[nodiscard]] double mean_seconds() const {
        return completed > 0 ? latency_sum / static_cast<double>(completed) : 0.0;
    }
};

/// Fold one telemetry window into the rung (only windows that saw any
/// admission, shed, or completion count — idle settling windows would
/// dilute goodput).
void fold_window(rung& r, const api::stats_update_response& u) {
    if (u.admitted == 0 && u.shed_overload == 0 && u.shed_draining == 0 &&
        u.latency_count == 0)
        return;
    r.admitted += u.admitted;
    r.shed += u.shed_overload + u.shed_draining;
    r.completed += u.latency_count;
    r.latency_sum += u.latency_sum;
    r.active_seconds += u.window_seconds;
    // p50: count-weighted incremental mean; p99: worst window.
    if (u.latency_count > 0) {
        const double w = static_cast<double>(u.latency_count);
        const double total = static_cast<double>(r.completed);
        r.p50 += (u.latency_p50 - r.p50) * (w / total);
        r.p99 = std::max(r.p99, u.latency_p99);
    }
    ++r.windows;
}

// --- corpus / store plumbing -------------------------------------------------

data::corpus make_fleet(std::size_t count, std::size_t samples_per_floor,
                        std::uint64_t seed) {
    data::corpus fleet;
    fleet.name = "capacity-fleet";
    fleet.buildings.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "capacity-" + std::to_string(i);
        spec.num_floors = 3 + i % 4;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.buildings.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

std::vector<std::string> store_building_names(const std::string& dir) {
    std::vector<std::string> names;
    const data::corpus_store store = data::corpus_store::open(dir);
    store.for_each_building_effective(
        [&](std::size_t, data::building&& b) { names.push_back(std::move(b.name)); });
    return names;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_net.json");
    const std::string connect = args.get("connect", "");
    const std::string store_dir = args.get("store", "");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 6 : 12));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 16 : 40));
    const auto connections = static_cast<std::size_t>(args.get_int("connections", 4));
    const auto backends = static_cast<std::size_t>(args.get_int("backends", 2));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 2));
    const auto max_inflight =
        static_cast<std::size_t>(args.get_int("max-inflight", quick ? 4 : 8));
    const auto window_ms =
        static_cast<std::uint32_t>(args.get_int("window-ms", quick ? 200 : 500));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    double start_rate = args.get_double("start-rate", quick ? 8.0 : 16.0);
    const double multiplier = args.get_double("rate-multiplier", 2.0);
    const double rung_seconds = args.get_double("rung-seconds", quick ? 1.2 : 3.0);
    const double shed_threshold = args.get_double("shed-threshold", 0.05);
    const auto max_rungs = static_cast<std::size_t>(args.get_int("max-rungs", 8));
    constexpr std::size_t k_min_rungs = 3;
    if (connections < 1) throw std::invalid_argument("--connections must be >= 1");
    if (multiplier <= 1.0) throw std::invalid_argument("--rate-multiplier must be > 1");
    if (!connect.empty() && store_dir.empty())
        throw std::invalid_argument("--connect needs --store (to learn building names)");

    // --- stand up (or locate) the system under test -------------------------
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::vector<std::string> names;
    std::unique_ptr<federation::federated_server> fleet_srv;
    std::unique_ptr<net::tcp_server> front;
    std::thread loop_thread;
    std::string tmp_store;
    if (connect.empty()) {
        std::cerr << "Synthesising " << buildings << " buildings (" << samples
                  << " scans/floor) into a temporary store...\n";
        const data::corpus fleet = make_fleet(buildings, samples, seed);
        tmp_store = (std::filesystem::temp_directory_path() /
                     ("fisone_capacity_store_" + std::to_string(seed)))
                        .string();
        std::filesystem::remove_all(tmp_store);
        data::write_corpus_store(fleet, tmp_store, 4);
        for (const data::building& b : fleet.buildings) names.push_back(b.name);

        federation::federation_config fcfg;
        fcfg.service = service::quick_profile(seed, threads);
        fcfg.num_backends = backends;
        fcfg.store_dirs = {tmp_store};
        fleet_srv = std::make_unique<federation::federated_server>(fcfg);

        net::tcp_server_config ncfg;
        ncfg.max_inflight_requests = max_inflight;
        ncfg.telemetry_window_ms = window_ms;
        front = std::make_unique<net::tcp_server>(net::make_backend(*fleet_srv), ncfg);
        port = front->port();
        loop_thread = std::thread([&front] { front->run(); });
    } else {
        const std::size_t colon = connect.rfind(':');
        if (colon == std::string::npos)
            throw std::invalid_argument("--connect wants HOST:PORT, got " + connect);
        host = connect.substr(0, colon);
        port = static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
        names = store_building_names(store_dir);
    }
    if (names.empty()) throw std::runtime_error("no building names to request");

    // --- the control stream --------------------------------------------------
    stats_stream control(host, port);
    // The first pushed window proves the stream is live (and calibrates
    // nothing — every rung reads its own windows).
    if (!control.next(clock_type::now() + std::chrono::seconds(10)))
        throw std::runtime_error(
            "no stats_update within 10s — is the server's telemetry window enabled?");

    // --- the exploration loop -------------------------------------------------
    std::vector<rung> rungs;
    double rate = start_rate;
    bool crossed = false;
    const auto window = std::chrono::milliseconds(std::max<std::uint32_t>(window_ms, 50));
    while (rungs.size() < max_rungs) {
        control.drain_queue();
        std::cerr << "Rung " << rungs.size() + 1 << ": offering " << rate << " req/s for "
                  << rung_seconds << "s...\n";
        rung r;
        r.offered_per_sec = rate;
        const load_result load = run_load(host, port, names, rate, rung_seconds, connections);
        r.sent = load.sent;
        r.client_results = load.results;
        r.client_shed = load.shed;
        // Collect the windows covering the rung: keep reading until two
        // consecutive idle windows arrive (everything in flight has
        // landed) or a generous deadline passes.
        const clock_type::time_point deadline =
            clock_type::now() + std::chrono::seconds(10) + 4 * window;
        std::size_t idle_windows = 0;
        while (idle_windows < 2) {
            const std::optional<api::stats_update_response> u = control.next(deadline);
            if (!u) break;
            const bool active = u->admitted > 0 || u->shed_overload > 0 ||
                                u->shed_draining > 0 || u->latency_count > 0;
            if (active)
                idle_windows = 0;
            else
                ++idle_windows;
            fold_window(r, *u);
        }
        if (r.windows == 0)
            throw std::runtime_error("telemetry stream went silent mid-rung");
        std::cerr << "  goodput " << r.goodput_per_sec() << "/s, shed rate "
                  << r.shed_rate() * 100.0 << "%, p99 " << r.p99 * 1e3 << " ms ("
                  << r.windows << " windows)\n";
        rungs.push_back(r);
        if (r.shed_rate() >= shed_threshold && rungs.size() >= k_min_rungs) {
            crossed = true;
            break;
        }
        rate *= multiplier;
    }

    if (front) {
        front->drain();
        loop_thread.join();
    }

    // --- report ---------------------------------------------------------------
    util::table_printer table("Capacity frontier — identify_resident over " +
                              std::to_string(connections) + " connections, shed threshold " +
                              util::table_printer::num(shed_threshold * 100.0, 1) + "%");
    table.header({"offered/s", "goodput/s", "shed %", "p50 ms", "p99 ms", "windows"});
    for (const rung& r : rungs)
        table.row({util::table_printer::num(r.offered_per_sec, 1),
                   util::table_printer::num(r.goodput_per_sec(), 1),
                   util::table_printer::num(r.shed_rate() * 100.0, 2),
                   util::table_printer::num(r.p50 * 1e3, 1),
                   util::table_printer::num(r.p99 * 1e3, 1), std::to_string(r.windows)});
    table.print(std::cout);
    std::cout << "\nFrontier " << (crossed ? "terminated at the shed threshold" : "INCOMPLETE")
              << " after " << rungs.size() << " rungs\n";

    if (emit_json) {
        // Splice the capacity section into bench_net_loadtest's report
        // when one exists (re-splicing replaces a previous section);
        // otherwise write a standalone object.
        std::string base;
        {
            std::ifstream in(out_path);
            std::stringstream ss;
            ss << in.rdbuf();
            base = ss.str();
        }
        const std::size_t existing = base.find(",\n  \"capacity\":");
        if (existing != std::string::npos) {
            base.erase(existing);
        } else {
            while (!base.empty() && (base.back() == '\n' || base.back() == ' '))
                base.pop_back();
            if (!base.empty() && base.back() == '}') base.pop_back();
            while (!base.empty() && (base.back() == '\n' || base.back() == ' '))
                base.pop_back();
        }
        std::ostringstream cap;
        cap << "  \"capacity\": {\n";
        cap << "    \"schema\": \"fisone-bench-capacity/v1\",\n";
        cap << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
        cap << "    \"mode\": \"" << (connect.empty() ? "in-process" : "external") << "\",\n";
        cap << "    \"request_mode\": \"identify_resident\",\n";
        cap << "    \"connections\": " << connections << ",\n";
        cap << "    \"shed_threshold\": " << bench::json_num(shed_threshold) << ",\n";
        cap << "    \"terminated\": \"" << (crossed ? "shed-threshold" : "max-rungs")
            << "\",\n";
        cap << "    \"rungs\": [\n";
        for (std::size_t i = 0; i < rungs.size(); ++i) {
            const rung& r = rungs[i];
            cap << "      {\"offered_per_sec\": " << bench::json_num(r.offered_per_sec)
                << ", \"sent\": " << r.sent
                << ", \"goodput_per_sec\": " << bench::json_num(r.goodput_per_sec())
                << ", \"shed_rate\": " << bench::json_num(r.shed_rate())
                << ", \"admitted\": " << r.admitted << ", \"shed\": " << r.shed
                << ", \"latency_mean_ms\": " << bench::json_num(r.mean_seconds() * 1e3)
                << ", \"p50_ms\": " << bench::json_num(r.p50 * 1e3)
                << ", \"p99_ms\": " << bench::json_num(r.p99 * 1e3)
                << ", \"windows\": " << r.windows << "}"
                << (i + 1 < rungs.size() ? ",\n" : "\n");
        }
        cap << "    ]\n";
        cap << "  }\n";
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_capacity: cannot open " << out_path << '\n';
            return EXIT_FAILURE;
        }
        if (base.empty())
            f << "{\n" << cap.str() << "}\n";
        else
            f << base << ",\n" << cap.str() << "}\n";
        std::cout << "Capacity frontier written to " << out_path << " (\"capacity\" section)\n";
    }

    if (rungs.size() < k_min_rungs) {
        std::cerr << "bench_capacity: only " << rungs.size() << " rungs completed (need "
                  << k_min_rungs << ")\n";
        return EXIT_FAILURE;
    }
    if (!crossed) {
        std::cerr << "bench_capacity: shed threshold never crossed — raise --max-rungs or "
                     "lower the admission bound\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_capacity: " << e.what() << '\n';
    return EXIT_FAILURE;
}
