/// \file bench_robustness.cpp
/// Robustness analysis beyond the paper: how FIS-ONE degrades with the two
/// crowdsourcing nuisances the simulator models explicitly —
///  - device heterogeneity (per-device RSS bias spread, dB), and
///  - partial scans (probability that an audible AP is recorded).
/// The paper's data embeds some fixed level of both; this bench sweeps
/// them. Expected shape: graceful degradation, with the bipartite-graph
/// pipeline tolerating partial scans far better than the matrix-based MDS
/// baseline (whose missing-value pathology worsens as scans thin out).

#include <cstdlib>
#include <exception>
#include <iostream>

#include "baselines/mds.hpp"
#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;

struct row_scores {
    util::running_stats fis, mds;
};

row_scores run_setting(double device_sigma, double observation_rate, std::size_t buildings,
                       std::size_t samples, std::uint64_t seed) {
    row_scores out;
    util::rng seeder(seed);
    for (std::size_t bi = 0; bi < buildings; ++bi) {
        sim::building_spec spec;
        spec.num_floors = 4 + bi % 3;
        spec.samples_per_floor = samples;
        spec.aps_per_floor = 16;
        spec.floor_width_m = 60.0;
        spec.floor_depth_m = 40.0;
        spec.model.path_loss_exponent = 3.3;
        spec.device_offset_sigma_db = device_sigma;
        spec.observation_rate = observation_rate;
        spec.seed = seeder();
        const auto b = sim::generate_building(spec).building;

        core::fis_one_config cfg;
        cfg.gnn.seed = spec.seed;
        cfg.seed = spec.seed;
        out.fis.add(core::fis_one(cfg).run(b).ari);
        out.mds.add(core::evaluate_with_indexing(b, baselines::mds_cluster(b),
                                                 indexing::similarity_kind::adapted_jaccard,
                                                 indexing::tsp_solver::exact, spec.seed)
                        .ari);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 4));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 120));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    std::cout << "Robustness sweeps (extension; ARI mean(std) over " << buildings
              << " buildings)\n\n";

    util::table_printer device_table("device heterogeneity (per-device RSS bias σ, dB)");
    device_table.header({"σ (dB)", "FIS-ONE", "MDS baseline"});
    for (const double sigma : {0.0, 3.0, 6.0, 9.0}) {
        const auto r = run_setting(sigma, 0.7, buildings, samples, seed);
        device_table.row({util::table_printer::num(sigma, 1),
                          util::table_printer::mean_std(r.fis.mean(), r.fis.stddev()),
                          util::table_printer::mean_std(r.mds.mean(), r.mds.stddev())});
        std::cerr << "device sigma " << sigma << " done\n";
    }
    device_table.print(std::cout);

    std::cout << '\n';
    util::table_printer rate_table("partial scans (probability an audible AP is recorded)");
    rate_table.header({"rate", "FIS-ONE", "MDS baseline"});
    for (const double rate : {1.0, 0.7, 0.5, 0.35}) {
        const auto r = run_setting(3.0, rate, buildings, samples, seed + 99);
        rate_table.row({util::table_printer::num(rate, 2),
                        util::table_printer::mean_std(r.fis.mean(), r.fis.stddev()),
                        util::table_printer::mean_std(r.mds.mean(), r.mds.stddev())});
        std::cerr << "observation rate " << rate << " done\n";
    }
    rate_table.print(std::cout);

    std::cout << "\nExpected: FIS-ONE degrades gracefully on both axes and keeps a wide\n"
                 "margin over MDS as scans thin out (the bipartite graph has no\n"
                 "missing-value problem; the filled matrix does).\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_robustness: " << e.what() << '\n';
    return EXIT_FAILURE;
}
