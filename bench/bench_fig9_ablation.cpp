/// \file bench_fig9_ablation.cpp
/// Reproduces paper Figure 9 — indexing ablations on both corpora:
///  (a,b) plain Jaccard similarity replacing the adapted Jaccard (eq. 3);
///  (c,d) 2-opt approximate TSP replacing exact Held–Karp.
/// The paper reports the adapted coefficient improving edit distance with
/// lower variance, and 2-opt costing only ~3%.

#include <cstdlib>
#include <exception>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace fisone;

void print_block(const char* title, const bench::aggregate& a, const char* name_a,
                 const bench::aggregate& b, const char* name_b) {
    util::table_printer table(title);
    table.header({"variant", "ARI", "NMI", "Edit Distance"});
    for (const auto& [agg, name] : {std::pair{&a, name_a}, std::pair{&b, name_b}}) {
        table.row({name, util::table_printer::mean_std(agg->ari.mean(), agg->ari.stddev()),
                   util::table_printer::mean_std(agg->nmi.mean(), agg->nmi.stddev()),
                   util::table_printer::mean_std(agg->edit.mean(), agg->edit.stddev())});
    }
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto corpora = bench::make_corpora(args);

    const auto adapted = [](core::fis_one_config&, std::uint64_t) {};
    const auto plain = [](core::fis_one_config& cfg, std::uint64_t) {
        cfg.similarity = indexing::similarity_kind::jaccard;
    };
    const auto approx = [](core::fis_one_config& cfg, std::uint64_t) {
        cfg.solver = indexing::tsp_solver::two_opt;
    };

    std::cout << "Figure 9 — indexing ablations of FIS-ONE, mean(std)\n\n";
    for (const data::corpus* corpus : {&corpora.microsoft, &corpora.ours}) {
        const auto with_adapted = bench::run_fis_one_over(*corpus, adapted);
        const auto with_plain = bench::run_fis_one_over(*corpus, plain);
        const auto with_2opt = bench::run_fis_one_over(*corpus, approx);

        print_block(("(a/b) " + corpus->name + ": adapted vs plain Jaccard").c_str(),
                    with_adapted, "Adapted Jaccard", with_plain, "Jaccard");
        print_block(("(c/d) " + corpus->name + ": exact vs 2-opt TSP").c_str(), with_adapted,
                    "Exact (Held-Karp)", with_2opt, "Approximation (2-opt)");
    }
    std::cout << "Paper shape check: adapted Jaccard wins edit distance with lower std;\n"
                 "the 2-opt approximation degrades results by only a few percent.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig9_ablation: " << e.what() << '\n';
    return EXIT_FAILURE;
}
